"""Logical planning: SELECT ASTs to executable operator trees.

Two optimizer modes:

* ``"cost"`` (the default) — statistics-driven planning via
  :mod:`repro.engine.optimizer`: per-relation cardinality estimates
  pick access paths, and inner-join blocks are reordered by the
  cost-based join-order search (DP up to ~6 relations, greedy beyond)
  instead of being joined in FROM-clause order;
* ``"syntactic"`` — the historical planner: joins in written order.

Both modes share the two moves the paper credits for the SQL win
(Section 2.6):

* **early filtering** — WHERE conjuncts that mention a single relation
  are pushed below the joins onto that relation's scan;
* **index-aware access paths** — a pushed range predicate on a table's
  clustered-index leading key becomes an
  :class:`~repro.engine.operators.IndexRangeScan` instead of a full scan,
  and equi-join conjuncts select a hash join over a nested loop.

Every finished plan — under either mode — gets an ``est_rows``
annotation pass so EXPLAIN ANALYZE can report per-operator q-error.

Aggregation rewrites aggregate calls found in the select list / HAVING
into references to columns computed by one
:class:`~repro.engine.aggregate.Aggregate` node.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

import numpy as np

from repro.engine.aggregate import Aggregate, AggregateSpec
from repro.engine.expressions import (
    Between,
    BinaryOp,
    Case,
    ColumnRef,
    Expr,
    FuncCall,
    InList,
    Literal,
    UnaryOp,
)
from repro.engine.join import BandJoin, CrossJoin, HashJoin, NestedLoopJoin
from repro.engine.operators import (
    Distinct,
    Filter,
    IndexRangeScan,
    Limit,
    PlanNode,
    Project,
    ProjectPassthrough,
    SeqScan,
    Sort,
    SubqueryScan,
    TableFunctionScan,
)
from repro.engine.optimizer.cardinality import (
    CardinalityEstimator,
    RelationProfile,
    annotate_plan,
    profile_for_table,
)
from repro.engine.optimizer.cost import DEFAULT_COST_MODEL
from repro.engine.optimizer.joinorder import JoinPred, JoinRel, order_relations
from repro.engine.sql.ast import (
    Exists,
    InSubquery,
    SelectItem,
    SelectStatement,
    TableRef,
)
from repro.engine.sql.parser import AGGREGATE_FUNCS
from repro.errors import SqlPlanError

#: Recognized planner modes.
OPTIMIZER_MODES = ("cost", "syntactic")


# ----------------------------------------------------------------------
# expression utilities
# ----------------------------------------------------------------------
def split_conjuncts(expr: Expr | None) -> list[Expr]:
    """Flatten a predicate into its AND-ed conjuncts."""
    if expr is None:
        return []
    if isinstance(expr, BinaryOp) and expr.op.upper() == "AND":
        return split_conjuncts(expr.left) + split_conjuncts(expr.right)
    return [expr]


def and_all(conjuncts: list[Expr]) -> Expr | None:
    if not conjuncts:
        return None
    result = conjuncts[0]
    for part in conjuncts[1:]:
        result = BinaryOp("AND", result, part)
    return result


def rewrite(expr: Expr, mapping: dict[Expr, Expr]) -> Expr:
    """Structurally replace subtrees (used to slot in aggregate outputs).

    Matching is by node equality (the nodes are frozen dataclasses, so
    identical shapes compare equal).
    """
    if expr in mapping:
        return mapping[expr]
    if isinstance(expr, BinaryOp):
        return BinaryOp(expr.op, rewrite(expr.left, mapping), rewrite(expr.right, mapping))
    if isinstance(expr, UnaryOp):
        return UnaryOp(expr.op, rewrite(expr.operand, mapping))
    if isinstance(expr, Between):
        return Between(
            rewrite(expr.value, mapping),
            rewrite(expr.low, mapping),
            rewrite(expr.high, mapping),
        )
    if isinstance(expr, InList):
        return InList(
            rewrite(expr.value, mapping),
            tuple(rewrite(o, mapping) for o in expr.options),
        )
    if isinstance(expr, FuncCall):
        return FuncCall(expr.name, tuple(rewrite(a, mapping) for a in expr.args))
    if isinstance(expr, Case):
        return Case(
            tuple(
                (rewrite(c, mapping), rewrite(v, mapping)) for c, v in expr.whens
            ),
            None if expr.default is None else rewrite(expr.default, mapping),
        )
    if isinstance(expr, InSubquery):
        # only the outer-scope value participates; the subquery body is
        # its own scope and never rewritten through an outer mapping
        return InSubquery(rewrite(expr.value, mapping), expr.select)
    return expr


def find_aggregates(expr: Expr) -> list[FuncCall]:
    """All aggregate FuncCall nodes in a tree (no nesting allowed)."""
    found: list[FuncCall] = []

    def visit(node: Expr, inside_aggregate: bool) -> None:
        if isinstance(node, FuncCall) and node.name.lower() in AGGREGATE_FUNCS:
            if inside_aggregate:
                raise SqlPlanError("nested aggregate functions are not allowed")
            found.append(node)
            for child in node.children():
                visit(child, True)
            return
        for child in node.children():
            visit(child, inside_aggregate)

    visit(expr, False)
    return found


def find_subquery_exprs(expr: Expr) -> list[Expr]:
    """All Exists/InSubquery nodes in a tree (outermost only)."""
    found: list[Expr] = []

    def visit(node: Expr) -> None:
        if isinstance(node, (Exists, InSubquery)):
            found.append(node)
            return
        for child in node.children():
            visit(child)

    visit(expr)
    return found


@dataclass(frozen=True, eq=False)
class SubqueryPredicate(Expr):
    """Evaluatable form of ``EXISTS`` / ``IN (SELECT ...)``.

    The planned subquery executes once (memoized); each outer row then
    tests membership of its ``outer_exprs`` tuple against the
    subquery's ``inner_names`` output columns.  With no outer
    expressions this is an uncorrelated EXISTS — a non-empty check.
    NULL (NaN) follows the engine's comparison semantics: a NaN key
    never matches anything, on either side.
    """

    subplan: PlanNode
    outer_exprs: tuple[Expr, ...]
    inner_names: tuple[str, ...]
    label: str = "exists"

    def children(self) -> tuple[Expr, ...]:
        return self.outer_exprs

    def _materialize(self):
        cached = getattr(self, "_rows", None)
        if cached is None:
            cached = self.subplan.execute()
            object.__setattr__(self, "_rows", cached)
        return cached

    def eval(self, batch):
        from repro.engine.expressions import batch_length

        rows = self._materialize()
        n = batch_length(batch)
        inner_n = batch_length(rows)
        if not self.outer_exprs:
            return np.full(n, inner_n > 0)
        if len(self.outer_exprs) == 1:
            value = np.asarray(self.outer_exprs[0].eval(batch))
            value = np.broadcast_to(value, (n,))
            result = np.zeros(n, dtype=bool)
            inner = np.unique(np.asarray(rows[self.inner_names[0]]))
            for option in inner:
                # NaN == NaN is False, so NULL keys never match
                result |= value == option
            return result
        inner_cols = [np.asarray(rows[name]) for name in self.inner_names]
        keys = set()
        for row in range(inner_n):
            tup = tuple(col[row] for col in inner_cols)
            if any(
                isinstance(v, (float, np.floating)) and np.isnan(v)
                for v in tup
            ):
                continue
            keys.add(tup)
        outer_cols = [
            np.broadcast_to(np.asarray(e.eval(batch)), (n,))
            for e in self.outer_exprs
        ]
        result = np.zeros(n, dtype=bool)
        for row in range(n):
            tup = tuple(col[row] for col in outer_cols)
            if any(
                isinstance(v, (float, np.floating)) and np.isnan(v)
                for v in tup
            ):
                continue
            result[row] = tup in keys
        return result

    def __str__(self) -> str:
        if not self.outer_exprs:
            return f"{self.label}(subquery)"
        outer = ", ".join(str(e) for e in self.outer_exprs)
        return f"{self.label}({outer} IN subquery)"


# ----------------------------------------------------------------------
# planning context
# ----------------------------------------------------------------------
@dataclass
class _Relation:
    """One FROM/JOIN entry during planning."""

    ref: TableRef
    scan: PlanNode
    columns: set[str]  # lowercased column names of the underlying table
    derived: bool = False  # subquery / view / CTE binding (no base table)


class Planner:
    """Plans SELECT statements against a database's catalog.

    The database is duck-typed: it must provide ``table(name)`` returning
    an engine :class:`~repro.engine.table.Table` and
    ``clustered_index(name)`` returning a built
    :class:`~repro.engine.index.ClusteredIndex` or None.
    """

    def __init__(
        self,
        database,
        optimizer: str | None = None,
        rewrites: bool | None = None,
    ):
        self.database = database
        if optimizer is not None and optimizer not in OPTIMIZER_MODES:
            raise SqlPlanError(
                f"unknown optimizer mode '{optimizer}'; "
                f"expected one of {OPTIMIZER_MODES}"
            )
        self.optimizer = optimizer
        if rewrites is None:
            rewrites = bool(getattr(database, "rewrites_enabled", False))
        self.rewrites = rewrites

    @property
    def mode(self) -> str:
        """Effective optimizer mode: explicit override, else the database's."""
        if self.optimizer is not None:
            return self.optimizer
        return getattr(self.database, "optimizer_mode", "cost")

    def _overrides(self):
        """The database's learned selectivity overrides, when feedback
        is on (None otherwise) — threaded into every estimator so the
        DP ordering, est_rows and q-error all reflect what the loop has
        learned."""
        feedback = getattr(self.database, "feedback", None)
        return feedback.overrides if feedback is not None else None

    # ------------------------------------------------------------------
    def plan_select(
        self, stmt: SelectStatement, *, _nested: bool = False
    ) -> PlanNode:
        trace: tuple[str, ...] = ()
        substituted = self._substitute_matview(stmt)
        if substituted is not None:
            plan = substituted
        else:
            if not _nested and self.rewrites:
                from repro.engine.optimizer.rewrite import rewrite_statement

                stmt, firings = rewrite_statement(
                    stmt, self.database, optimizer=self.optimizer
                )
                trace = tuple(f.describe() for f in firings)
            plan = self._plan_select(stmt)
        annotate_plan(plan, self._overrides())
        workers = getattr(self.database, "intra_query_workers", 1)
        if workers > 1:
            _stamp_workers(plan, workers)
        if getattr(self.database, "compiled_expressions", False):
            _stamp_compiled(plan)
        if trace:
            plan.rewrite_trace = trace
        return plan

    def _substitute_matview(self, stmt: SelectStatement) -> PlanNode | None:
        """Answer the query from a fresh materialized view when its
        definition matches the statement's normalized SQL.

        The database decides matching and freshness
        (:meth:`~repro.engine.database.Database.matching_matview`); the
        substituted plan is a scan of the precomputed rows, flagged in
        EXPLAIN as ``[answered from matview <name>]``.
        """
        matcher = getattr(self.database, "matching_matview", None)
        if matcher is None:
            return None
        view = matcher(stmt)
        if view is None:
            return None
        table = self.database.table(view.name)
        scan = SeqScan(
            table, view.name, reason=f"answered from matview {view.name}"
        )
        return Project(
            scan,
            [
                (name.lower(), ColumnRef(name.lower()))
                for name in table.schema.column_names
            ],
        )

    def _plan_select(self, stmt: SelectStatement) -> PlanNode:
        relations = self._bind_relations(stmt)
        stmt = self._plan_subquery_predicates(stmt, relations)
        where_parts = split_conjuncts(stmt.where)

        # Aliases bound as the nullable side of a LEFT JOIN: their WHERE
        # conjuncts must apply *after* NULL padding, so no pushdown.
        nullable = {
            join.table.alias.lower()
            for join in stmt.joins
            if join.kind == "left"
        }

        # Early filtering: push single-relation conjuncts onto their scan.
        remaining: list[Expr] = []
        pushed: dict[str, list[Expr]] = {rel.ref.alias.lower(): [] for rel in relations}
        for conjunct in where_parts:
            owner = self._single_relation(conjunct, relations)
            if (
                owner is not None
                and owner not in nullable
                and not find_aggregates(conjunct)
            ):
                pushed[owner].append(conjunct)
            else:
                remaining.append(conjunct)

        for rel in relations:
            rel.scan = self._access_path(rel, pushed[rel.ref.alias.lower()])

        if self._can_reorder(stmt, relations):
            plan = self._join_relations_cost(stmt, relations, remaining)
        else:
            plan = self._join_relations(stmt, relations, remaining)

        plan, outputs, order_keys = self._aggregate_and_project(stmt, plan)

        if order_keys:
            # ORDER BY may reference select aliases *or* source columns,
            # so sort over the union of projected outputs and the input
            # batch, then strip back down to the select list.
            plan = ProjectPassthrough(plan, outputs)
            plan = Sort(plan, order_keys)
            plan = Project(plan, [(name, ColumnRef(name)) for name, _ in outputs])
        else:
            plan = Project(plan, outputs)
        if stmt.distinct:
            plan = Distinct(plan)
        if stmt.limit is not None:
            plan = Limit(plan, stmt.limit, stmt.offset or 0)
        return plan

    # ------------------------------------------------------------------
    def _bind_relations(self, stmt: SelectStatement) -> list[_Relation]:
        if stmt.source is None:
            raise SqlPlanError("SELECT without FROM needs constant items only")
        refs = [stmt.source] + [j.table for j in stmt.joins]
        aliases = [r.alias.lower() for r in refs]
        if len(set(aliases)) != len(aliases):
            raise SqlPlanError(f"duplicate table alias in FROM: {aliases}")
        ctes = {name.lower(): body for name, body in stmt.ctes}
        relations = []
        for ref in refs:
            relations.append(self._bind_one(ref, ctes))
        return relations

    def _bind_one(
        self,
        ref: TableRef,
        ctes: dict[str, SelectStatement] | None = None,
    ) -> _Relation:
        if ref.is_subquery:
            assert ref.subquery is not None
            subplan = self.plan_select(ref.subquery, _nested=True)
            return _Relation(
                ref=ref,
                scan=SubqueryScan(subplan, ref.alias),
                columns={
                    name.lower()
                    for name in self.select_output_names(ref.subquery)
                },
                derived=True,
            )
        if ref.is_function:
            tvf = self.database.table_function(ref.table)
            return _Relation(
                ref=ref,
                scan=TableFunctionScan(
                    tvf.fn, ref.function_args or (), ref.alias, tvf.name
                ),
                columns={c.lower() for c in tvf.columns},
            )
        # CTEs shadow views and base tables of the same name
        if ctes and ref.table.lower() in ctes:
            body = ctes[ref.table.lower()]
            subplan = self.plan_select(body, _nested=True)
            return _Relation(
                ref=ref,
                scan=SubqueryScan(subplan, ref.alias),
                columns={
                    name.lower()
                    for name in self.select_output_names(body)
                },
                derived=True,
            )
        if self.database.has_view(ref.table):
            view_stmt = self.database.view(ref.table)
            subplan = self.plan_select(view_stmt, _nested=True)
            return _Relation(
                ref=ref,
                scan=SubqueryScan(subplan, ref.alias),
                columns={
                    name.lower()
                    for name in self.select_output_names(view_stmt)
                },
                derived=True,
            )
        table = self.database.table(ref.table)
        return _Relation(
            ref=ref,
            scan=SeqScan(table, ref.alias),
            columns={c.lower() for c in table.schema.column_names},
        )

    # ------------------------------------------------------------------
    # EXISTS / IN (SELECT ...) — the naive (non-decorrelated) path
    # ------------------------------------------------------------------
    def _plan_subquery_predicates(
        self, stmt: SelectStatement, relations: list[_Relation]
    ) -> SelectStatement:
        """Replace Exists/InSubquery nodes in WHERE/HAVING with
        evaluatable :class:`SubqueryPredicate` expressions."""
        targets: list[Expr] = []
        for predicate in (stmt.where, stmt.having):
            if predicate is not None:
                targets.extend(find_subquery_exprs(predicate))
        if not targets:
            return stmt
        mapping: dict[Expr, Expr] = {}
        for node in targets:
            if node not in mapping:
                mapping[node] = self._plan_one_subquery(node, relations)
        changes: dict = {}
        if stmt.where is not None:
            changes["where"] = rewrite(stmt.where, mapping)
        if stmt.having is not None:
            changes["having"] = rewrite(stmt.having, mapping)
        return dataclasses.replace(stmt, **changes)

    def _plan_one_subquery(
        self, node: Expr, relations: list[_Relation]
    ) -> SubqueryPredicate:
        sub = node.select  # type: ignore[union-attr]
        value = node.value if isinstance(node, InSubquery) else None
        label = "in_subquery" if value is not None else "exists"
        if value is not None and (len(sub.items) != 1 or sub.items[0].star):
            raise SqlPlanError(
                "IN (SELECT ...) requires exactly one output column"
            )
        inner_conjuncts, pairs = self.split_correlation(sub, relations)
        if not pairs:
            # uncorrelated: plan the subquery exactly as written
            subplan = self.plan_select(sub, _nested=True)
            if value is not None:
                name = self.select_output_names(sub)[0]
                return SubqueryPredicate(subplan, (value,), (name,), label)
            return SubqueryPredicate(subplan, (), (), label)
        if value is not None:
            assert sub.items[0].expr is not None
            pairs = pairs + [(value, sub.items[0].expr)]
        keys = SelectStatement(
            items=tuple(
                SelectItem(inner, f"__ck{pos}")
                for pos, (_, inner) in enumerate(pairs)
            ),
            source=sub.source,
            joins=sub.joins,
            where=and_all(inner_conjuncts),
            distinct=True,
            ctes=sub.ctes,
        )
        subplan = self.plan_select(keys, _nested=True)
        return SubqueryPredicate(
            subplan,
            tuple(outer for outer, _ in pairs),
            tuple(f"__ck{pos}" for pos in range(len(pairs))),
            label,
        )

    def split_correlation(
        self, sub: SelectStatement, outer_relations: list[_Relation]
    ) -> tuple[list[Expr], list[tuple[Expr, Expr]]]:
        """Split a subquery's WHERE into inner-only conjuncts and
        ``outer = inner`` correlation pairs.

        Returns ``(inner_conjuncts, pairs)``; empty pairs means the
        subquery is uncorrelated.  Raises :class:`SqlPlanError` when
        the subquery correlates in any unsupported way (non-equality
        correlation, correlation outside WHERE, aggregates/GROUP BY in
        a correlated subquery).
        """
        if sub.source is None:
            return [], []
        sub_ctes = {name.lower(): body for name, body in sub.ctes}
        inner_rels = [
            (ref.alias.lower(),
             {c.lower() for c in self._relation_columns(ref, sub_ctes)})
            for ref in [sub.source] + [j.table for j in sub.joins]
        ]
        inner_aliases = {alias for alias, _ in inner_rels}

        def scope_of(expr: Expr) -> str:
            scopes: set[str] = set()
            for ref in expr.column_refs():
                if ref.qualifier is not None:
                    if ref.qualifier.lower() in inner_aliases:
                        scopes.add("inner")
                        continue
                    if self._resolve_alias(ref, outer_relations) is not None:
                        scopes.add("outer")
                        continue
                    raise SqlPlanError(
                        f"unknown column '{ref.qualifier}.{ref.name}' "
                        "in subquery"
                    )
                # bare names: the inner scope shadows the outer
                if any(ref.name.lower() in cols for _, cols in inner_rels):
                    scopes.add("inner")
                elif self._resolve_alias(ref, outer_relations) is not None:
                    scopes.add("outer")
                else:
                    raise SqlPlanError(
                        f"unknown column '{ref.name}' in subquery"
                    )
            if not scopes:
                return "const"
            if scopes == {"inner"}:
                return "inner"
            if scopes == {"outer"}:
                return "outer"
            return "mixed"

        inner_conjuncts: list[Expr] = []
        pairs: list[tuple[Expr, Expr]] = []
        for conjunct in split_conjuncts(sub.where):
            scope = scope_of(conjunct)
            if scope in ("inner", "const"):
                inner_conjuncts.append(conjunct)
                continue
            if isinstance(conjunct, BinaryOp) and conjunct.op == "=":
                left_scope = scope_of(conjunct.left)
                right_scope = scope_of(conjunct.right)
                if left_scope == "outer" and right_scope in ("inner", "const"):
                    pairs.append((conjunct.left, conjunct.right))
                    continue
                if right_scope == "outer" and left_scope in ("inner", "const"):
                    pairs.append((conjunct.right, conjunct.left))
                    continue
            raise SqlPlanError(
                "correlated subquery too complex: only AND-ed "
                "outer = inner equality correlation is supported"
            )
        if pairs:
            # correlated subqueries must stay a simple SPJ block — the
            # key extraction re-shapes the statement around them
            item_exprs = [i.expr for i in sub.items if i.expr is not None]
            has_aggs = any(find_aggregates(e) for e in item_exprs)
            if (sub.group_by or sub.having is not None or has_aggs
                    or sub.limit is not None or sub.offset is not None):
                raise SqlPlanError(
                    "correlated subquery too complex: aggregation and "
                    "LIMIT are not supported with correlation"
                )
        # correlation hiding anywhere but WHERE is unsupported
        outer_forbidden: list[Expr | None] = [
            *[i.expr for i in sub.items], sub.having,
            *[o.expr for o in sub.order_by], *sub.group_by,
            *[j.condition for j in sub.joins],
        ]
        for expr in outer_forbidden:
            if expr is None:
                continue
            if scope_of(expr) not in ("inner", "const"):
                raise SqlPlanError(
                    "correlated subquery too complex: correlation is "
                    "only supported in the WHERE clause"
                )
        return inner_conjuncts, pairs

    def select_output_names(self, stmt: SelectStatement) -> list[str]:
        """Output column names of a SELECT, without executing it."""
        ctes = {name.lower(): body for name, body in stmt.ctes}
        names: list[str] = []
        for pos, item in enumerate(stmt.items):
            if item.star:
                refs = [stmt.source] + [j.table for j in stmt.joins]
                if item.star_qualifier is not None:
                    refs = [
                        r for r in refs
                        if r is not None
                        and r.alias.lower() == item.star_qualifier.lower()
                    ]
                for ref in refs:
                    if ref is None:
                        continue
                    names.extend(
                        c.lower() for c in self._relation_columns(ref, ctes)
                    )
                continue
            names.append(self._output_name(item, pos))
        # apply the same dedup-suffix rule as _expand_items
        seen: dict[str, int] = {}
        deduped = []
        for name in names:
            if name in seen:
                seen[name] += 1
                name = f"{name}_{seen[name]}"
            else:
                seen[name] = 0
            deduped.append(name)
        return deduped

    def _relation_columns(
        self,
        ref: TableRef,
        ctes: dict[str, SelectStatement] | None = None,
    ) -> list[str]:
        if ref.is_subquery:
            assert ref.subquery is not None
            return self.select_output_names(ref.subquery)
        if ref.is_function:
            return list(self.database.table_function(ref.table).columns)
        if ctes and ref.table.lower() in ctes:
            return self.select_output_names(ctes[ref.table.lower()])
        if self.database.has_view(ref.table):
            return self.select_output_names(self.database.view(ref.table))
        return list(self.database.table(ref.table).schema.column_names)

    def _single_relation(
        self, conjunct: Expr, relations: list[_Relation]
    ) -> str | None:
        """Alias of the only relation a conjunct touches, or None."""
        owners: set[str] = set()
        for ref in conjunct.column_refs():
            alias = self._resolve_alias(ref, relations)
            if alias is None:
                return None
            owners.add(alias)
        if len(owners) == 1:
            return owners.pop()
        return None

    @staticmethod
    def _resolve_alias(ref: ColumnRef, relations: list[_Relation]) -> str | None:
        if ref.qualifier is not None:
            lowered = ref.qualifier.lower()
            for rel in relations:
                if rel.ref.alias.lower() == lowered:
                    return lowered
            return None
        matches = [
            rel.ref.alias.lower()
            for rel in relations
            if ref.name.lower() in rel.columns
        ]
        if len(matches) == 1:
            return matches[0]
        return None

    # ------------------------------------------------------------------
    def _access_path(self, rel: _Relation, conjuncts: list[Expr]) -> PlanNode:
        """Choose index range scan vs filtered seq scan for one relation."""
        # derived relations (subqueries/views/CTEs) never have their own
        # index; a CTE may even shadow an indexed base table's name
        index = (
            None if rel.derived
            else self.database.clustered_index(rel.ref.table)
        )
        scan: PlanNode = rel.scan
        if index is not None and conjuncts:
            leading = index.leading_key
            sargable = [
                (pos, bounds)
                for pos, conjunct in enumerate(conjuncts)
                if (bounds := _range_bounds(conjunct, leading)) is not None
            ]
            if sargable:
                pos, (lo, hi) = self._best_sargable(rel, index, sargable)
                scan = IndexRangeScan(index, lo, hi, rel.ref.alias)
                conjuncts = conjuncts[:pos] + conjuncts[pos + 1:]
            elif isinstance(scan, SeqScan):
                # OR predicates silently disable the index: say so, so
                # EXPLAIN shows the missed access path instead of hiding it.
                reason = _or_disables_index(conjuncts, leading)
                if reason is not None:
                    scan.reason = reason
        predicate = and_all(conjuncts)
        if predicate is not None:
            scan = Filter(scan, predicate)
        return scan

    def _best_sargable(
        self,
        rel: _Relation,
        index,
        sargable: list[tuple[int, tuple[object, object]]],
    ) -> tuple[int, tuple[object, object]]:
        """Pick the most selective sargable bound.

        Under the cost optimizer, statistics rank candidate key ranges
        by covered fraction; the syntactic planner keeps the historical
        first-match rule.
        """
        if self.mode != "cost" or len(sargable) == 1:
            return sargable[0]
        table = index.table
        estimator = CardinalityEstimator(
            [profile_for_table(table, rel.ref.alias)]
        )
        ref = ColumnRef(index.leading_key, rel.ref.alias)

        def fraction(entry):
            _, (lo, hi) = entry
            lo = lo if isinstance(lo, (int, float)) else None
            hi = hi if isinstance(hi, (int, float)) else None
            return estimator._range(ref, lo, hi)

        return min(sargable, key=fraction)

    # ------------------------------------------------------------------
    # cost-based join ordering
    # ------------------------------------------------------------------
    def _can_reorder(
        self, stmt: SelectStatement, relations: list[_Relation]
    ) -> bool:
        """Cost-based reordering applies to pure inner/cross join blocks."""
        if self.mode != "cost" or len(relations) < 2:
            return False
        return all(join.kind in ("inner", "cross") for join in stmt.joins)

    def _relation_profile(self, rel: _Relation) -> RelationProfile:
        alias = rel.ref.alias.lower()
        if (
            not rel.derived
            and not rel.ref.is_subquery
            and not rel.ref.is_function
            and not self.database.has_view(rel.ref.table)
        ):
            return profile_for_table(self.database.table(rel.ref.table), alias)
        return RelationProfile(alias=alias, table_rows=0.0, columns=set(rel.columns))

    def _join_relations_cost(
        self,
        stmt: SelectStatement,
        relations: list[_Relation],
        remaining: list[Expr],
    ) -> PlanNode:
        """Join in cost-chosen order instead of FROM-clause order.

        The predicate pool merges ON conjuncts with the multi-relation
        WHERE conjuncts (legal because every join here is inner), so a
        ``CROSS JOIN ... WHERE a.x = b.x`` still hash-joins and the DP
        sees every predicate that could constrain an intermediate.
        """
        model = DEFAULT_COST_MODEL
        overrides = self._overrides()
        profiles = [self._relation_profile(rel) for rel in relations]
        estimator = CardinalityEstimator(profiles, overrides)

        pool: list[tuple[Expr, frozenset[str]]] = []
        post: list[Expr] = []
        candidates = list(remaining)
        for join in stmt.joins:
            candidates.extend(split_conjuncts(join.condition))
        for conjunct in candidates:
            owners: set[str] = set()
            resolvable = not find_aggregates(conjunct)
            for ref in conjunct.column_refs():
                alias = self._resolve_alias(ref, relations)
                if alias is None:
                    resolvable = False
                    break
                owners.add(alias)
            if resolvable and owners:
                pool.append((conjunct, frozenset(owners)))
            else:
                post.append(conjunct)

        join_rels = []
        for rel, profile in zip(relations, profiles):
            est = annotate_plan(rel.scan, overrides)
            join_rels.append(JoinRel(
                alias=rel.ref.alias.lower(),
                rows=max(est, 1.0),
                cost=self._access_cost(rel.scan, profile, model),
            ))
        join_preds = [
            JoinPred(
                aliases=owners,
                selectivity=estimator.selectivity(conjunct),
                equi=_is_equi_shape(conjunct, owners),
                band=_is_band_shape(conjunct, owners),
            )
            for conjunct, owners in pool
        ]
        order = order_relations(join_rels, join_preds, model)

        first = relations[order[0]]
        plan = first.scan
        bound = {first.ref.alias.lower()}
        for idx in order[1:]:
            rel = relations[idx]
            alias = rel.ref.alias.lower()
            applicable = [
                (conjunct, owners) for conjunct, owners in pool
                if alias in owners and owners <= bound | {alias}
            ]
            pool = [entry for entry in pool if entry not in applicable]
            equi = None
            residuals: list[Expr] = []
            for conjunct, _ in applicable:
                if equi is None:
                    pair = _equi_pair(conjunct, bound, rel, relations)
                    if pair is not None:
                        equi = pair
                        continue
                residuals.append(conjunct)
            if equi is not None:
                left_key, right_key = equi
                plan = HashJoin(plan, rel.scan, left_key, right_key,
                                and_all(residuals))
            elif residuals:
                band = None
                if getattr(self.database, "band_join_enabled", True):
                    band = _extract_band(residuals, bound, rel, relations)
                if band is not None:
                    key, low, high, low_strict, high_strict, leftover = band
                    plan = BandJoin(
                        plan, rel.scan, key,
                        low=low, high=high,
                        low_strict=low_strict, high_strict=high_strict,
                        residual=and_all(leftover),
                    )
                else:
                    plan = NestedLoopJoin(plan, rel.scan, and_all(residuals))
            else:
                plan = CrossJoin(plan, rel.scan)
            bound.add(alias)

        # anything unapplied (aggregates, unresolvable refs) filters on top
        post.extend(conjunct for conjunct, _ in pool)
        predicate = and_all(post)
        if predicate is not None:
            plan = Filter(plan, predicate)
        return plan

    @staticmethod
    def _access_cost(scan: PlanNode, profile: RelationProfile, model) -> float:
        """Price a relation's already-chosen access path (post-annotation)."""
        if isinstance(scan, Filter):
            inner = Planner._access_cost(scan.child, profile, model)
            return inner + model.filter(scan.child.est_rows or 0.0)
        if isinstance(scan, IndexRangeScan):
            return model.index_range_scan(
                scan.est_rows or 0.0, profile.table_rows, profile.pages
            )
        if isinstance(scan, SeqScan):
            return model.seq_scan(profile.table_rows, profile.pages)
        return model.cpu_row * (scan.est_rows or 0.0)

    # ------------------------------------------------------------------
    def _join_relations(
        self,
        stmt: SelectStatement,
        relations: list[_Relation],
        remaining: list[Expr],
    ) -> PlanNode:
        plan = relations[0].scan
        bound = {relations[0].ref.alias.lower()}
        for join, rel in zip(stmt.joins, relations[1:]):
            bound.add(rel.ref.alias.lower())
            if join.kind == "cross":
                plan = CrossJoin(plan, rel.scan)
                continue
            conjuncts = split_conjuncts(join.condition)
            equi = None
            residuals: list[Expr] = []
            for conjunct in conjuncts:
                if equi is None:
                    pair = _equi_pair(conjunct, bound - {rel.ref.alias.lower()},
                                      rel, relations)
                    if pair is not None:
                        equi = pair
                        continue
                residuals.append(conjunct)
            if equi is not None:
                left_key, right_key = equi
                plan = HashJoin(plan, rel.scan, left_key, right_key,
                                and_all(residuals), outer=(join.kind == "left"))
            elif join.kind == "left":
                raise SqlPlanError(
                    "LEFT JOIN requires an equality condition on the ON clause"
                )
            else:
                plan = NestedLoopJoin(plan, rel.scan, and_all(residuals))
        predicate = and_all(remaining)
        if predicate is not None:
            plan = Filter(plan, predicate)
        return plan

    # ------------------------------------------------------------------
    def _aggregate_and_project(
        self, stmt: SelectStatement, plan: PlanNode
    ) -> tuple[PlanNode, list[tuple[str, Expr]], list[tuple[Expr, bool]]]:
        """Plan aggregation; returns (plan, projections, order keys).

        The projections are *not* yet applied — the caller decides
        whether a passthrough sort must happen in between.
        """
        # Collect aggregates across select items, HAVING and ORDER BY.
        item_exprs = [item.expr for item in stmt.items if item.expr is not None]
        aggregates: list[FuncCall] = []
        for expr in item_exprs:
            aggregates.extend(find_aggregates(expr))
        if stmt.having is not None:
            aggregates.extend(find_aggregates(stmt.having))
        for order in stmt.order_by:
            aggregates.extend(find_aggregates(order.expr))

        needs_aggregation = bool(aggregates) or bool(stmt.group_by)
        if not needs_aggregation:
            if stmt.having is not None:
                raise SqlPlanError("HAVING requires GROUP BY or aggregates")
            outputs = self._expand_items(stmt, plan)
            order_keys = [(o.expr, o.ascending) for o in stmt.order_by]
            return plan, outputs, order_keys

        if any(item.star for item in stmt.items):
            raise SqlPlanError("SELECT * cannot be combined with aggregation")

        # Deduplicate structurally identical aggregate calls.
        unique: list[FuncCall] = []
        for call in aggregates:
            if call not in unique:
                unique.append(call)
        mapping: dict[Expr, Expr] = {}
        specs: list[AggregateSpec] = []
        for pos, call in enumerate(unique):
            name = f"__agg{pos}"
            argument = call.args[0] if call.args else None
            specs.append(AggregateSpec(call.name.lower(), argument, name))
            mapping[call] = ColumnRef(name)

        group_names: list[tuple[str, Expr]] = []
        for pos, key in enumerate(stmt.group_by):
            name = f"__key{pos}"
            group_names.append((name, key))
            mapping[key] = ColumnRef(name)

        plan = Aggregate(plan, group_names, specs)

        if stmt.having is not None:
            plan = Filter(plan, rewrite(stmt.having, mapping))

        outputs: list[tuple[str, Expr]] = []
        for pos, item in enumerate(stmt.items):
            assert item.expr is not None
            expr = rewrite(item.expr, mapping)
            outputs.append((self._output_name(item, pos), expr))
        order_keys = [
            (rewrite(o.expr, mapping), o.ascending) for o in stmt.order_by
        ]
        return plan, outputs, order_keys

    def _expand_items(
        self, stmt: SelectStatement, plan: PlanNode
    ) -> list[tuple[str, Expr]]:
        outputs: list[tuple[str, Expr]] = []
        relations = [stmt.source] + [j.table for j in stmt.joins]
        ctes = {name.lower(): body for name, body in stmt.ctes}
        for pos, item in enumerate(stmt.items):
            if item.star:
                refs = relations
                if item.star_qualifier is not None:
                    refs = [
                        r for r in relations
                        if r is not None and r.alias.lower() == item.star_qualifier.lower()
                    ]
                    if not refs:
                        raise SqlPlanError(
                            f"unknown alias '{item.star_qualifier}' in select *"
                        )
                for ref in refs:
                    assert ref is not None
                    for column in self._relation_columns(ref, ctes):
                        outputs.append(
                            (column.lower(), ColumnRef(column, ref.alias))
                        )
                continue
            assert item.expr is not None
            outputs.append((self._output_name(item, pos), item.expr))
        # de-duplicate output names (joined tables may share column names)
        seen: dict[str, int] = {}
        deduped: list[tuple[str, Expr]] = []
        for name, expr in outputs:
            if name in seen:
                seen[name] += 1
                name = f"{name}_{seen[name]}"
            else:
                seen[name] = 0
            deduped.append((name, expr))
        return deduped

    @staticmethod
    def _output_name(item: SelectItem, position: int) -> str:
        if item.alias:
            return item.alias.lower()
        if isinstance(item.expr, ColumnRef):
            return item.expr.name.lower()
        return f"col{position}"


# ----------------------------------------------------------------------
# pattern helpers
# ----------------------------------------------------------------------
def _literal_value(expr: Expr):
    if isinstance(expr, Literal):
        return expr.value
    if isinstance(expr, UnaryOp) and expr.op == "-" and isinstance(expr.operand, Literal):
        return -expr.operand.value  # type: ignore[operator]
    return None


def _range_bounds(conjunct: Expr, key: str) -> tuple[object, object] | None:
    """Match ``key BETWEEN lit AND lit`` (or = lit) for index range scans."""
    if (
        isinstance(conjunct, Between)
        and isinstance(conjunct.value, ColumnRef)
        and conjunct.value.name.lower() == key.lower()
    ):
        lo = _literal_value(conjunct.low)
        hi = _literal_value(conjunct.high)
        if lo is not None and hi is not None:
            return lo, hi
    if (
        isinstance(conjunct, BinaryOp)
        and conjunct.op == "="
        and isinstance(conjunct.left, ColumnRef)
        and conjunct.left.name.lower() == key.lower()
    ):
        value = _literal_value(conjunct.right)
        if value is not None:
            return value, value
    return None


def _is_equi_shape(conjunct: Expr, owners: frozenset[str]) -> bool:
    """Does this conjunct look like an equi-join (for cost purposes)?"""
    return (
        isinstance(conjunct, BinaryOp)
        and conjunct.op == "="
        and len(owners) >= 2
    )


def _is_band_shape(conjunct: Expr, owners: frozenset[str]) -> bool:
    """Does this conjunct look like a band bound (for cost purposes)?

    A cross-relation BETWEEN on a column, a range comparison with a
    bare column on one side, or ``abs(a-b) < c`` may extract into a
    :class:`BandJoin`; the join-order search prices such steps with the
    band cost instead of the nested loop.  Deliberately conservative:
    a complex expression compared to a literal (the chi² filter) is
    *not* band-shaped, so the DP never under-prices a step that will
    execute as a nested loop.
    """
    if len(owners) < 2:
        return False
    if isinstance(conjunct, Between):
        return isinstance(conjunct.value, ColumnRef)
    if not (isinstance(conjunct, BinaryOp)
            and conjunct.op in ("<", "<=", ">", ">=")):
        return False

    def abs_diff(expr: Expr) -> bool:
        return (
            isinstance(expr, FuncCall)
            and expr.name.lower() == "abs"
            and len(expr.args) == 1
            and isinstance(expr.args[0], BinaryOp)
            and expr.args[0].op == "-"
        )

    return (
        isinstance(conjunct.left, ColumnRef)
        or isinstance(conjunct.right, ColumnRef)
        or abs_diff(conjunct.left)
        or abs_diff(conjunct.right)
    )


def _stamp_workers(plan: PlanNode, workers: int) -> None:
    """Push the database's ``intra_query_workers`` knob onto every
    operator that supports morsel-parallel execution."""
    if hasattr(plan, "workers"):
        plan.workers = workers
    for child in plan._children():
        _stamp_workers(child, workers)


def _stamp_compiled(plan: PlanNode) -> None:
    """Mark every operator for fused-kernel execution
    (``EngineConfig(compiled_expressions=True)``).  Operators without
    expressions ignore the flag; the ones with lower their trees into
    :class:`~repro.engine.compile.CompiledKernel` programs lazily on
    first execution."""
    plan.compiled = True
    for child in plan._children():
        _stamp_compiled(child)


def _band_bounds(
    conjunct: Expr,
    left_aliases: set[str],
    right_rel: _Relation,
    relations: list[_Relation],
) -> tuple[ColumnRef, list[tuple[str, Expr, bool]]] | None:
    """Match one conjunct as a band bound on a right-relation column.

    Returns ``(key, [(side, bound_expr, strict), ...])`` — side is
    ``"lo"``/``"hi"`` — when the conjunct constrains a *single* column
    of the relation being joined by expressions over already-bound
    relations (or literals).  Recognized shapes:

    * ``key BETWEEN lo AND hi``        (inclusive both ends)
    * ``key < e`` / ``e < key`` chains (any of ``<  <=  >  >=``)
    * ``abs(a - b) < c``               (either operand the key) —
      rewritten to ``key in (other - c, other + c)``
    """
    right_alias = right_rel.ref.alias.lower()

    def side_of(expr: Expr) -> str | None:
        aliases: set[str] = set()
        for ref in expr.column_refs():
            alias = Planner._resolve_alias(ref, relations)
            if alias is None:
                return None
            aliases.add(alias)
        if not aliases:
            return "const"
        if aliases == {right_alias}:
            return "right"
        if aliases <= left_aliases:
            return "left"
        return None

    def is_key(expr: Expr) -> bool:
        return isinstance(expr, ColumnRef) and side_of(expr) == "right"

    def is_bound(expr: Expr) -> bool:
        return side_of(expr) in ("left", "const")

    if isinstance(conjunct, Between):
        if (
            is_key(conjunct.value)
            and is_bound(conjunct.low)
            and is_bound(conjunct.high)
        ):
            assert isinstance(conjunct.value, ColumnRef)
            return conjunct.value, [
                ("lo", conjunct.low, False),
                ("hi", conjunct.high, False),
            ]
        return None

    if not (isinstance(conjunct, BinaryOp) and conjunct.op in ("<", "<=", ">", ">=")):
        return None

    op, left, right = conjunct.op, conjunct.left, conjunct.right
    if is_key(right) and is_bound(left):
        op = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}[op]
        left, right = right, left
    if is_key(left) and is_bound(right):
        assert isinstance(left, ColumnRef)
        strict = op in ("<", ">")
        if op in ("<", "<="):
            return left, [("hi", right, strict)]
        return left, [("lo", right, strict)]

    # abs(a - b) < c  (or c > abs(a - b)): a symmetric band around the
    # non-key operand — the MaxBCG chi² color constraint's shape.
    if op in (">", ">="):
        op = {">": "<", ">=": "<="}[op]
        left, right = right, left
    if (
        op in ("<", "<=")
        and isinstance(left, FuncCall)
        and left.name.lower() == "abs"
        and len(left.args) == 1
        and isinstance(left.args[0], BinaryOp)
        and left.args[0].op == "-"
        and is_bound(right)
    ):
        a, b = left.args[0].left, left.args[0].right
        key = other = None
        if is_key(a) and is_bound(b):
            key, other = a, b
        elif is_key(b) and is_bound(a):
            key, other = b, a
        if key is not None:
            assert isinstance(key, ColumnRef)
            strict = op == "<"
            return key, [
                ("lo", BinaryOp("-", other, right), strict),
                ("hi", BinaryOp("+", other, right), strict),
            ]
    return None


def _extract_band(
    residuals: list[Expr],
    left_aliases: set[str],
    right_rel: _Relation,
    relations: list[_Relation],
) -> tuple[ColumnRef, Expr | None, Expr | None, bool, bool, list[Expr]] | None:
    """Split join conjuncts into one band spec plus leftover residuals.

    The first conjunct that yields a bound fixes the band key; further
    conjuncts fill the *empty* side of the band (``lo > ... AND lo < ...``
    chains), and everything else — including extra bounds on an
    already-filled side, which would need runtime min/max to merge —
    stays in the vectorized residual.
    """
    key: ColumnRef | None = None
    low: Expr | None = None
    high: Expr | None = None
    low_strict = high_strict = False
    leftover: list[Expr] = []
    for conjunct in residuals:
        match = _band_bounds(conjunct, left_aliases, right_rel, relations)
        if match is None:
            leftover.append(conjunct)
            continue
        ckey, entries = match
        if key is not None and ckey != key:
            leftover.append(conjunct)
            continue
        fillable = all(
            (low is None) if side == "lo" else (high is None)
            for side, _, _ in entries
        )
        if not fillable:
            leftover.append(conjunct)
            continue
        key = ckey
        for side, expr, strict in entries:
            if side == "lo":
                low, low_strict = expr, strict
            else:
                high, high_strict = expr, strict
    if key is None:
        return None
    return key, low, high, low_strict, high_strict, leftover


def _or_disables_index(conjuncts: list[Expr], leading: str) -> str | None:
    """If a top-level OR references the index's leading key, explain the
    fallback to a scan (the classic 'OR disables the index' trap)."""
    for conjunct in conjuncts:
        if not (isinstance(conjunct, BinaryOp) and conjunct.op.upper() == "OR"):
            continue
        if any(
            ref.name.lower() == leading.lower()
            for ref in conjunct.column_refs()
        ):
            return f"index on {leading} unused: OR predicate"
    return None


def _equi_pair(
    conjunct: Expr,
    left_aliases: set[str],
    right_rel: _Relation,
    relations: list[_Relation],
) -> tuple[Expr, Expr] | None:
    """Match ``left_expr = right_expr`` split across the join boundary."""
    if not (isinstance(conjunct, BinaryOp) and conjunct.op == "="):
        return None

    def side_of(expr: Expr) -> str | None:
        aliases: set[str] = set()
        for ref in expr.column_refs():
            alias = Planner._resolve_alias(ref, relations)
            if alias is None:
                return None
            aliases.add(alias)
        if not aliases:
            return None
        if aliases <= left_aliases:
            return "left"
        if aliases == {right_rel.ref.alias.lower()}:
            return "right"
        return None

    left_side = side_of(conjunct.left)
    right_side = side_of(conjunct.right)
    if left_side == "left" and right_side == "right":
        return conjunct.left, conjunct.right
    if left_side == "right" and right_side == "left":
        return conjunct.right, conjunct.left
    return None
