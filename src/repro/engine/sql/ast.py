"""Abstract syntax tree for the SQL subset.

Statement nodes are thin dataclasses; expressions reuse the engine's
:mod:`repro.engine.expressions` nodes directly, so no second expression
representation exists — the parser builds evaluatable trees.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine.expressions import Expr


@dataclass(frozen=True)
class TableRef:
    """A relation in FROM/JOIN with its binding alias.

    ``table`` names either a base table, a view, or — when
    ``function_args`` is not None — a table-valued function invocation
    (the paper's ``FROM fGetNearbyObjEqZd(@ra, @dec, @r) n`` shape).
    When ``subquery`` is set this is a derived table
    (``FROM (SELECT ...) alias``) and ``table`` is empty.
    """

    table: str
    alias: str
    function_args: tuple[Expr, ...] | None = None
    subquery: "SelectStatement | None" = None

    @property
    def is_function(self) -> bool:
        return self.function_args is not None

    @property
    def is_subquery(self) -> bool:
        return self.subquery is not None


@dataclass(frozen=True)
class JoinClause:
    """One JOIN step: kind is 'inner', 'left' or 'cross'.

    Cross joins have no ON condition; left joins keep unmatched left
    rows with NULL (NaN) right columns.
    """

    kind: str
    table: TableRef
    condition: Expr | None


@dataclass(frozen=True)
class SelectItem:
    """One output column: expression plus optional alias.

    ``star`` marks ``*`` or ``alias.*`` items (expr is None for those).
    """

    expr: Expr | None
    alias: str | None
    star: bool = False
    star_qualifier: str | None = None


@dataclass(frozen=True)
class AggregateCall:
    """Marker for an aggregate in a select item (COUNT/SUM/MIN/MAX/AVG)."""

    func: str
    argument: Expr | None  # None encodes COUNT(*)


@dataclass(frozen=True)
class OrderItem:
    expr: Expr
    ascending: bool


@dataclass(frozen=True)
class SelectStatement:
    """One SELECT.  ``ctes`` holds ``WITH name AS (SELECT ...)`` bodies
    in declaration order; CTE names are resolvable only in this
    statement's own FROM/JOIN clauses (no nested or recursive CTEs)."""

    items: tuple[SelectItem, ...]
    source: TableRef | None
    joins: tuple[JoinClause, ...] = ()
    where: Expr | None = None
    group_by: tuple[Expr, ...] = ()
    having: Expr | None = None
    order_by: tuple[OrderItem, ...] = ()
    limit: int | None = None
    offset: int | None = None
    distinct: bool = False
    ctes: tuple[tuple[str, "SelectStatement"], ...] = ()


@dataclass(frozen=True)
class Exists(Expr):
    """``EXISTS (SELECT ...)`` predicate.

    Not directly evaluatable: the planner replaces it with a
    :class:`~repro.engine.sql.planner.SubqueryPredicate` (naive path)
    or the rewrite pass decorrelates it into a semi-join.
    """

    select: "SelectStatement"

    def eval(self, batch):  # pragma: no cover - always planned away
        raise NotImplementedError(
            "EXISTS must be planned by the SQL planner before evaluation"
        )


@dataclass(frozen=True)
class InSubquery(Expr):
    """``expr IN (SELECT ...)`` predicate (see :class:`Exists`)."""

    value: Expr
    select: "SelectStatement"

    def children(self) -> tuple[Expr, ...]:
        return (self.value,)

    def eval(self, batch):  # pragma: no cover - always planned away
        raise NotImplementedError(
            "IN (SELECT ...) must be planned by the SQL planner "
            "before evaluation"
        )


@dataclass(frozen=True)
class UnionStatement:
    """``SELECT ... UNION ALL SELECT ...`` (bag semantics only)."""

    selects: tuple[SelectStatement, ...]


@dataclass(frozen=True)
class ColumnDef:
    name: str
    type_name: str
    primary_key: bool = False


@dataclass(frozen=True)
class CreateTableStatement:
    table: str
    columns: tuple[ColumnDef, ...]
    if_not_exists: bool = False


@dataclass(frozen=True)
class InsertStatement:
    table: str
    columns: tuple[str, ...] | None  # None = schema order
    rows: tuple[tuple[Expr, ...], ...] = ()
    select: SelectStatement | None = None


@dataclass(frozen=True)
class UpdateStatement:
    table: str
    assignments: tuple[tuple[str, Expr], ...]
    where: Expr | None


@dataclass(frozen=True)
class DeleteStatement:
    table: str
    where: Expr | None


@dataclass(frozen=True)
class TruncateStatement:
    table: str


@dataclass(frozen=True)
class DropTableStatement:
    table: str
    if_exists: bool = False


@dataclass(frozen=True)
class CreateViewStatement:
    """``CREATE VIEW name AS SELECT ...`` — the paper's Zone view."""

    name: str
    select: "SelectStatement"


@dataclass(frozen=True)
class DropViewStatement:
    name: str
    if_exists: bool = False


@dataclass(frozen=True)
class CreateMaterializedViewStatement:
    """``CREATE MATERIALIZED VIEW name AS SELECT ...`` — the defining
    SELECT runs once and its rows are stored; see
    :mod:`repro.engine.matview`."""

    name: str
    select: "SelectStatement"


@dataclass(frozen=True)
class RefreshMaterializedViewStatement:
    """``REFRESH MATERIALIZED VIEW name`` — re-run the stored SELECT
    and re-snapshot the source-table versions."""

    name: str


@dataclass(frozen=True)
class DropMaterializedViewStatement:
    name: str
    if_exists: bool = False


@dataclass(frozen=True)
class ExecStatement:
    """``EXEC procname arg, arg, ...`` — the paper's spMakeCandidates
    invocations.  Arguments must be constant expressions."""

    procedure: str
    arguments: tuple[Expr, ...] = ()


@dataclass(frozen=True)
class AnalyzeStatement:
    """``ANALYZE [table]`` — collect optimizer statistics.

    With no table, analyzes every table in the catalog.
    """

    table: str | None = None


Statement = (
    SelectStatement
    | CreateTableStatement
    | InsertStatement
    | UpdateStatement
    | DeleteStatement
    | TruncateStatement
    | DropTableStatement
    | CreateViewStatement
    | DropViewStatement
    | CreateMaterializedViewStatement
    | RefreshMaterializedViewStatement
    | DropMaterializedViewStatement
    | ExecStatement
    | AnalyzeStatement
    | UnionStatement
)
