"""SQL front end: lexer, parser, planner, executor, scalar functions."""

from repro.engine.sql.executor import Executor, QueryResult
from repro.engine.sql.functions import register_function
from repro.engine.sql.parser import parse, parse_script
from repro.engine.sql.printer import expr_to_sql, select_to_sql, statement_to_sql

__all__ = [
    "Executor",
    "QueryResult",
    "expr_to_sql",
    "parse",
    "parse_script",
    "register_function",
    "select_to_sql",
    "statement_to_sql",
]
