"""Recursive-descent parser for the SQL subset.

Statements supported: SELECT (joins, WHERE, GROUP BY, HAVING, ORDER BY,
LIMIT, DISTINCT), CREATE TABLE, INSERT (VALUES and INSERT..SELECT),
UPDATE, DELETE, TRUNCATE TABLE, DROP TABLE, ANALYZE.  Expressions reuse
the
engine expression nodes; aggregate calls parse as
:class:`~repro.engine.expressions.FuncCall` nodes that the planner
recognizes by name (``COUNT(*)`` parses as a zero-argument ``count``).
"""

from __future__ import annotations

from repro.engine.expressions import (
    Between,
    BinaryOp,
    Case,
    ColumnRef,
    Expr,
    FuncCall,
    InList,
    Literal,
    UnaryOp,
)
import dataclasses

from repro.engine.sql.ast import (
    AnalyzeStatement,
    ColumnDef,
    Exists,
    InSubquery,
    CreateMaterializedViewStatement,
    CreateTableStatement,
    CreateViewStatement,
    DeleteStatement,
    DropMaterializedViewStatement,
    DropTableStatement,
    DropViewStatement,
    ExecStatement,
    InsertStatement,
    JoinClause,
    OrderItem,
    RefreshMaterializedViewStatement,
    SelectItem,
    SelectStatement,
    Statement,
    TableRef,
    TruncateStatement,
    UnionStatement,
    UpdateStatement,
)
from repro.engine.sql.lexer import Token, TokenType, tokenize
from repro.errors import SqlSyntaxError

#: Function names the planner treats as aggregates.
AGGREGATE_FUNCS = {"count", "count_distinct", "sum", "min", "max", "avg"}

_COMPARISON_OPS = ("=", "!=", "<", "<=", ">", ">=")


class Parser:
    """One-shot parser over a token list."""

    def __init__(self, text: str):
        self.text = text
        self.tokens = tokenize(text)
        self.pos = 0

    # ------------------------------------------------------------------
    # token plumbing
    # ------------------------------------------------------------------
    def peek(self, ahead: int = 0) -> Token:
        return self.tokens[min(self.pos + ahead, len(self.tokens) - 1)]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.type is not TokenType.EOF:
            self.pos += 1
        return token

    def error(self, message: str) -> SqlSyntaxError:
        return SqlSyntaxError(message, self.peek().position)

    def expect_keyword(self, *names: str) -> Token:
        token = self.peek()
        if token.is_keyword(*names):
            return self.advance()
        raise self.error(f"expected {'/'.join(names).upper()}, got '{token.value}'")

    def accept_keyword(self, *names: str) -> bool:
        if self.peek().is_keyword(*names):
            self.advance()
            return True
        return False

    def expect_punct(self, value: str) -> Token:
        token = self.peek()
        if token.type is TokenType.PUNCT and token.value == value:
            return self.advance()
        raise self.error(f"expected '{value}', got '{token.value}'")

    def accept_punct(self, value: str) -> bool:
        token = self.peek()
        if token.type is TokenType.PUNCT and token.value == value:
            self.advance()
            return True
        return False

    def expect_ident(self) -> str:
        token = self.peek()
        if token.type is TokenType.IDENT:
            return self.advance().value
        raise self.error(f"expected identifier, got '{token.value}'")

    # ------------------------------------------------------------------
    # statements
    # ------------------------------------------------------------------
    def parse_statement(self) -> Statement:
        token = self.peek()
        if token.is_keyword("select"):
            stmt = self.parse_select_chain()
        elif token.is_keyword("with"):
            stmt = self.parse_with()
        elif token.is_keyword("create"):
            stmt = self.parse_create()
        elif token.is_keyword("exec", "execute"):
            stmt = self.parse_exec()
        elif token.is_keyword("insert"):
            stmt = self.parse_insert()
        elif token.is_keyword("update"):
            stmt = self.parse_update()
        elif token.is_keyword("delete"):
            stmt = self.parse_delete()
        elif token.is_keyword("truncate"):
            stmt = self.parse_truncate()
        elif token.is_keyword("drop"):
            stmt = self.parse_drop()
        elif token.is_keyword("analyze"):
            stmt = self.parse_analyze()
        elif token.is_keyword("refresh"):
            stmt = self.parse_refresh()
        else:
            raise self.error(f"unexpected token '{token.value}' at statement start")
        self.accept_punct(";")
        if self.peek().type is not TokenType.EOF:
            raise self.error(f"trailing input after statement: '{self.peek().value}'")
        return stmt

    def parse_select_chain(self) -> SelectStatement | UnionStatement:
        """A SELECT, optionally UNION ALL'ed with further SELECTs."""
        first = self.parse_select()
        if not self.peek().is_keyword("union"):
            return first
        selects = [first]
        while self.accept_keyword("union"):
            self.expect_keyword("all")  # bag semantics only
            selects.append(self.parse_select())
        return UnionStatement(tuple(selects))

    def parse_with(self) -> SelectStatement:
        """``WITH name AS (SELECT ...) [, ...] SELECT ...``.

        CTEs attach to the following SELECT; nested WITH, recursive
        CTEs and WITH over UNION are not supported.
        """
        self.expect_keyword("with")
        ctes: list[tuple[str, SelectStatement]] = []
        seen: set[str] = set()
        while True:
            name = self.expect_ident()
            if name in seen:
                raise self.error(f"duplicate CTE name '{name}'")
            seen.add(name)
            self.expect_keyword("as")
            self.expect_punct("(")
            body = self.parse_select()
            self.expect_punct(")")
            ctes.append((name, body))
            if not self.accept_punct(","):
                break
        select = self.parse_select()
        if self.peek().is_keyword("union"):
            raise self.error("UNION under WITH is not supported")
        return dataclasses.replace(select, ctes=tuple(ctes))

    def parse_select(self) -> SelectStatement:
        self.expect_keyword("select")
        distinct = self.accept_keyword("distinct")
        top: int | None = None
        if self.accept_keyword("top"):
            # the SQL Server spelling of LIMIT, era-appropriate
            token = self.peek()
            if token.type is not TokenType.NUMBER:
                raise self.error("TOP expects a number")
            self.advance()
            top = int(float(token.value))
        items = [self.parse_select_item()]
        while self.accept_punct(","):
            items.append(self.parse_select_item())

        source: TableRef | None = None
        joins: list[JoinClause] = []
        if self.accept_keyword("from"):
            source = self.parse_table_ref()
            while True:
                if self.accept_keyword("cross"):
                    self.expect_keyword("join")
                    joins.append(JoinClause("cross", self.parse_table_ref(), None))
                elif self.peek().is_keyword("left"):
                    self.advance()
                    self.accept_keyword("outer")
                    self.expect_keyword("join")
                    table = self.parse_table_ref()
                    self.expect_keyword("on")
                    joins.append(JoinClause("left", table, self.parse_expr()))
                elif self.peek().is_keyword("inner", "join"):
                    self.accept_keyword("inner")
                    self.expect_keyword("join")
                    table = self.parse_table_ref()
                    self.expect_keyword("on")
                    joins.append(JoinClause("inner", table, self.parse_expr()))
                else:
                    break

        where = self.parse_expr() if self.accept_keyword("where") else None

        group_by: list[Expr] = []
        if self.accept_keyword("group"):
            self.expect_keyword("by")
            group_by.append(self.parse_expr())
            while self.accept_punct(","):
                group_by.append(self.parse_expr())

        having = self.parse_expr() if self.accept_keyword("having") else None

        order_by: list[OrderItem] = []
        if self.accept_keyword("order"):
            self.expect_keyword("by")
            while True:
                expr = self.parse_expr()
                # ORDER BY <ordinal>: a bare integer names a select item
                if (
                    isinstance(expr, Literal)
                    and isinstance(expr.value, int)
                    and not isinstance(expr.value, bool)
                ):
                    position = expr.value
                    if not (1 <= position <= len(items)):
                        raise self.error(
                            f"ORDER BY position {position} out of range"
                        )
                    item = items[position - 1]
                    if item.star or item.expr is None:
                        raise self.error("cannot ORDER BY a * item")
                    expr = item.expr
                ascending = True
                if self.accept_keyword("desc"):
                    ascending = False
                else:
                    self.accept_keyword("asc")
                order_by.append(OrderItem(expr, ascending))
                if not self.accept_punct(","):
                    break

        limit: int | None = top
        offset: int | None = None
        if self.accept_keyword("limit"):
            if top is not None:
                raise self.error("cannot combine TOP with LIMIT")
            token = self.peek()
            if token.type is not TokenType.NUMBER:
                raise self.error("LIMIT expects a number")
            self.advance()
            limit = int(float(token.value))
            if self.accept_keyword("offset"):
                token = self.peek()
                if token.type is not TokenType.NUMBER:
                    raise self.error("OFFSET expects a number")
                self.advance()
                offset = int(float(token.value))

        return SelectStatement(
            items=tuple(items),
            source=source,
            joins=tuple(joins),
            where=where,
            group_by=tuple(group_by),
            having=having,
            order_by=tuple(order_by),
            limit=limit,
            offset=offset,
            distinct=distinct,
        )

    def parse_select_item(self) -> SelectItem:
        token = self.peek()
        # bare * or alias.*
        if token.type is TokenType.OPERATOR and token.value == "*":
            self.advance()
            return SelectItem(None, None, star=True)
        if (
            token.type is TokenType.IDENT
            and self.peek(1).type is TokenType.PUNCT
            and self.peek(1).value == "."
            and self.peek(2).type is TokenType.OPERATOR
            and self.peek(2).value == "*"
        ):
            qualifier = self.advance().value
            self.advance()  # .
            self.advance()  # *
            return SelectItem(None, None, star=True, star_qualifier=qualifier)

        expr = self.parse_expr()
        alias: str | None = None
        if self.accept_keyword("as"):
            alias = self.expect_ident()
        elif self.peek().type is TokenType.IDENT:
            alias = self.advance().value
        return SelectItem(expr, alias)

    def parse_table_ref(self) -> TableRef:
        # derived table: FROM (SELECT ...) alias
        if self.peek().type is TokenType.PUNCT and self.peek().value == "(":
            self.advance()
            subquery = self.parse_select()
            self.expect_punct(")")
            self.accept_keyword("as")
            alias = self.expect_ident()
            return TableRef("", alias, subquery=subquery)
        name = self.expect_ident()
        # swallow schema qualifiers (MySkyServerDr1.dbo.Zone -> zone)
        while self.accept_punct("."):
            name = self.expect_ident()
        function_args: tuple | None = None
        if self.accept_punct("("):
            # table-valued function: FROM fGetNearbyObjEqZd(2.5, 3.0, 0.5) n
            args: list = []
            if not self.accept_punct(")"):
                args.append(self.parse_expr())
                while self.accept_punct(","):
                    args.append(self.parse_expr())
                self.expect_punct(")")
            function_args = tuple(args)
        alias = name
        if self.accept_keyword("as"):
            alias = self.expect_ident()
        elif self.peek().type is TokenType.IDENT:
            alias = self.advance().value
        return TableRef(name, alias, function_args)

    def parse_create(self) -> Statement:
        """Dispatch CREATE TABLE vs CREATE [MATERIALIZED] VIEW."""
        if self.peek(1).is_keyword("materialized"):
            return self.parse_create_materialized_view()
        if self.peek(1).is_keyword("view"):
            return self.parse_create_view()
        return self.parse_create_table()

    def parse_create_view(self) -> CreateViewStatement:
        self.expect_keyword("create")
        self.expect_keyword("view")
        name = self.expect_ident()
        self.expect_keyword("as")
        return CreateViewStatement(name, self.parse_select())

    def parse_create_materialized_view(self) -> CreateMaterializedViewStatement:
        self.expect_keyword("create")
        self.expect_keyword("materialized")
        self.expect_keyword("view")
        name = self.expect_ident()
        self.expect_keyword("as")
        return CreateMaterializedViewStatement(name, self.parse_select())

    def parse_refresh(self) -> RefreshMaterializedViewStatement:
        self.expect_keyword("refresh")
        self.expect_keyword("materialized")
        self.expect_keyword("view")
        return RefreshMaterializedViewStatement(self.expect_ident())

    def parse_exec(self) -> ExecStatement:
        self.advance()  # EXEC / EXECUTE
        name = self.expect_ident()
        while self.accept_punct("."):
            name = self.expect_ident()  # dbo.spMakeClusters -> spmakeclusters
        arguments: list = []
        token = self.peek()
        if not (token.type is TokenType.EOF
                or (token.type is TokenType.PUNCT and token.value == ";")):
            arguments.append(self.parse_expr())
            while self.accept_punct(","):
                arguments.append(self.parse_expr())
        return ExecStatement(name, tuple(arguments))

    def parse_create_table(self) -> CreateTableStatement:
        self.expect_keyword("create")
        self.expect_keyword("table")
        if_not_exists = False
        if self.accept_keyword("if"):
            self.expect_keyword("not")
            self.expect_keyword("exists")
            if_not_exists = True
        name = self.expect_ident()
        self.expect_punct("(")
        columns: list[ColumnDef] = []
        while True:
            col_name = self.expect_ident()
            type_name = self.expect_ident()
            # swallow (n) length suffixes like varchar(64)
            if self.accept_punct("("):
                while not self.accept_punct(")"):
                    self.advance()
            primary = False
            if self.accept_keyword("primary"):
                self.expect_keyword("key")
                primary = True
            self.accept_keyword("not")  # NOT NULL is accepted and ignored
            self.accept_keyword("null")
            if self.accept_keyword("primary"):
                self.expect_keyword("key")
                primary = True
            columns.append(ColumnDef(col_name, type_name, primary))
            if not self.accept_punct(","):
                break
        self.expect_punct(")")
        return CreateTableStatement(name, tuple(columns), if_not_exists)

    def parse_insert(self) -> InsertStatement:
        self.expect_keyword("insert")
        self.accept_keyword("into")
        table = self.expect_ident()
        columns: tuple[str, ...] | None = None
        if self.accept_punct("("):
            names = [self.expect_ident()]
            while self.accept_punct(","):
                names.append(self.expect_ident())
            self.expect_punct(")")
            columns = tuple(names)
        if self.peek().is_keyword("select"):
            return InsertStatement(table, columns, select=self.parse_select())
        self.expect_keyword("values")
        rows: list[tuple[Expr, ...]] = []
        while True:
            self.expect_punct("(")
            values = [self.parse_expr()]
            while self.accept_punct(","):
                values.append(self.parse_expr())
            self.expect_punct(")")
            rows.append(tuple(values))
            if not self.accept_punct(","):
                break
        return InsertStatement(table, columns, rows=tuple(rows))

    def parse_update(self) -> UpdateStatement:
        self.expect_keyword("update")
        table = self.expect_ident()
        self.expect_keyword("set")
        assignments: list[tuple[str, Expr]] = []
        while True:
            column = self.expect_ident()
            token = self.peek()
            if token.type is TokenType.OPERATOR and token.value == "=":
                self.advance()
            else:
                raise self.error("expected '=' in UPDATE assignment")
            assignments.append((column, self.parse_expr()))
            if not self.accept_punct(","):
                break
        where = self.parse_expr() if self.accept_keyword("where") else None
        return UpdateStatement(table, tuple(assignments), where)

    def parse_delete(self) -> DeleteStatement:
        self.expect_keyword("delete")
        self.expect_keyword("from")
        table = self.expect_ident()
        where = self.parse_expr() if self.accept_keyword("where") else None
        return DeleteStatement(table, where)

    def parse_truncate(self) -> TruncateStatement:
        self.expect_keyword("truncate")
        self.expect_keyword("table")
        return TruncateStatement(self.expect_ident())

    def parse_analyze(self) -> AnalyzeStatement:
        """``ANALYZE [table]`` — no table means the whole catalog."""
        self.expect_keyword("analyze")
        if self.peek().type is TokenType.IDENT:
            return AnalyzeStatement(self.expect_ident())
        return AnalyzeStatement(None)

    def parse_drop(self) -> Statement:
        self.expect_keyword("drop")
        kind = "table"
        if self.accept_keyword("materialized"):
            self.expect_keyword("view")
            kind = "matview"
        elif self.accept_keyword("view"):
            kind = "view"
        else:
            self.expect_keyword("table")
        if_exists = False
        if self.accept_keyword("if"):
            self.expect_keyword("exists")
            if_exists = True
        name = self.expect_ident()
        if kind == "matview":
            return DropMaterializedViewStatement(name, if_exists)
        if kind == "view":
            return DropViewStatement(name, if_exists)
        return DropTableStatement(name, if_exists)

    # ------------------------------------------------------------------
    # expressions (precedence climbing)
    # ------------------------------------------------------------------
    def parse_expr(self) -> Expr:
        return self.parse_or()

    def parse_or(self) -> Expr:
        left = self.parse_and()
        while self.accept_keyword("or"):
            left = BinaryOp("OR", left, self.parse_and())
        return left

    def parse_and(self) -> Expr:
        left = self.parse_not()
        while self.accept_keyword("and"):
            left = BinaryOp("AND", left, self.parse_not())
        return left

    def parse_not(self) -> Expr:
        if self.accept_keyword("not"):
            return UnaryOp("NOT", self.parse_not())
        return self.parse_comparison()

    def parse_comparison(self) -> Expr:
        left = self.parse_additive()
        token = self.peek()
        if token.type is TokenType.OPERATOR and token.value in _COMPARISON_OPS:
            op = self.advance().value
            return BinaryOp(op, left, self.parse_additive())
        negate = False
        if token.is_keyword("not"):
            nxt = self.peek(1)
            if nxt.is_keyword("between", "in", "like"):
                self.advance()
                negate = True
                token = self.peek()
        if token.is_keyword("between"):
            self.advance()
            low = self.parse_additive()
            self.expect_keyword("and")
            high = self.parse_additive()
            expr: Expr = Between(left, low, high)
            return UnaryOp("NOT", expr) if negate else expr
        if token.is_keyword("in"):
            self.advance()
            self.expect_punct("(")
            if self.peek().is_keyword("select"):
                sub = self.parse_select()
                self.expect_punct(")")
                expr = InSubquery(left, sub)
                return UnaryOp("NOT", expr) if negate else expr
            options = [self.parse_expr()]
            while self.accept_punct(","):
                options.append(self.parse_expr())
            self.expect_punct(")")
            expr = InList(left, tuple(options))
            return UnaryOp("NOT", expr) if negate else expr
        if token.is_keyword("is"):
            self.advance()
            is_not = self.accept_keyword("not")
            self.expect_keyword("null")
            expr = FuncCall("isnull", (left,))
            return UnaryOp("NOT", expr) if is_not else expr
        return left

    def parse_additive(self) -> Expr:
        left = self.parse_multiplicative()
        while True:
            token = self.peek()
            if token.type is TokenType.OPERATOR and token.value in ("+", "-"):
                op = self.advance().value
                left = BinaryOp(op, left, self.parse_multiplicative())
            else:
                return left

    def parse_multiplicative(self) -> Expr:
        left = self.parse_unary()
        while True:
            token = self.peek()
            if token.type is TokenType.OPERATOR and token.value in ("*", "/", "%"):
                op = self.advance().value
                left = BinaryOp(op, left, self.parse_unary())
            else:
                return left

    def parse_unary(self) -> Expr:
        token = self.peek()
        if token.type is TokenType.OPERATOR and token.value == "-":
            self.advance()
            return UnaryOp("-", self.parse_unary())
        if token.type is TokenType.OPERATOR and token.value == "+":
            self.advance()
            return self.parse_unary()
        return self.parse_primary()

    def parse_case(self) -> Expr:
        """Searched CASE: CASE WHEN cond THEN value ... [ELSE value] END."""
        self.expect_keyword("case")
        whens: list[tuple[Expr, Expr]] = []
        while self.accept_keyword("when"):
            condition = self.parse_expr()
            self.expect_keyword("then")
            whens.append((condition, self.parse_expr()))
        if not whens:
            raise self.error("CASE requires at least one WHEN branch")
        default = self.parse_expr() if self.accept_keyword("else") else None
        self.expect_keyword("end")
        return Case(tuple(whens), default)

    def parse_primary(self) -> Expr:
        token = self.peek()
        if token.type is TokenType.NUMBER:
            self.advance()
            text = token.value
            if "." in text or "e" in text or "E" in text:
                return Literal(float(text))
            return Literal(int(text))
        if token.type is TokenType.STRING:
            self.advance()
            return Literal(token.value)
        if token.is_keyword("true"):
            self.advance()
            return Literal(True)
        if token.is_keyword("false"):
            self.advance()
            return Literal(False)
        if token.is_keyword("null"):
            self.advance()
            return Literal(float("nan"))
        if token.is_keyword("case"):
            return self.parse_case()
        if token.is_keyword("exists"):
            self.advance()
            self.expect_punct("(")
            sub = self.parse_select()
            self.expect_punct(")")
            return Exists(sub)
        if self.accept_punct("("):
            expr = self.parse_expr()
            self.expect_punct(")")
            return expr
        if token.type is TokenType.IDENT:
            name = self.advance().value
            # function call
            if self.accept_punct("("):
                if name == "cast":
                    inner = self.parse_expr()
                    self.expect_keyword("as")
                    self.expect_ident()  # target type, ignored (uniform widths)
                    self.expect_punct(")")
                    return FuncCall("cast", (inner,))
                star = self.peek()
                if star.type is TokenType.OPERATOR and star.value == "*":
                    self.advance()
                    self.expect_punct(")")
                    if name not in AGGREGATE_FUNCS:
                        raise self.error(f"'{name}(*)' is not valid")
                    return FuncCall(name, ())  # COUNT(*)
                if star.is_keyword("distinct"):
                    # COUNT(DISTINCT expr)
                    self.advance()
                    if name != "count":
                        raise self.error(
                            f"DISTINCT inside '{name}(...)' is not supported"
                        )
                    inner = self.parse_expr()
                    self.expect_punct(")")
                    return FuncCall("count_distinct", (inner,))
                args: list[Expr] = []
                if not self.accept_punct(")"):
                    args.append(self.parse_expr())
                    while self.accept_punct(","):
                        args.append(self.parse_expr())
                    self.expect_punct(")")
                return FuncCall(name, tuple(args))
            # qualified column
            if self.accept_punct("."):
                column = self.expect_ident()
                return ColumnRef(column, name)
            return ColumnRef(name)
        raise self.error(f"unexpected token '{token.value}' in expression")


def parse(text: str) -> Statement:
    """Parse a single SQL statement."""
    return Parser(text).parse_statement()


def parse_script(text: str) -> list[Statement]:
    """Parse a ';'-separated script into a statement list."""
    statements: list[Statement] = []
    for chunk in _split_statements(text):
        statements.append(Parser(chunk).parse_statement())
    return statements


def _split_statements(text: str) -> list[str]:
    """Split on top-level semicolons, respecting strings and comments."""
    chunks: list[str] = []
    depth = 0
    current: list[str] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if text.startswith("--", i):
            end = text.find("\n", i)
            end = n if end < 0 else end + 1
            current.append(text[i:end])
            i = end
            continue
        if ch == "'":
            j = i + 1
            while j < n:
                if text[j] == "'" and not text.startswith("''", j):
                    break
                j += 2 if text.startswith("''", j) else 1
            current.append(text[i:j + 1])
            i = j + 1
            continue
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
        elif ch == ";" and depth == 0:
            chunk = "".join(current).strip()
            if chunk:
                chunks.append(chunk)
            current = []
            i += 1
            continue
        current.append(ch)
        i += 1
    tail = "".join(current).strip()
    if tail:
        chunks.append(tail)
    return chunks
