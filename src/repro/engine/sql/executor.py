"""Statement execution: DDL, DML and queries against a Database."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.engine.expressions import Batch, batch_length
from repro.engine.sql.ast import (
    AnalyzeStatement,
    CreateMaterializedViewStatement,
    CreateTableStatement,
    CreateViewStatement,
    DeleteStatement,
    DropMaterializedViewStatement,
    DropTableStatement,
    DropViewStatement,
    ExecStatement,
    InsertStatement,
    RefreshMaterializedViewStatement,
    SelectStatement,
    Statement,
    TruncateStatement,
    UnionStatement,
    UpdateStatement,
)
from repro.engine.sql.planner import Planner
from repro.engine.types import sql_type
from repro.engine.schema import Column, TableSchema
from repro.errors import SqlPlanError

#: Dummy one-row batch used to evaluate constant expressions.
_SCALAR_BATCH: Batch = {"__scalar": np.zeros(1)}


@dataclass
class QueryResult:
    """Result of one statement.

    ``columns`` is the output batch for SELECTs (empty for DDL/DML);
    ``rows_affected`` counts DML effects; ``plan`` is the EXPLAIN text
    for SELECTs.  With the feedback optimizer or the Query Store on,
    ``fingerprint`` carries the normalized-statement hash and
    ``memo_decision`` records how the plan was obtained (``hit`` /
    ``miss`` / ``replan`` / ``learned-override`` / ``forced`` / ...)
    so results join cleanly against the FeedbackStore, the Query Store
    and the slow-query log.  ``plan_origin`` is the decision that first
    *produced* the plan (differs from ``memo_decision`` on memo hits);
    ``plan_node`` is the live operator tree for SELECTs, which the
    Query Store hashes into a structural plan identity.
    """

    columns: Batch = field(default_factory=dict)
    rows_affected: int = 0
    plan: str = ""
    fingerprint: str | None = None
    memo_decision: str | None = None
    plan_origin: str | None = None
    plan_node: object | None = None

    @property
    def row_count(self) -> int:
        return batch_length(self.columns)

    @property
    def column_names(self) -> list[str]:
        return list(self.columns)

    def column(self, name: str) -> np.ndarray:
        try:
            return self.columns[name.lower()]
        except KeyError:
            raise SqlPlanError(
                f"result has no column '{name}' (have {self.column_names})"
            ) from None

    def rows(self) -> list[dict]:
        """Materialize as a list of row dicts (tests and small results)."""
        names = self.column_names
        arrays = [np.asarray(self.columns[n]) for n in names]
        return [
            {name: arr[i].item() if hasattr(arr[i], "item") else arr[i]
             for name, arr in zip(names, arrays)}
            for i in range(self.row_count)
        ]

    def scalar(self):
        """The single value of a 1x1 result."""
        if self.row_count != 1 or len(self.columns) != 1:
            raise SqlPlanError(
                f"scalar() needs a 1x1 result, got {self.row_count} rows x "
                f"{len(self.columns)} columns"
            )
        return next(iter(self.columns.values()))[0].item()


class Executor:
    """Executes parsed statements against a database."""

    def __init__(self, database):
        self.database = database
        self.planner = Planner(database)

    def execute(self, stmt: Statement) -> QueryResult:
        if isinstance(stmt, SelectStatement):
            return self._select(stmt)
        if isinstance(stmt, CreateTableStatement):
            return self._create_table(stmt)
        if isinstance(stmt, InsertStatement):
            return self._insert(stmt)
        if isinstance(stmt, UpdateStatement):
            return self._update(stmt)
        if isinstance(stmt, DeleteStatement):
            return self._delete(stmt)
        if isinstance(stmt, TruncateStatement):
            self._guard_matview(stmt.table, "TRUNCATE")
            self.database.table(stmt.table).truncate()
            self.database.invalidate_indexes(stmt.table)
            return QueryResult()
        if isinstance(stmt, DropTableStatement):
            self.database.drop_table(stmt.table, if_exists=stmt.if_exists)
            return QueryResult()
        if isinstance(stmt, CreateViewStatement):
            self.database.create_view(stmt.name, stmt.select)
            return QueryResult()
        if isinstance(stmt, DropViewStatement):
            self.database.drop_view(stmt.name, if_exists=stmt.if_exists)
            return QueryResult()
        if isinstance(stmt, CreateMaterializedViewStatement):
            view = self.database.create_materialized_view(stmt.name, stmt.select)
            return QueryResult(
                rows_affected=self.database.table(view.name).row_count
            )
        if isinstance(stmt, RefreshMaterializedViewStatement):
            rows = self.database.refresh_materialized_view(stmt.name)
            return QueryResult(rows_affected=rows)
        if isinstance(stmt, DropMaterializedViewStatement):
            self.database.drop_materialized_view(
                stmt.name, if_exists=stmt.if_exists
            )
            return QueryResult()
        if isinstance(stmt, ExecStatement):
            return self._exec(stmt)
        if isinstance(stmt, AnalyzeStatement):
            return self._analyze(stmt)
        if isinstance(stmt, UnionStatement):
            return self._union(stmt)
        raise SqlPlanError(f"unsupported statement {type(stmt).__name__}")

    def _analyze(self, stmt: AnalyzeStatement) -> QueryResult:
        """ANALYZE [table]: collect statistics, report what was analyzed."""
        names = self.database.analyze(stmt.table)
        tables = [self.database.table(name) for name in names]
        return QueryResult(columns={
            "table_name": np.asarray(names, dtype=object),
            "n_rows": np.asarray([t.row_count for t in tables], dtype=np.int64),
            "n_columns": np.asarray(
                [len(t.schema.columns) for t in tables], dtype=np.int64
            ),
        })

    def _union(self, stmt: UnionStatement) -> QueryResult:
        """UNION ALL: concatenate branch results, aligned by position."""
        parts = [self._select(select) for select in stmt.selects]
        first_names = parts[0].column_names
        for part in parts[1:]:
            if len(part.column_names) != len(first_names):
                raise SqlPlanError(
                    "UNION ALL branches must have the same column count"
                )
        columns: Batch = {}
        for position, name in enumerate(first_names):
            columns[name] = np.concatenate([
                np.asarray(part.columns[part.column_names[position]])
                for part in parts
            ])
        return QueryResult(columns=columns)

    def _exec(self, stmt: ExecStatement) -> QueryResult:
        values = []
        for arg in stmt.arguments:
            value = np.asarray(arg.eval(_SCALAR_BATCH)).reshape(-1)[0]
            values.append(value.item() if hasattr(value, "item") else value)
        result = self.database.call_procedure(stmt.procedure, *values)
        if isinstance(result, QueryResult):
            return result
        if isinstance(result, dict):
            return QueryResult(columns={k.lower(): np.asarray(v)
                                        for k, v in result.items()})
        if isinstance(result, int):
            return QueryResult(rows_affected=result)
        return QueryResult()

    # ------------------------------------------------------------------
    def _select(self, stmt: SelectStatement) -> QueryResult:
        if stmt.source is None:
            # constant SELECT: evaluate items over a one-row batch
            out: Batch = {}
            for pos, item in enumerate(stmt.items):
                if item.expr is None:
                    raise SqlPlanError("SELECT * requires a FROM clause")
                name = item.alias or f"col{pos}"
                value = np.asarray(item.expr.eval(_SCALAR_BATCH))
                out[name.lower()] = np.broadcast_to(value, (1,)).copy()
            return QueryResult(columns=out)
        feedback = getattr(self.database, "feedback", None)
        if feedback is not None:
            # the adaptive path: memo lookup, instrumented execution,
            # actuals folded back into the feedback store
            return feedback.execute_select(stmt, self.planner)
        store = getattr(self.database, "query_store", None)
        if store is not None:
            return self._select_with_store(stmt)
        plan = self.planner.plan_select(stmt)
        batch = plan.execute()
        return QueryResult(columns=batch, plan=plan.explain(),
                           plan_node=plan)

    def _select_with_store(self, stmt: SelectStatement) -> QueryResult:
        """Query Store on without feedback: fingerprint, honor forced
        plans, report the optimizer mode as the plan's decision."""
        from repro.engine.cache import plan_fingerprint

        database = self.database
        keyed = plan_fingerprint(stmt, database)
        fingerprint = keyed[0] if keyed is not None else None
        plan = None
        decision = None
        forcer = getattr(database, "plan_forcer", None)
        if fingerprint is not None and forcer is not None:
            resolved = forcer.resolve(
                fingerprint, lambda: self.planner.plan_select(stmt)
            )
            if resolved is not None:
                plan, decision = resolved
        if plan is None:
            plan = self.planner.plan_select(stmt)
            decision = database.optimizer_mode
        batch = plan.execute()
        return QueryResult(
            columns=batch,
            plan=plan.explain(),
            fingerprint=fingerprint,
            memo_decision=decision,
            plan_origin=decision,
            plan_node=plan,
        )

    def _create_table(self, stmt: CreateTableStatement) -> QueryResult:
        if stmt.if_not_exists and self.database.has_table(stmt.table):
            return QueryResult()
        primary = [c.name for c in stmt.columns if c.primary_key]
        if len(primary) > 1:
            raise SqlPlanError("multiple PRIMARY KEY columns are not supported")
        schema = TableSchema(
            name=stmt.table,
            columns=tuple(Column(c.name, sql_type(c.type_name)) for c in stmt.columns),
            primary_key=primary[0] if primary else None,
        )
        self.database.create_table_from_schema(schema)
        return QueryResult()

    def _guard_matview(self, name: str, verb: str) -> None:
        """Matview rows are derived data: only REFRESH may rewrite them."""
        if getattr(self.database, "has_matview", lambda _n: False)(name):
            raise SqlPlanError(
                f"cannot {verb} materialized view '{name}'; its rows are "
                "maintained by REFRESH MATERIALIZED VIEW"
            )
        if getattr(self.database, "is_system_table", lambda _n: False)(name):
            raise SqlPlanError(
                f"cannot {verb} system table '{name}'; sys_query_store_* "
                "tables are maintained by the Query Store"
            )

    def _insert(self, stmt: InsertStatement) -> QueryResult:
        self._guard_matview(stmt.table, "INSERT into")
        table = self.database.table(stmt.table)
        target_columns = (
            [c.lower() for c in stmt.columns]
            if stmt.columns is not None
            else [c.lower() for c in table.schema.column_names]
        )
        if stmt.select is not None:
            result = self._select(stmt.select)
            names = result.column_names
            if len(names) != len(target_columns):
                raise SqlPlanError(
                    f"INSERT..SELECT column count mismatch: "
                    f"{len(target_columns)} vs {len(names)}"
                )
            data = {
                target: np.asarray(result.columns[source])
                for target, source in zip(target_columns, names)
            }
        else:
            width = len(target_columns)
            columns: list[list] = [[] for _ in range(width)]
            for row in stmt.rows:
                if len(row) != width:
                    raise SqlPlanError(
                        f"INSERT row has {len(row)} values, expected {width}"
                    )
                for slot, expr in enumerate(row):
                    value = np.asarray(expr.eval(_SCALAR_BATCH))
                    columns[slot].append(value.reshape(-1)[0])
            data = {
                name: np.asarray(values)
                for name, values in zip(target_columns, columns)
            }
        if set(data) != {c.lower() for c in table.schema.column_names}:
            raise SqlPlanError(
                "INSERT must supply every column (engine has no defaults); "
                f"missing {sorted({c.lower() for c in table.schema.column_names} - set(data))}"
            )
        inserted = table.insert(data)
        self.database.invalidate_indexes(stmt.table)
        return QueryResult(rows_affected=inserted)

    def _matching_rows(self, table, where) -> np.ndarray:
        batch = {k: v for k, v in table.scan().items()}
        if where is None:
            return np.arange(table.row_count, dtype=np.int64)
        mask = np.asarray(where.eval(batch), dtype=bool)
        return np.flatnonzero(mask)

    def _update(self, stmt: UpdateStatement) -> QueryResult:
        self._guard_matview(stmt.table, "UPDATE")
        table = self.database.table(stmt.table)
        rows = self._matching_rows(table, stmt.where)
        if rows.size == 0:
            return QueryResult(rows_affected=0)
        batch = table.columns_dict()
        row_batch = {k: v[rows] for k, v in batch.items()}
        values = {
            column: np.broadcast_to(
                np.asarray(expr.eval(row_batch)), (rows.size,)
            ).copy()
            for column, expr in stmt.assignments
        }
        affected = table.update_rows(rows, values)
        self.database.invalidate_indexes(stmt.table)
        return QueryResult(rows_affected=affected)

    def _delete(self, stmt: DeleteStatement) -> QueryResult:
        self._guard_matview(stmt.table, "DELETE from")
        table = self.database.table(stmt.table)
        rows = self._matching_rows(table, stmt.where)
        affected = table.delete_rows(rows)
        self.database.invalidate_indexes(stmt.table)
        return QueryResult(rows_affected=affected)
