"""Scalar SQL function registry (re-exported from the expression layer).

The evaluatable registry lives in
:data:`repro.engine.expressions.SCALAR_FUNCTIONS` so that expression
trees are self-contained; this module re-exports it under the SQL
package for discoverability and provides :func:`register_function` for
applications that want to extend the dialect (CasJobs users "can create
... stored procedures"; custom scalars are our equivalent extension
point).
"""

from __future__ import annotations

from typing import Callable

from repro.engine.expressions import SCALAR_FUNCTIONS
from repro.errors import SqlPlanError

__all__ = ["SCALAR_FUNCTIONS", "register_function", "function_names"]


def register_function(name: str, arity: int, fn: Callable) -> None:
    """Add a scalar function to the SQL dialect.

    ``fn`` must be vectorized (accept/return numpy arrays).  Re-registering
    a built-in name raises, to keep the paper's SQL semantics stable.
    """
    lowered = name.lower()
    if lowered in SCALAR_FUNCTIONS:
        raise SqlPlanError(f"function '{name}' is already registered")
    SCALAR_FUNCTIONS[lowered] = (arity, fn)


def function_names() -> list[str]:
    """Sorted names of all registered scalar functions."""
    return sorted(SCALAR_FUNCTIONS)
