"""SQL text rendering: turn ASTs and expression trees back into SQL.

Used for debugging (EXPLAIN-style output of rewritten predicates), for
logging the statements CasJobs executes, and — most importantly — as a
*consistency oracle*: the property test parses the printed text back
and requires structural equality, which pins the parser and printer to
one grammar.
"""

from __future__ import annotations

from repro.engine.expressions import (
    Between,
    BinaryOp,
    Case,
    ColumnRef,
    Expr,
    FuncCall,
    InList,
    Literal,
    UnaryOp,
)
from repro.engine.sql.ast import (
    Exists,
    InSubquery,
    JoinClause,
    SelectItem,
    SelectStatement,
    TableRef,
    UnionStatement,
)
from repro.errors import SqlPlanError


def literal_to_sql(value) -> str:
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, str):
        escaped = value.replace("'", "''")
        return f"'{escaped}'"
    if isinstance(value, float):
        return repr(value)
    return str(value)


def expr_to_sql(expr: Expr) -> str:
    """Render an expression tree as (fully parenthesized) SQL."""
    if isinstance(expr, Literal):
        return literal_to_sql(expr.value)
    if isinstance(expr, ColumnRef):
        if expr.qualifier:
            return f"{expr.qualifier}.{expr.name}"
        return expr.name
    if isinstance(expr, BinaryOp):
        op = expr.op.upper() if expr.op.isalpha() else expr.op
        return f"({expr_to_sql(expr.left)} {op} {expr_to_sql(expr.right)})"
    if isinstance(expr, UnaryOp):
        if expr.op.upper() == "NOT":
            return f"(NOT {expr_to_sql(expr.operand)})"
        return f"(- {expr_to_sql(expr.operand)})"
    if isinstance(expr, Between):
        return (
            f"({expr_to_sql(expr.value)} BETWEEN {expr_to_sql(expr.low)} "
            f"AND {expr_to_sql(expr.high)})"
        )
    if isinstance(expr, InList):
        options = ", ".join(expr_to_sql(o) for o in expr.options)
        return f"({expr_to_sql(expr.value)} IN ({options}))"
    if isinstance(expr, Case):
        parts = ["CASE"]
        for condition, value in expr.whens:
            parts.append(f"WHEN {expr_to_sql(condition)} "
                         f"THEN {expr_to_sql(value)}")
        if expr.default is not None:
            parts.append(f"ELSE {expr_to_sql(expr.default)}")
        parts.append("END")
        return " ".join(parts)
    if isinstance(expr, FuncCall):
        if expr.name.lower() == "count" and not expr.args:
            return "COUNT(*)"
        if expr.name.lower() == "count_distinct":
            return f"COUNT(DISTINCT {expr_to_sql(expr.args[0])})"
        args = ", ".join(expr_to_sql(a) for a in expr.args)
        return f"{expr.name.upper()}({args})"
    if isinstance(expr, Exists):
        return f"(EXISTS ({select_to_sql(expr.select)}))"
    if isinstance(expr, InSubquery):
        return (f"({expr_to_sql(expr.value)} IN "
                f"({select_to_sql(expr.select)}))")
    raise SqlPlanError(f"cannot render {type(expr).__name__} as SQL")


def _table_ref_to_sql(ref: TableRef) -> str:
    if ref.is_subquery:
        assert ref.subquery is not None
        return f"({select_to_sql(ref.subquery)}) {ref.alias}"
    if ref.is_function:
        args = ", ".join(expr_to_sql(a) for a in (ref.function_args or ()))
        return f"{ref.table}({args}) {ref.alias}"
    if ref.alias != ref.table:
        return f"{ref.table} {ref.alias}"
    return ref.table


def _item_to_sql(item: SelectItem) -> str:
    if item.star:
        return f"{item.star_qualifier}.*" if item.star_qualifier else "*"
    assert item.expr is not None
    text = expr_to_sql(item.expr)
    if item.alias:
        text += f" AS {item.alias}"
    return text


def _join_to_sql(join: JoinClause) -> str:
    if join.kind == "cross":
        return f"CROSS JOIN {_table_ref_to_sql(join.table)}"
    assert join.condition is not None
    keyword = "LEFT JOIN" if join.kind == "left" else "JOIN"
    return (f"{keyword} {_table_ref_to_sql(join.table)} "
            f"ON {expr_to_sql(join.condition)}")


def select_to_sql(stmt: SelectStatement) -> str:
    """Render a SELECT statement (one line, normalized spacing)."""
    parts = []
    if stmt.ctes:
        bodies = ", ".join(
            f"{name} AS ({select_to_sql(body)})" for name, body in stmt.ctes
        )
        parts.append(f"WITH {bodies}")
    parts.append("SELECT")
    if stmt.distinct:
        parts.append("DISTINCT")
    parts.append(", ".join(_item_to_sql(item) for item in stmt.items))
    if stmt.source is not None:
        parts.append("FROM")
        parts.append(_table_ref_to_sql(stmt.source))
        for join in stmt.joins:
            parts.append(_join_to_sql(join))
    if stmt.where is not None:
        parts.append(f"WHERE {expr_to_sql(stmt.where)}")
    if stmt.group_by:
        parts.append(
            "GROUP BY " + ", ".join(expr_to_sql(e) for e in stmt.group_by)
        )
    if stmt.having is not None:
        parts.append(f"HAVING {expr_to_sql(stmt.having)}")
    if stmt.order_by:
        keys = ", ".join(
            expr_to_sql(o.expr) + ("" if o.ascending else " DESC")
            for o in stmt.order_by
        )
        parts.append(f"ORDER BY {keys}")
    if stmt.limit is not None:
        parts.append(f"LIMIT {stmt.limit}")
        if stmt.offset is not None:
            parts.append(f"OFFSET {stmt.offset}")
    return " ".join(parts)


def statement_to_sql(stmt) -> str:
    """Render a SELECT or UNION statement."""
    if isinstance(stmt, UnionStatement):
        return " UNION ALL ".join(select_to_sql(s) for s in stmt.selects)
    if isinstance(stmt, SelectStatement):
        return select_to_sql(stmt)
    raise SqlPlanError(
        f"printing {type(stmt).__name__} is not supported"
    )
