"""Plan instrumentation: EXPLAIN ANALYZE for the engine.

Wraps every node of a physical plan so execution records, per operator,
the rows produced, wall-clock seconds (exclusive of children) and the
buffer-pool I/O attributable to it.  This is the observability layer a
DBA points at when explaining *why* a plan is slow — the reproduction's
equivalent of the SQL Server statistics the paper quotes.

Usage::

    report = explain_analyze(db, "SELECT ... ")
    print(report.render())
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass, field

from repro.engine.expressions import Batch, batch_length
from repro.engine.operators import PlanNode
from repro.engine.optimizer.quality import (
    NodeQuality,
    PlanQualityReport,
    q_error,
)
from repro.engine.stats import IOCounters
from repro.errors import EngineError


@dataclass
class NodeStats:
    """Measured execution of one plan node."""

    description: str
    depth: int
    rows: int = 0
    inclusive_s: float = 0.0
    io_total: int = 0
    calls: int = 0
    est_rows: float | None = None

    @property
    def rows_per_call(self) -> float:
        """Mean rows per execution — what ``est_rows`` estimates."""
        if self.calls == 0:
            return 0.0
        return self.rows / self.calls

    @property
    def q_error(self) -> float | None:
        """Estimated-vs-actual error, once the node has executed.

        ``rows`` accumulates across calls while the optimizer estimates
        one execution, so the comparison uses rows *per call*.
        """
        if self.calls == 0:
            return None
        return q_error(self.est_rows, self.rows_per_call)

    @property
    def line(self) -> str:
        pad = "  " * self.depth
        rows = f"rows={self.rows:,}"
        if self.calls > 1:
            rows += f" ({self.rows_per_call:,.0f}/call x {self.calls})"
        measured = (f"{rows} time={self.inclusive_s * 1e3:.2f}ms "
                    f"io={self.io_total:,}")
        if self.est_rows is not None:
            q = self.q_error
            quality = f" est={self.est_rows:,.0f}"
            if q is not None:
                quality += f" q={q:.2f}"
            measured += quality
        return f"{pad}{self.description}  [{measured}]"


@dataclass
class AnalyzeReport:
    """The instrumented execution's outcome."""

    nodes: list[NodeStats]
    result: Batch
    total_s: float
    #: Rewrite-rule audit lines from the logical pass (empty when the
    #: pass is off or fired nothing); rendered ahead of the node tree.
    rewrite_trace: tuple[str, ...] = ()

    @property
    def row_count(self) -> int:
        return batch_length(self.result)

    def render(self) -> str:
        lines = list(self.rewrite_trace)
        lines.extend(node.line for node in self.nodes)
        lines.append(f"total: {self.total_s * 1e3:.2f} ms, "
                     f"{self.row_count:,} rows")
        return "\n".join(lines)

    def node(self, substring: str) -> NodeStats:
        """First node whose description contains ``substring``."""
        for node in self.nodes:
            if substring in node.description:
                return node
        raise EngineError(f"no plan node matching '{substring}'")

    # ------------------------------------------------------------------
    # plan quality (q-error) accounting
    # ------------------------------------------------------------------
    def quality_report(self) -> PlanQualityReport:
        """Estimated-vs-actual report over every node with an estimate."""
        return PlanQualityReport(nodes=tuple(
            NodeQuality(
                description=node.description,
                depth=node.depth,
                est_rows=node.est_rows,
                actual_rows=round(node.rows_per_call),
            )
            for node in self.nodes
            if node.est_rows is not None and node.calls > 0
        ))

    @property
    def max_q_error(self) -> float:
        """Worst per-operator q-error of the run (1.0 = all perfect)."""
        return self.quality_report().max_q_error


class _Instrumented(PlanNode):
    """Delegating wrapper that records one node's execution."""

    def __init__(self, inner: PlanNode, stats: NodeStats,
                 counters: IOCounters | None):
        self._inner = inner
        self._stats = stats
        self._counters = counters

    def execute(self) -> Batch:
        io_before = (
            self._counters.snapshot() if self._counters is not None else None
        )
        started = time.perf_counter()
        batch = self._inner.execute()
        self._stats.inclusive_s += time.perf_counter() - started
        # accumulate: a node executed multiple times (a re-executed join
        # input, say) must report every batch, not just its last one
        self._stats.rows += batch_length(batch)
        self._stats.calls += 1
        if io_before is not None and self._counters is not None:
            self._stats.io_total += self._counters.since(io_before).total
        return batch

    def _describe(self) -> str:
        return self._inner._describe()

    def _children(self) -> tuple[PlanNode, ...]:
        return self._inner._children()


def instrument_plan(
    plan: PlanNode, counters: IOCounters | None = None
) -> tuple[PlanNode, list[NodeStats]]:
    """Rebuild a plan tree with every node wrapped for measurement.

    Works generically over the operator dataclasses: any field holding a
    :class:`PlanNode` (or list of (name, expr) pairs is left alone) is
    replaced by its instrumented version, preorder.
    """
    records: list[NodeStats] = []

    def wrap(node: PlanNode, depth: int) -> PlanNode:
        # capture est_rows here: dataclasses.replace below would lose the
        # instance attribute the annotation pass stamped on.
        stats = NodeStats(description=node._describe(), depth=depth,
                          est_rows=node.est_rows)
        records.append(stats)
        if dataclasses.is_dataclass(node):
            replacements = {}
            for f in dataclasses.fields(node):
                value = getattr(node, f.name)
                if isinstance(value, PlanNode):
                    replacements[f.name] = wrap(value, depth + 1)
            if replacements:
                compiled = node.compiled
                node = dataclasses.replace(node, **replacements)
                # replace() builds a fresh instance, losing the planner's
                # in-place compiled stamp; restore it or ANALYZE would
                # silently measure the interpreted path.
                node.compiled = compiled
        return _Instrumented(node, stats, counters)

    return wrap(plan, 0), records


def explain_analyze(
    database, sql_text: str, optimizer: str | None = None
) -> AnalyzeReport:
    """Plan, instrument and execute a SELECT; return the measured tree.

    Inclusive timings: each node's time contains its children's (the
    familiar EXPLAIN ANALYZE convention).  ``optimizer`` overrides the
    database's planner mode for this statement.
    """
    from repro.engine.sql.ast import SelectStatement
    from repro.engine.sql.parser import parse
    from repro.engine.sql.printer import statement_to_sql
    from repro.engine.sql.planner import Planner
    from repro.obs.metrics import get_metrics
    from repro.obs.slowlog import get_slow_log
    from repro.obs.trace import span

    stmt = parse(sql_text)
    if not isinstance(stmt, SelectStatement):
        raise EngineError("explain_analyze supports SELECT statements only")
    plan = Planner(database, optimizer).plan_select(stmt)
    # instance attr on the plan root; the _Instrumented wrapper would
    # otherwise shadow it with the PlanNode class default
    rewrite_trace = tuple(getattr(plan, "rewrite_trace", ()))
    wrapped, records = instrument_plan(plan, database.pool.counters)
    with span("engine.query", layer="engine", counters=database.pool.counters,
              attrs={"sql": sql_text.strip()[:200]}):
        started = time.perf_counter()
        result = wrapped.execute()
        total = time.perf_counter() - started
    report = AnalyzeReport(nodes=records, result=result, total_s=total,
                           rewrite_trace=rewrite_trace)

    metrics = get_metrics()
    metrics.counter("engine.queries.analyzed").inc()
    metrics.histogram("engine.query.elapsed_s").observe(total)
    max_q = report.max_q_error
    metrics.histogram(
        "engine.query.max_q_error", buckets=(1.0, 2.0, 4.0, 8.0, 16.0, 64.0)
    ).observe(max_q)
    slow_log = get_slow_log()
    if slow_log.is_slow(total):
        try:
            text = statement_to_sql(stmt)
        except Exception:  # printer gaps must never lose the log entry
            text = sql_text.strip()
        slow_log.record(text, total, plan=plan.explain(),
                        max_q_error=max_q, database=database.name)
    return report
