"""Plan instrumentation: EXPLAIN ANALYZE for the engine.

Wraps every node of a physical plan so execution records, per operator,
the rows produced, wall-clock seconds (exclusive of children) and the
buffer-pool I/O attributable to it.  This is the observability layer a
DBA points at when explaining *why* a plan is slow — the reproduction's
equivalent of the SQL Server statistics the paper quotes.

Usage::

    report = explain_analyze(db, "SELECT ... ")
    print(report.render())
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass, field

from repro.engine.expressions import Batch, batch_length
from repro.engine.operators import PlanNode
from repro.engine.stats import IOCounters
from repro.errors import EngineError


@dataclass
class NodeStats:
    """Measured execution of one plan node."""

    description: str
    depth: int
    rows: int = 0
    inclusive_s: float = 0.0
    io_total: int = 0
    calls: int = 0

    @property
    def line(self) -> str:
        pad = "  " * self.depth
        return (f"{pad}{self.description}  "
                f"[rows={self.rows:,} time={self.inclusive_s * 1e3:.2f}ms "
                f"io={self.io_total:,}]")


@dataclass
class AnalyzeReport:
    """The instrumented execution's outcome."""

    nodes: list[NodeStats]
    result: Batch
    total_s: float

    @property
    def row_count(self) -> int:
        return batch_length(self.result)

    def render(self) -> str:
        lines = [node.line for node in self.nodes]
        lines.append(f"total: {self.total_s * 1e3:.2f} ms, "
                     f"{self.row_count:,} rows")
        return "\n".join(lines)

    def node(self, substring: str) -> NodeStats:
        """First node whose description contains ``substring``."""
        for node in self.nodes:
            if substring in node.description:
                return node
        raise EngineError(f"no plan node matching '{substring}'")


class _Instrumented(PlanNode):
    """Delegating wrapper that records one node's execution."""

    def __init__(self, inner: PlanNode, stats: NodeStats,
                 counters: IOCounters | None):
        self._inner = inner
        self._stats = stats
        self._counters = counters

    def execute(self) -> Batch:
        io_before = (
            self._counters.snapshot() if self._counters is not None else None
        )
        started = time.perf_counter()
        batch = self._inner.execute()
        self._stats.inclusive_s += time.perf_counter() - started
        self._stats.rows = batch_length(batch)
        self._stats.calls += 1
        if io_before is not None and self._counters is not None:
            self._stats.io_total += self._counters.since(io_before).total
        return batch

    def _describe(self) -> str:
        return self._inner._describe()

    def _children(self) -> tuple[PlanNode, ...]:
        return self._inner._children()


def instrument_plan(
    plan: PlanNode, counters: IOCounters | None = None
) -> tuple[PlanNode, list[NodeStats]]:
    """Rebuild a plan tree with every node wrapped for measurement.

    Works generically over the operator dataclasses: any field holding a
    :class:`PlanNode` (or list of (name, expr) pairs is left alone) is
    replaced by its instrumented version, preorder.
    """
    records: list[NodeStats] = []

    def wrap(node: PlanNode, depth: int) -> PlanNode:
        stats = NodeStats(description=node._describe(), depth=depth)
        records.append(stats)
        if dataclasses.is_dataclass(node):
            replacements = {}
            for f in dataclasses.fields(node):
                value = getattr(node, f.name)
                if isinstance(value, PlanNode):
                    replacements[f.name] = wrap(value, depth + 1)
            if replacements:
                node = dataclasses.replace(node, **replacements)
        return _Instrumented(node, stats, counters)

    return wrap(plan, 0), records


def explain_analyze(database, sql_text: str) -> AnalyzeReport:
    """Plan, instrument and execute a SELECT; return the measured tree.

    Inclusive timings: each node's time contains its children's (the
    familiar EXPLAIN ANALYZE convention).
    """
    from repro.engine.sql.ast import SelectStatement
    from repro.engine.sql.parser import parse
    from repro.engine.sql.planner import Planner

    stmt = parse(sql_text)
    if not isinstance(stmt, SelectStatement):
        raise EngineError("explain_analyze supports SELECT statements only")
    plan = Planner(database).plan_select(stmt)
    wrapped, records = instrument_plan(plan, database.pool.counters)
    started = time.perf_counter()
    result = wrapped.execute()
    total = time.perf_counter() - started
    return AnalyzeReport(nodes=records, result=result, total_s=total)
