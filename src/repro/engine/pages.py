"""Paged storage and the buffer pool: where the I/O numbers come from.

Table 1 of the paper reports an "I/O" column per task, taken from SQL
Server's execution statistics (buffer-pool page requests).  To produce
comparable observables we model storage the way a 2000s-era DBMS does:

* every table's rows live in fixed-size **pages** (8 KiB, the SQL Server
  page size); ``rows_per_page = floor(page_bytes / row_byte_width)``,
  so the paper's 44-byte galaxy rows pack ~186 to a page;
* all page access goes through a shared **buffer pool** with LRU
  replacement; a request is a *logical read*; a miss is a *physical
  read*; page dirtying is a *write*.

The payload arrays themselves stay in numpy (this is a simulation of
the *accounting*, not of byte layouts — the paper's claims concern
which plan touches how many pages, not page checksums).  Operators call
:meth:`PagedFile.read_range` / :meth:`read_page` as they scan or seek,
and the pool turns those calls into the counters that
:class:`~repro.engine.stats.TaskTimer` snapshots.
"""

from __future__ import annotations

import weakref
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.engine.stats import IOCounters
from repro.errors import EngineError

#: SQL Server's page size.
PAGE_BYTES = 8192

#: Default buffer-pool capacity: 2 GB of 8 KiB pages — the paper's nodes
#: ("each one a dual 2.6 GHz Xeon with 2 GB of RAM").
DEFAULT_POOL_PAGES = (2 * 1024**3) // PAGE_BYTES


#: Every live buffer pool, for the pull-style metrics collector below.
_POOLS: "weakref.WeakSet[BufferPool]" = weakref.WeakSet()


@dataclass(frozen=True)
class PageId:
    """Globally unique page address: (file id, page number)."""

    file_id: int
    page_no: int


class BufferPool:
    """LRU page cache with logical/physical read and write accounting.

    Beyond the shared :class:`IOCounters` (incremented through its
    locked methods — the pool is shared across worker threads under the
    thread backend), every pool keeps plain-int ``hits`` / ``evictions``
    tallies.  Those feed the observability metrics registry *by pull*:
    a module-level collector sums them over all live pools at snapshot
    time, so the per-page hot path pays nothing for metrics.
    """

    def __init__(self, capacity_pages: int = DEFAULT_POOL_PAGES):
        if capacity_pages <= 0:
            raise EngineError("buffer pool capacity must be positive")
        self.capacity_pages = capacity_pages
        self.counters = IOCounters()
        self.hits = 0
        self.evictions = 0
        self._resident: OrderedDict[PageId, None] = OrderedDict()
        _POOLS.add(self)

    def __len__(self) -> int:
        return len(self._resident)

    def access(self, page: PageId) -> bool:
        """Request a page. Returns True on a hit, False on a miss (fault)."""
        self.counters.add_logical()
        if page in self._resident:
            self._resident.move_to_end(page)
            self.hits += 1
            return True
        self.counters.add_physical()
        self._resident[page] = None
        if len(self._resident) > self.capacity_pages:
            self._resident.popitem(last=False)
            self.evictions += 1
        return False

    def write(self, page: PageId) -> None:
        """Dirty a page (insert/update/delete paths)."""
        self.counters.add_write()
        self._resident[page] = None
        self._resident.move_to_end(page)
        if len(self._resident) > self.capacity_pages:
            self._resident.popitem(last=False)
            self.evictions += 1

    def evict_file(self, file_id: int) -> None:
        """Drop a file's pages (table truncate/drop)."""
        stale = [p for p in self._resident if p.file_id == file_id]
        for p in stale:
            del self._resident[p]


class PagedFile:
    """The page-level view of one table's storage.

    Row ``r`` lives on page ``r // rows_per_page``.  Scans and seeks
    translate row ranges into page accesses against the shared pool.
    """

    _next_file_id = 0

    def __init__(self, pool: BufferPool, row_byte_width: int):
        if row_byte_width <= 0:
            raise EngineError("row width must be positive")
        self.pool = pool
        self.rows_per_page = max(1, PAGE_BYTES // row_byte_width)
        self.file_id = PagedFile._next_file_id
        PagedFile._next_file_id += 1

    def page_of_row(self, row: int) -> int:
        return row // self.rows_per_page

    def page_count(self, n_rows: int) -> int:
        if n_rows <= 0:
            return 0
        return (n_rows - 1) // self.rows_per_page + 1

    def read_page(self, page_no: int) -> None:
        self.pool.access(PageId(self.file_id, page_no))

    def read_range(self, row_start: int, row_stop: int) -> int:
        """Touch every page overlapping rows [row_start, row_stop).

        Returns the number of pages touched (all counted as logical
        reads; misses additionally count as physical reads).
        """
        if row_stop <= row_start:
            return 0
        first = self.page_of_row(row_start)
        last = self.page_of_row(row_stop - 1)
        for page_no in range(first, last + 1):
            self.read_page(page_no)
        return last - first + 1

    def write_range(self, row_start: int, row_stop: int) -> int:
        """Dirty every page overlapping rows [row_start, row_stop)."""
        if row_stop <= row_start:
            return 0
        first = self.page_of_row(row_start)
        last = self.page_of_row(row_stop - 1)
        for page_no in range(first, last + 1):
            self.pool.write(PageId(self.file_id, page_no))
        return last - first + 1

    def invalidate(self) -> None:
        """Remove this file's pages from the pool (truncate semantics)."""
        self.pool.evict_file(self.file_id)

    def set_row_bytes(self, row_bytes: float) -> None:
        """Repack the file at a new (possibly fractional) row width.

        Page compression works by making rows *effectively* narrower:
        a dictionary-coded column costs its code bytes plus an
        amortized share of the dictionary, an RLE column its runs
        spread over the rows.  Repacking changes which page every row
        lives on, so the old pages are dropped from the pool — exactly
        what a real engine's rebuild does to the buffer cache.
        """
        if row_bytes <= 0:
            raise EngineError("row width must be positive")
        rows_per_page = max(1, int(PAGE_BYTES / row_bytes))
        if rows_per_page != self.rows_per_page:
            self.rows_per_page = rows_per_page
            self.invalidate()


# ----------------------------------------------------------------------
# page compression: per-column codecs chosen from ANALYZE statistics
# ----------------------------------------------------------------------
#: Bytes of run header (length prefix) per RLE run.
RLE_RUN_HEADER_BYTES = 4


def dict_code_bytes(ndv: int) -> int:
    """Width of one dictionary code for a column with ``ndv`` values."""
    if ndv <= 256:
        return 1
    if ndv <= 65536:
        return 2
    return 4


@dataclass(frozen=True)
class ColumnCodec:
    """How one column is stored on pages.

    ``kind`` is ``"raw"`` (native width), ``"dict"`` (fixed-width codes
    into a value dictionary — wins on low-NDV columns like ``zoneid``
    or ``run``) or ``"rle"`` (run-length pairs — wins on columns
    clustered by the physical sort order, like the zone table's
    ``(zoneid, ra)`` prefix).  ``bytes_per_row`` is the *effective*
    per-row cost, amortizing dictionaries and run headers, and may be
    fractional.
    """

    column: str
    kind: str
    bytes_per_row: float


@dataclass(frozen=True)
class CompressionPlan:
    """The chosen codec for every column of one table."""

    codecs: tuple[ColumnCodec, ...]

    @property
    def row_bytes(self) -> float:
        """Effective bytes per row across all columns."""
        return sum(c.bytes_per_row for c in self.codecs)

    def codec_for(self, column: str) -> ColumnCodec | None:
        lowered = column.lower()
        for codec in self.codecs:
            if codec.column == lowered:
                return codec
        return None

    @property
    def compressed_columns(self) -> tuple[str, ...]:
        return tuple(c.column for c in self.codecs if c.kind != "raw")

    def describe(self) -> str:
        """Short human form, e.g. ``dict(zoneid),rle(ra)``."""
        parts = [
            f"{c.kind}({c.column})" for c in self.codecs if c.kind != "raw"
        ]
        return ",".join(parts)


def choose_codecs(stats, schema) -> CompressionPlan | None:
    """Pick the cheapest codec per column from ANALYZE statistics.

    Cost model (effective bytes per row, lower wins):

    * raw:  the column type's native width;
    * dict: one code (1/2/4 bytes by NDV) plus the dictionary amortized
      over the rows (``ndv * width / n``);
    * rle:  each run stores one value plus a 4-byte length, amortized
      (``n_runs * (width + 4) / n``).

    Returns ``None`` when no column beats raw storage (the table stays
    at its schema width) or when statistics are absent/empty.
    """
    if stats is None or stats.row_count <= 0:
        return None
    n = stats.row_count
    codecs: list[ColumnCodec] = []
    any_compressed = False
    for column in schema.columns:
        raw_width = float(column.type.byte_width)
        kind, best = "raw", raw_width
        cstats = stats.column(column.name)
        if cstats is not None:
            # NULL needs a dictionary slot of its own
            ndv = cstats.ndv + (1 if cstats.n_null else 0)
            if ndv > 0:
                dict_cost = dict_code_bytes(ndv) + ndv * raw_width / n
                if dict_cost < best:
                    kind, best = "dict", dict_cost
            n_runs = getattr(cstats, "n_runs", None)
            if n_runs:
                rle_cost = n_runs * (raw_width + RLE_RUN_HEADER_BYTES) / n
                if rle_cost < best:
                    kind, best = "rle", rle_cost
        codecs.append(ColumnCodec(column.name.lower(), kind, best))
        if kind != "raw":
            any_compressed = True
    if not any_compressed:
        return None
    return CompressionPlan(codecs=tuple(codecs))


# ----------------------------------------------------------------------
# codec reference implementations — the accounting above is justified
# by these actually round-tripping the arrays losslessly
# ----------------------------------------------------------------------
def dict_encode(values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """``(codes, dictionary)`` with ``dictionary[codes] == values``.

    All NaNs share one dictionary slot (appended last), so the decoded
    array is byte-identical under ``equal_nan`` comparison.
    """
    values = np.asarray(values)
    if values.dtype.kind == "f":
        nan_mask = np.isnan(values)
        uniques = np.unique(values[~nan_mask])
        codes = np.searchsorted(uniques, values).astype(np.int64)
        if nan_mask.any():
            dictionary = np.append(uniques, np.nan)
            codes[nan_mask] = uniques.size
        else:
            dictionary = uniques
        return codes, dictionary
    uniques, codes = np.unique(values, return_inverse=True)
    return np.asarray(codes, dtype=np.int64).reshape(values.shape), uniques


def dict_decode(codes: np.ndarray, dictionary: np.ndarray) -> np.ndarray:
    return np.asarray(dictionary)[np.asarray(codes, dtype=np.int64)]


def rle_encode(values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """``(run_values, run_lengths)``; adjacent NaNs coalesce into a run."""
    values = np.asarray(values)
    n = values.size
    if n == 0:
        return values[:0], np.zeros(0, dtype=np.int64)
    if values.dtype.kind == "f":
        a, b = values[1:], values[:-1]
        same = (a == b) | (np.isnan(a) & np.isnan(b))
    elif values.dtype.kind == "O":
        items = values.tolist()
        same = np.fromiter(
            (x == y for x, y in zip(items[1:], items[:-1])),
            dtype=bool,
            count=n - 1,
        )
    else:
        same = np.asarray(values[1:] == values[:-1], dtype=bool)
    starts = np.concatenate([[0], np.flatnonzero(~same) + 1])
    lengths = np.diff(np.concatenate([starts, [n]]))
    return values[starts], lengths.astype(np.int64)


def rle_decode(run_values: np.ndarray, run_lengths: np.ndarray) -> np.ndarray:
    return np.repeat(np.asarray(run_values), np.asarray(run_lengths))


def _collect_pool_metrics() -> dict[str, float]:
    """Snapshot-time aggregation over every live buffer pool."""
    totals = {
        "engine.pool.hits": 0.0,
        "engine.pool.misses": 0.0,
        "engine.pool.evictions": 0.0,
        "engine.pool.logical_reads": 0.0,
        "engine.pool.writes": 0.0,
        "engine.pool.resident_pages": 0.0,
        "engine.pools": 0.0,
    }
    for pool in list(_POOLS):
        totals["engine.pool.hits"] += pool.hits
        totals["engine.pool.misses"] += pool.counters.physical_reads
        totals["engine.pool.evictions"] += pool.evictions
        totals["engine.pool.logical_reads"] += pool.counters.logical_reads
        totals["engine.pool.writes"] += pool.counters.writes
        totals["engine.pool.resident_pages"] += len(pool)
        totals["engine.pools"] += 1
    return totals


def _register_pool_collector() -> None:
    from repro.obs.metrics import get_metrics

    get_metrics().add_collector(_collect_pool_metrics)


_register_pool_collector()
