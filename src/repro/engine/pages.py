"""Paged storage and the buffer pool: where the I/O numbers come from.

Table 1 of the paper reports an "I/O" column per task, taken from SQL
Server's execution statistics (buffer-pool page requests).  To produce
comparable observables we model storage the way a 2000s-era DBMS does:

* every table's rows live in fixed-size **pages** (8 KiB, the SQL Server
  page size); ``rows_per_page = floor(page_bytes / row_byte_width)``,
  so the paper's 44-byte galaxy rows pack ~186 to a page;
* all page access goes through a shared **buffer pool** with LRU
  replacement; a request is a *logical read*; a miss is a *physical
  read*; page dirtying is a *write*.

The payload arrays themselves stay in numpy (this is a simulation of
the *accounting*, not of byte layouts — the paper's claims concern
which plan touches how many pages, not page checksums).  Operators call
:meth:`PagedFile.read_range` / :meth:`read_page` as they scan or seek,
and the pool turns those calls into the counters that
:class:`~repro.engine.stats.TaskTimer` snapshots.
"""

from __future__ import annotations

import weakref
from collections import OrderedDict
from dataclasses import dataclass

from repro.engine.stats import IOCounters
from repro.errors import EngineError

#: SQL Server's page size.
PAGE_BYTES = 8192

#: Default buffer-pool capacity: 2 GB of 8 KiB pages — the paper's nodes
#: ("each one a dual 2.6 GHz Xeon with 2 GB of RAM").
DEFAULT_POOL_PAGES = (2 * 1024**3) // PAGE_BYTES


#: Every live buffer pool, for the pull-style metrics collector below.
_POOLS: "weakref.WeakSet[BufferPool]" = weakref.WeakSet()


@dataclass(frozen=True)
class PageId:
    """Globally unique page address: (file id, page number)."""

    file_id: int
    page_no: int


class BufferPool:
    """LRU page cache with logical/physical read and write accounting.

    Beyond the shared :class:`IOCounters` (incremented through its
    locked methods — the pool is shared across worker threads under the
    thread backend), every pool keeps plain-int ``hits`` / ``evictions``
    tallies.  Those feed the observability metrics registry *by pull*:
    a module-level collector sums them over all live pools at snapshot
    time, so the per-page hot path pays nothing for metrics.
    """

    def __init__(self, capacity_pages: int = DEFAULT_POOL_PAGES):
        if capacity_pages <= 0:
            raise EngineError("buffer pool capacity must be positive")
        self.capacity_pages = capacity_pages
        self.counters = IOCounters()
        self.hits = 0
        self.evictions = 0
        self._resident: OrderedDict[PageId, None] = OrderedDict()
        _POOLS.add(self)

    def __len__(self) -> int:
        return len(self._resident)

    def access(self, page: PageId) -> bool:
        """Request a page. Returns True on a hit, False on a miss (fault)."""
        self.counters.add_logical()
        if page in self._resident:
            self._resident.move_to_end(page)
            self.hits += 1
            return True
        self.counters.add_physical()
        self._resident[page] = None
        if len(self._resident) > self.capacity_pages:
            self._resident.popitem(last=False)
            self.evictions += 1
        return False

    def write(self, page: PageId) -> None:
        """Dirty a page (insert/update/delete paths)."""
        self.counters.add_write()
        self._resident[page] = None
        self._resident.move_to_end(page)
        if len(self._resident) > self.capacity_pages:
            self._resident.popitem(last=False)
            self.evictions += 1

    def evict_file(self, file_id: int) -> None:
        """Drop a file's pages (table truncate/drop)."""
        stale = [p for p in self._resident if p.file_id == file_id]
        for p in stale:
            del self._resident[p]


class PagedFile:
    """The page-level view of one table's storage.

    Row ``r`` lives on page ``r // rows_per_page``.  Scans and seeks
    translate row ranges into page accesses against the shared pool.
    """

    _next_file_id = 0

    def __init__(self, pool: BufferPool, row_byte_width: int):
        if row_byte_width <= 0:
            raise EngineError("row width must be positive")
        self.pool = pool
        self.rows_per_page = max(1, PAGE_BYTES // row_byte_width)
        self.file_id = PagedFile._next_file_id
        PagedFile._next_file_id += 1

    def page_of_row(self, row: int) -> int:
        return row // self.rows_per_page

    def page_count(self, n_rows: int) -> int:
        if n_rows <= 0:
            return 0
        return (n_rows - 1) // self.rows_per_page + 1

    def read_page(self, page_no: int) -> None:
        self.pool.access(PageId(self.file_id, page_no))

    def read_range(self, row_start: int, row_stop: int) -> int:
        """Touch every page overlapping rows [row_start, row_stop).

        Returns the number of pages touched (all counted as logical
        reads; misses additionally count as physical reads).
        """
        if row_stop <= row_start:
            return 0
        first = self.page_of_row(row_start)
        last = self.page_of_row(row_stop - 1)
        for page_no in range(first, last + 1):
            self.read_page(page_no)
        return last - first + 1

    def write_range(self, row_start: int, row_stop: int) -> int:
        """Dirty every page overlapping rows [row_start, row_stop)."""
        if row_stop <= row_start:
            return 0
        first = self.page_of_row(row_start)
        last = self.page_of_row(row_stop - 1)
        for page_no in range(first, last + 1):
            self.pool.write(PageId(self.file_id, page_no))
        return last - first + 1

    def invalidate(self) -> None:
        """Remove this file's pages from the pool (truncate semantics)."""
        self.pool.evict_file(self.file_id)


def _collect_pool_metrics() -> dict[str, float]:
    """Snapshot-time aggregation over every live buffer pool."""
    totals = {
        "engine.pool.hits": 0.0,
        "engine.pool.misses": 0.0,
        "engine.pool.evictions": 0.0,
        "engine.pool.logical_reads": 0.0,
        "engine.pool.writes": 0.0,
        "engine.pool.resident_pages": 0.0,
        "engine.pools": 0.0,
    }
    for pool in list(_POOLS):
        totals["engine.pool.hits"] += pool.hits
        totals["engine.pool.misses"] += pool.counters.physical_reads
        totals["engine.pool.evictions"] += pool.evictions
        totals["engine.pool.logical_reads"] += pool.counters.logical_reads
        totals["engine.pool.writes"] += pool.counters.writes
        totals["engine.pool.resident_pages"] += len(pool)
        totals["engine.pools"] += 1
    return totals


def _register_pool_collector() -> None:
    from repro.obs.metrics import get_metrics

    get_metrics().add_collector(_collect_pool_metrics)


_register_pool_collector()
