"""Typed expression trees evaluated over column batches.

Expressions are built either programmatically or by the SQL parser, and
evaluate vectorized over a *batch* — a ``dict[str, np.ndarray]`` whose
keys may be qualified (``"g.i"``) or bare (``"i"``).  Name resolution
follows SQL: a qualified reference must match exactly; a bare reference
must resolve to exactly one column across the visible relations.

The scalar function registry covers what the paper's SQL uses (POWER,
SQRT, LOG, ABS, FLOOR, SIN, COS, RADIANS, PI, ...).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.errors import ColumnNotFoundError, SqlPlanError

Batch = dict[str, np.ndarray]


def batch_length(batch: Batch) -> int:
    for arr in batch.values():
        if isinstance(arr, np.ndarray):
            return int(arr.shape[0])
        return int(np.asarray(arr).shape[0])
    return 0


def resolve_key(batch: Batch, name: str, qualifier: str | None) -> str:
    """SQL name resolution to the *key* a reference binds to in a batch.

    Same rules as :func:`resolve_column` but returns the matched key
    instead of the array — operators that evaluate a predicate over a
    projected subset of a batch (band-join residuals) use this to learn
    which columns the predicate actually needs.
    """
    if qualifier is not None:
        key = f"{qualifier.lower()}.{name.lower()}"
        if key in batch:
            return key
        raise ColumnNotFoundError(f"unknown column '{qualifier}.{name}'")
    lowered = name.lower()
    if lowered in batch:
        return lowered
    matches = [k for k in batch if k.rsplit(".", 1)[-1] == lowered]
    if len(matches) == 1:
        return matches[0]
    if not matches:
        raise ColumnNotFoundError(f"unknown column '{name}'")
    raise SqlPlanError(f"ambiguous column '{name}' (candidates: {sorted(matches)})")


def resolve_column(batch: Batch, name: str, qualifier: str | None) -> np.ndarray:
    """SQL name resolution against a batch's (possibly qualified) keys."""
    return batch[resolve_key(batch, name, qualifier)]


def eval_over_rows(expr: "Expr", batch: Batch, rows: np.ndarray) -> np.ndarray:
    """Evaluate ``expr`` over only the given row positions of ``batch``.

    Name resolution (including ambiguity errors) matches a full-batch
    evaluation: every reference is resolved against the *full* batch
    first, then only the resolved columns are gathered for the selected
    rows.  Returns exactly ``rows.size`` values, broadcast when the
    expression is row-independent.  Because every expression evaluates
    elementwise, the result is byte-identical to evaluating over the
    full batch and gathering afterwards — without ever materializing
    the full-length temporaries.
    """
    keys = {
        resolve_key(batch, ref.name, ref.qualifier)
        for ref in expr.column_refs()
    }
    sub: Batch = {
        key: (batch[key] if isinstance(batch[key], np.ndarray)
              else np.asarray(batch[key]))[rows]
        for key in sorted(keys)
    }
    if not sub:
        # row-independent expression: carry the selection length only
        sub = {"__rows": np.zeros(rows.size)}
    values = np.asarray(expr.eval(sub))
    if values.shape != (rows.size,):
        values = np.broadcast_to(values, (rows.size,)).copy()
    return values


class Expr:
    """Base expression node."""

    def eval(self, batch: Batch) -> np.ndarray:
        raise NotImplementedError

    def column_refs(self) -> list["ColumnRef"]:
        """All column references in this subtree (planner analysis)."""
        refs: list[ColumnRef] = []
        self._collect_refs(refs)
        return refs

    def _collect_refs(self, out: list["ColumnRef"]) -> None:
        for child in self.children():
            child._collect_refs(out)

    def children(self) -> tuple["Expr", ...]:
        return ()


@dataclass(frozen=True)
class Literal(Expr):
    value: object

    def eval(self, batch: Batch) -> np.ndarray:
        n = batch_length(batch)
        return np.full(n, self.value)

    def __str__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True)
class ColumnRef(Expr):
    name: str
    qualifier: str | None = None

    def eval(self, batch: Batch) -> np.ndarray:
        return resolve_column(batch, self.name, self.qualifier)

    def _collect_refs(self, out: list["ColumnRef"]) -> None:
        out.append(self)

    def __str__(self) -> str:
        return f"{self.qualifier}.{self.name}" if self.qualifier else self.name


_ARITH: dict[str, Callable] = {
    "+": np.add,
    "-": np.subtract,
    "*": np.multiply,
    "/": np.divide,
    "%": np.mod,
}
_COMPARE: dict[str, Callable] = {
    "=": np.equal,
    "!=": np.not_equal,
    "<": np.less,
    "<=": np.less_equal,
    ">": np.greater,
    ">=": np.greater_equal,
}


@dataclass(frozen=True)
class BinaryOp(Expr):
    op: str
    left: Expr
    right: Expr

    def children(self) -> tuple[Expr, ...]:
        return (self.left, self.right)

    def eval(self, batch: Batch) -> np.ndarray:
        op = self.op.upper() if self.op.isalpha() else self.op
        if op == "AND":
            left = np.asarray(self.left.eval(batch), dtype=bool)
            # No short-circuit across a batch, but skip the right side
            # when nothing survives — the vectorized analogue.
            if not left.any():
                return left
            return left & np.asarray(self.right.eval(batch), dtype=bool)
        if op == "OR":
            left = np.asarray(self.left.eval(batch), dtype=bool)
            if left.all():
                return left
            return left | np.asarray(self.right.eval(batch), dtype=bool)
        lhs = self.left.eval(batch)
        rhs = self.right.eval(batch)
        if op in _ARITH:
            if op == "/":
                with np.errstate(divide="ignore", invalid="ignore"):
                    return np.divide(
                        np.asarray(lhs, dtype=np.float64),
                        np.asarray(rhs, dtype=np.float64),
                    )
            return _ARITH[op](lhs, rhs)
        if op in _COMPARE:
            return _COMPARE[op](lhs, rhs)
        raise SqlPlanError(f"unknown binary operator '{self.op}'")

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class UnaryOp(Expr):
    op: str  # "-" or "NOT"
    operand: Expr

    def children(self) -> tuple[Expr, ...]:
        return (self.operand,)

    def eval(self, batch: Batch) -> np.ndarray:
        value = self.operand.eval(batch)
        if self.op == "-":
            return np.negative(value)
        if self.op.upper() == "NOT":
            return ~np.asarray(value, dtype=bool)
        raise SqlPlanError(f"unknown unary operator '{self.op}'")

    def __str__(self) -> str:
        return f"({self.op} {self.operand})"


@dataclass(frozen=True)
class Between(Expr):
    """SQL BETWEEN: inclusive on both ends."""

    value: Expr
    low: Expr
    high: Expr

    def children(self) -> tuple[Expr, ...]:
        return (self.value, self.low, self.high)

    def eval(self, batch: Batch) -> np.ndarray:
        v = self.value.eval(batch)
        return (v >= self.low.eval(batch)) & (v <= self.high.eval(batch))

    def __str__(self) -> str:
        return f"({self.value} BETWEEN {self.low} AND {self.high})"


def isin_fast(values: np.ndarray, options: tuple["Expr", ...]) -> np.ndarray | None:
    """Single-pass IN-list membership when every option is a numeric literal.

    Returns ``None`` when the fast path does not apply (non-literal or
    non-numeric options, or a non-numeric probe array) — callers fall
    back to the per-option equality loop.  Semantics match the loop
    exactly: NaN probe rows match nothing (SQL comparison semantics)
    and NaN options are dropped because ``NaN == NaN`` is false, while
    ``np.isin``'s sort-based matching would wrongly pair them.
    """
    if values.dtype.kind not in "iuf":
        return None
    literals: list[object] = []
    for option in options:
        if not isinstance(option, Literal):
            return None
        value = option.value
        if isinstance(value, bool) or not isinstance(
            value, (int, float, np.integer, np.floating)
        ):
            return None
        literals.append(value)
    finite = [v for v in literals if not (isinstance(v, (float, np.floating))
                                          and np.isnan(v))]
    if not finite:
        return np.zeros(values.shape, dtype=bool)
    needles = np.asarray(finite)
    if needles.dtype.kind not in "iuf":
        return None
    return np.isin(values, needles)


@dataclass(frozen=True)
class InList(Expr):
    value: Expr
    options: tuple[Expr, ...]

    def children(self) -> tuple[Expr, ...]:
        return (self.value, *self.options)

    def eval(self, batch: Batch) -> np.ndarray:
        v = np.asarray(self.value.eval(batch))
        fast = isin_fast(v, self.options)
        if fast is not None:
            return fast
        result = np.zeros(v.shape, dtype=bool)
        for option in self.options:
            result |= v == option.eval(batch)
        return result


@dataclass(frozen=True)
class Case(Expr):
    """Searched CASE: WHEN cond THEN value ... [ELSE value] END."""

    whens: tuple[tuple[Expr, Expr], ...]
    default: Expr | None = None

    def children(self) -> tuple[Expr, ...]:
        out: list[Expr] = []
        for cond, value in self.whens:
            out.extend((cond, value))
        if self.default is not None:
            out.append(self.default)
        return tuple(out)

    def eval(self, batch: Batch) -> np.ndarray:
        n = batch_length(batch)
        decided = np.zeros(n, dtype=bool)
        writes: list[tuple[np.ndarray, np.ndarray]] = []
        for cond, value in self.whens:
            hit = np.asarray(cond.eval(batch), dtype=bool) & ~decided
            if hit.any():
                rows = np.flatnonzero(hit)
                writes.append((rows, eval_over_rows(value, batch, rows)))
                decided |= hit
        if self.default is None:
            result = np.full(n, np.nan)
        else:
            # Evaluate the default only over still-undecided rows; when
            # every row is decided this degenerates to an empty-batch
            # probe that establishes the result dtype (dtype depends on
            # the expression's inputs, never on which rows it sees).
            undecided = np.flatnonzero(~decided)
            defaults = eval_over_rows(self.default, batch, undecided)
            result = np.empty(n, dtype=defaults.dtype)
            result[undecided] = defaults
        for rows, vals in writes:
            result[rows] = vals
        return result


def _fn_pi(n: int) -> np.ndarray:
    return np.full(n, np.pi)


#: Scalar function registry: name -> (arity, vectorized callable).
#: Arity ``-1`` means variadic.
SCALAR_FUNCTIONS: dict[str, tuple[int, Callable]] = {
    "power": (2, lambda a, b: np.power(np.asarray(a, dtype=np.float64), b)),
    "sqrt": (1, lambda a: np.sqrt(np.asarray(a, dtype=np.float64))),
    "abs": (1, np.abs),
    "floor": (1, lambda a: np.floor(np.asarray(a, dtype=np.float64))),
    "ceiling": (1, lambda a: np.ceil(np.asarray(a, dtype=np.float64))),
    "log": (1, lambda a: np.log(np.asarray(a, dtype=np.float64))),
    "log10": (1, lambda a: np.log10(np.asarray(a, dtype=np.float64))),
    "exp": (1, lambda a: np.exp(np.asarray(a, dtype=np.float64))),
    "sin": (1, lambda a: np.sin(np.asarray(a, dtype=np.float64))),
    "cos": (1, lambda a: np.cos(np.asarray(a, dtype=np.float64))),
    "tan": (1, lambda a: np.tan(np.asarray(a, dtype=np.float64))),
    "radians": (1, lambda a: np.deg2rad(np.asarray(a, dtype=np.float64))),
    "degrees": (1, lambda a: np.rad2deg(np.asarray(a, dtype=np.float64))),
    "sign": (1, np.sign),
    "round": (2, lambda a, d: np.round(
        np.asarray(a, dtype=np.float64),
        # the digits argument is irrelevant over an empty batch
        int(np.asarray(d).flat[0]) if np.asarray(d).size else 0,
    )),
    "cast": (1, lambda a: a),  # type widths are uniform here
    "isnull": (1, lambda a: np.isnan(np.asarray(a, dtype=np.float64))),
}


@dataclass(frozen=True)
class FuncCall(Expr):
    name: str
    args: tuple[Expr, ...] = ()

    def children(self) -> tuple[Expr, ...]:
        return self.args

    def eval(self, batch: Batch) -> np.ndarray:
        lowered = self.name.lower()
        if lowered == "pi":
            return _fn_pi(batch_length(batch))
        entry = SCALAR_FUNCTIONS.get(lowered)
        if entry is None:
            raise SqlPlanError(f"unknown function '{self.name}'")
        arity, fn = entry
        if arity >= 0 and len(self.args) != arity:
            raise SqlPlanError(
                f"function '{self.name}' expects {arity} args, got {len(self.args)}"
            )
        return fn(*[a.eval(batch) for a in self.args])

    def __str__(self) -> str:
        return f"{self.name}({', '.join(str(a) for a in self.args)})"


# ----------------------------------------------------------------------
# convenience constructors, so engine-internal code reads naturally
# ----------------------------------------------------------------------
def col(name: str, qualifier: str | None = None) -> ColumnRef:
    return ColumnRef(name, qualifier)


def lit(value) -> Literal:
    return Literal(value)


def and_(*parts: Expr) -> Expr:
    result = parts[0]
    for part in parts[1:]:
        result = BinaryOp("AND", result, part)
    return result
