"""The plan memo: chosen physical plans, keyed to skip planning.

Multi-user batch traffic is dominated by repeated statement shapes
("Batch is back: CasJobs") — so once the optimizer has chosen a plan
for a normalized statement, repeat executions should not pay
rewrite + DP planning again.  A :class:`PlanMemo` stores the chosen
physical plan per ``(fingerprint, config signature)``:

* the **fingerprint** hashes the printer-normalized, post-rewrite
  statement (the same normalization the result cache uses), so
  formatting, alias spelling and rewrite-equivalent forms share one
  entry;
* the **config signature** captures every planning-relevant knob
  (optimizer mode, band joins, rewrites, morsel workers), so databases
  with differing :class:`~repro.engine.config.EngineConfig`\\ s never
  cross-serve plans.

Invalidation is structural, like the result cache's: each entry
snapshots, per referenced table, the mutation ``version`` *and* the
statistics ``stats_version`` plus the learned-override generation —
DML, ANALYZE (targeted or global), matview refresh and newly installed
selectivity overrides all make the next lookup miss, which is exactly
what forces the re-plan the feedback loop wants.  Hit/miss/insert/
invalidation/eviction counters feed the obs metrics registry under
``engine.memo.*``.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field

from repro.engine.operators import PlanNode
from repro.obs.metrics import get_metrics

#: Fully-qualified memo key: (statement fingerprint, config signature).
MemoKey = tuple[str, str]


@dataclass
class MemoEntry:
    """One memoized physical plan and the state it was planned under."""

    key: MemoKey
    plan: PlanNode
    tables: frozenset[str]
    #: Per-table mutation counters at planning time.
    table_versions: dict[str, int]
    #: Per-table statistics generations at planning time.
    stats_versions: dict[str, int]
    #: Learned-override generation at planning time.
    overrides_version: int
    #: Seconds the planner spent producing this plan (what a hit saves).
    planning_s: float = 0.0
    #: The planning decision that produced the plan (miss / replan /
    #: learned-override / ...), so memo hits can report their plan's
    #: origin to the Query Store.
    decision: str = "miss"
    stored_at: float = field(default_factory=time.monotonic)
    hits: int = 0


@dataclass
class MemoStats:
    """Monotonic counters, mirrored into the obs metrics registry."""

    hits: int = 0
    misses: int = 0
    inserts: int = 0
    evictions: int = 0
    invalidations: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class PlanMemo:
    """Bounded, thread-safe LRU of memoized plans.

    One instance hangs off each feedback-enabled
    :class:`~repro.engine.database.Database` (and therefore off each
    cluster worker's per-partition database — memo state is per worker
    by construction, shipped nowhere).
    """

    def __init__(
        self,
        max_entries: int = 256,
        metrics_prefix: str = "engine.memo",
    ):
        self.max_entries = int(max_entries)
        self.stats = MemoStats()
        self._entries: OrderedDict[MemoKey, MemoEntry] = OrderedDict()
        self._lock = threading.Lock()
        metrics = get_metrics()
        self._m_hits = metrics.counter(f"{metrics_prefix}.hits")
        self._m_misses = metrics.counter(f"{metrics_prefix}.misses")
        self._m_inserts = metrics.counter(f"{metrics_prefix}.inserts")
        self._m_evictions = metrics.counter(f"{metrics_prefix}.evictions")
        self._m_invalidations = metrics.counter(
            f"{metrics_prefix}.invalidations"
        )

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(
        self,
        key: MemoKey,
        table_versions: dict[str, int | None],
        stats_versions: dict[str, int],
        overrides_version: int,
    ) -> MemoEntry | None:
        """Look up a plan; any version drift is a structural miss.

        A stale entry (table mutated, re-ANALYZEd, or overrides newer
        than planning time) is dropped on sight — the caller re-plans
        and re-memoizes under the current state.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None and (
                entry.table_versions != table_versions
                or entry.stats_versions != stats_versions
                or entry.overrides_version != overrides_version
            ):
                del self._entries[key]
                self.stats.invalidations += 1
                self._m_invalidations.inc()
                entry = None
            if entry is None:
                self.stats.misses += 1
                self._m_misses.inc()
                return None
            self._entries.move_to_end(key)
            entry.hits += 1
            self.stats.hits += 1
            self._m_hits.inc()
            return entry

    def put(
        self,
        key: MemoKey,
        plan: PlanNode,
        tables: set[str] | frozenset[str],
        table_versions: dict[str, int | None],
        stats_versions: dict[str, int],
        overrides_version: int,
        planning_s: float = 0.0,
        decision: str = "miss",
    ) -> MemoEntry:
        """Memoize a freshly chosen plan under the current state."""
        entry = MemoEntry(
            key=key,
            plan=plan,
            tables=frozenset(t.lower() for t in tables),
            table_versions=dict(table_versions),
            stats_versions=dict(stats_versions),
            overrides_version=overrides_version,
            planning_s=planning_s,
            decision=decision,
        )
        with self._lock:
            self._entries[key] = entry
            self._entries.move_to_end(key)
            self.stats.inserts += 1
            self._m_inserts.inc()
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.stats.evictions += 1
                self._m_evictions.inc()
        return entry

    def invalidate_table(self, table_name: str) -> int:
        """Eagerly drop every plan that reads the given table.

        Version-keyed lookups would miss stale entries anyway; eager
        invalidation reclaims memory immediately and makes DML/ANALYZE
        invalidation observable in the metrics.
        """
        lowered = table_name.lower()
        with self._lock:
            doomed = [
                key for key, entry in self._entries.items()
                if lowered in entry.tables
            ]
            for key in doomed:
                del self._entries[key]
            self.stats.invalidations += len(doomed)
            if doomed:
                self._m_invalidations.inc(len(doomed))
        return len(doomed)

    def invalidate_fingerprint(self, fingerprint: str) -> int:
        """Drop every entry for one statement fingerprint (any config)."""
        with self._lock:
            doomed = [key for key in self._entries if key[0] == fingerprint]
            for key in doomed:
                del self._entries[key]
            self.stats.invalidations += len(doomed)
            if doomed:
                self._m_invalidations.inc(len(doomed))
        return len(doomed)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    # ------------------------------------------------------------------
    def entries(self) -> list[MemoEntry]:
        """A snapshot of the live entries, most recently used last."""
        with self._lock:
            return list(self._entries.values())

    def summary(self) -> dict[str, float]:
        """Counters + occupancy, for reports and ``repro memo``."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "hits": self.stats.hits,
                "misses": self.stats.misses,
                "hit_rate": self.stats.hit_rate,
                "inserts": self.stats.inserts,
                "evictions": self.stats.evictions,
                "invalidations": self.stats.invalidations,
            }

    def render(self) -> str:
        """The memo as text: occupancy line plus one line per plan."""
        summary = self.summary()
        lines = [
            "plan memo: {entries:.0f} entries, {hits:.0f} hits / "
            "{misses:.0f} misses ({rate:.0%}), {inv:.0f} invalidations".format(
                entries=summary["entries"], hits=summary["hits"],
                misses=summary["misses"], rate=summary["hit_rate"],
                inv=summary["invalidations"],
            )
        ]
        for entry in self.entries():
            root = entry.plan.explain().splitlines()[0]
            lines.append(
                f"  {entry.key[0][:12]}  hits={entry.hits}  "
                f"planned_in={entry.planning_s * 1e3:.2f}ms  "
                f"tables={','.join(sorted(entry.tables)) or '-'}  {root}"
            )
        return "\n".join(lines)
