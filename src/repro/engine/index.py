"""Secondary access paths: clustered (sorted) and hash indexes.

The paper's ``spZone`` task "assigns a ZoneID and creates a
clustered-index on the data" — that is exactly
:meth:`ClusteredIndex.build`: compute the sort key, physically reorder
the table (a full read + write, which is why spZone is I/O-heavy in
Table 1), and afterwards serve range predicates as contiguous page
scans instead of full-table scans.
"""

from __future__ import annotations

import numpy as np

from repro.engine.table import Table
from repro.errors import EngineError


class ClusteredIndex:
    """Physical sort order of a table over one or more key columns.

    Keys are listed most-significant first, e.g. ``("zoneid", "ra")``.
    Building the index rewrites the table, so positions held by other
    indexes become stale — the database invalidates them.
    """

    def __init__(self, table: Table, keys: tuple[str, ...]):
        if not keys:
            raise EngineError("clustered index needs at least one key column")
        for key in keys:
            if not table.schema.has_column(key):
                raise EngineError(
                    f"table '{table.name}' has no column '{key}' to index"
                )
        self.table = table
        self.keys = tuple(k.lower() for k in keys)
        self._built = False

    def build(self) -> None:
        """Sort the table by the key columns (stable, last key least
        significant) and remember the sorted leading-key array."""
        arrays = [self.table.column(k) for k in reversed(self.keys)]
        order = np.lexsort(arrays)
        self.table.reorder(order)
        self._built = True

    @property
    def leading_key(self) -> str:
        return self.keys[0]

    def _require_built(self) -> None:
        if not self._built:
            raise EngineError("clustered index used before build()")

    def range_rows(self, lo, hi) -> tuple[int, int]:
        """Row range [start, stop) with ``lo <= leading_key <= hi``."""
        self._require_built()
        key = self.table.column(self.leading_key)
        start = int(np.searchsorted(key, lo, side="left"))
        stop = int(np.searchsorted(key, hi, side="right"))
        return start, stop

    def range_scan(self, lo, hi) -> dict[str, np.ndarray]:
        """Read (with page accounting) all rows in the leading-key range."""
        start, stop = self.range_rows(lo, hi)
        return self.table.read_rows(start, stop)


class HashIndex:
    """Equality access path: column value -> row positions.

    Probes touch the pages of the matched rows (bookmark lookups), so a
    selective hash probe is visibly cheaper than a scan in the counters.
    """

    def __init__(self, table: Table, key: str):
        if not table.schema.has_column(key):
            raise EngineError(f"table '{table.name}' has no column '{key}'")
        self.table = table
        self.key = key.lower()
        self._buckets: dict | None = None

    def build(self) -> None:
        buckets: dict = {}
        for row, value in enumerate(self.table.column(self.key).tolist()):
            buckets.setdefault(value, []).append(row)
        self._buckets = buckets

    def invalidate(self) -> None:
        self._buckets = None

    def lookup(self, value) -> dict[str, np.ndarray]:
        """Rows with ``key == value`` (accounted as random page reads)."""
        if self._buckets is None:
            raise EngineError("hash index used before build()")
        rows = np.asarray(self._buckets.get(value, []), dtype=np.int64)
        return self.table.read_row_ids(rows)

    def lookup_rows(self, value) -> np.ndarray:
        """Row positions only (no payload fetch, no accounting)."""
        if self._buckets is None:
            raise EngineError("hash index used before build()")
        return np.asarray(self._buckets.get(value, []), dtype=np.int64)
