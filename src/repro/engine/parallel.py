"""Morsel-parallel execution: block dispatch onto a small thread pool.

The paper's parallelism story stops at partitions — whole servers
running whole pipelines.  This module adds parallelism *within* one
operator: a join or filter splits its input into fixed-size blocks
("morsels", after the Hyper paper's morsel-driven scheduling) and the
blocks run concurrently on a shared thread pool.  numpy releases the
GIL inside its kernels, so the chi²-style vectorized predicates that
dominate the MaxBCG join really do overlap on a multi-core box.

Determinism is non-negotiable: block boundaries are chosen by the
*operator* (never by the worker count) and results are reassembled in
submission order, so the output batch is byte-identical for any
``intra_query_workers`` setting — the property the cluster layer's
``assert_backends_equivalent`` and the golden-fingerprint tests pin.

The single-worker path never touches the pool, the tracer or the
metrics registry; a ``workers=1`` operator behaves exactly as it did
before this module existed.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Sequence, TypeVar

from repro.errors import EngineError

T = TypeVar("T")

#: Upper bound on pool size: beyond this, morsel scheduling overhead
#: swamps any GIL-release win for the batch sizes the engine sees.
MAX_WORKERS = 16

_pool: ThreadPoolExecutor | None = None
_pool_workers = 0
_pool_lock = threading.Lock()


def resolve_workers(workers: int) -> int:
    """Validate and clamp a worker-count knob."""
    if int(workers) != workers or workers < 1:
        raise EngineError(
            f"intra_query_workers must be a positive integer, got {workers!r}"
        )
    return min(int(workers), MAX_WORKERS)


def get_pool(workers: int) -> ThreadPoolExecutor:
    """The shared grow-only morsel pool, sized for at least ``workers``.

    One pool serves every operator in the process; requesting more
    workers than it currently has replaces it with a larger one.  Pool
    threads are reused across queries — morsels are far too small to
    amortize per-query thread creation.
    """
    global _pool, _pool_workers
    with _pool_lock:
        if _pool is None or _pool_workers < workers:
            old = _pool
            _pool = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="morsel"
            )
            _pool_workers = workers
            if old is not None:
                old.shutdown(wait=False)
        return _pool


def run_morsels(
    tasks: Sequence[Callable[[], T]],
    workers: int = 1,
    name: str = "engine.morsel",
) -> list[T]:
    """Run block tasks, returning their results in submission order.

    ``workers <= 1`` (or a single task) executes inline with zero
    overhead.  Otherwise the tasks are submitted to the shared pool;
    each morsel runs inside an ``engine.morsel`` trace span parented
    under the dispatching query's span (contextvars do not flow into
    pool threads on their own, so the context is captured here and
    re-activated per task), and feeds the ``engine.morsels`` counter
    and ``engine.morsel.elapsed_s`` histogram.  Results are collected
    by index: output order is the task order, never completion order.
    """
    if workers <= 1 or len(tasks) <= 1:
        return [task() for task in tasks]

    from repro.obs.metrics import get_metrics
    from repro.obs.trace import activate, current_context, span

    ctx = current_context()
    metrics = get_metrics()
    counter = metrics.counter("engine.morsels")
    histogram = metrics.histogram("engine.morsel.elapsed_s")

    def run_one(index: int, task: Callable[[], T]) -> T:
        started = time.perf_counter()
        with activate(ctx):
            with span(name, layer="engine", attrs={"morsel": index}):
                result = task()
        counter.inc()
        histogram.observe(time.perf_counter() - started)
        return result

    pool = get_pool(min(workers, len(tasks)))
    futures = [pool.submit(run_one, i, task) for i, task in enumerate(tasks)]
    return [future.result() for future in futures]
