"""Join operators: hash, nested-loop, and cross joins.

The paper's Filter step is a ``CROSS JOIN`` of each galaxy with the
1000-row Kcorr table followed by a chi² predicate, and its Section 2.6
credits "the redshift index as the JOIN attribute" for speed — i.e. an
equi-join on ``zid`` executed as a hash join.  The planner picks
:class:`HashJoin` whenever an equality conjunct connects the two sides,
and falls back to :class:`NestedLoopJoin` otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.engine.expressions import Batch, Expr, batch_length
from repro.engine.operators import PlanNode, take
from repro.errors import SqlPlanError


def merge_batches(left: Batch, left_rows, right: Batch, right_rows) -> Batch:
    """Combine row selections from two batches into one joined batch."""
    out: Batch = {}
    for key, arr in left.items():
        out[key] = np.asarray(arr)[left_rows]
    for key, arr in right.items():
        if key in out:
            raise SqlPlanError(f"join would duplicate output column '{key}'")
        out[key] = np.asarray(arr)[right_rows]
    return out


@dataclass
class HashJoin(PlanNode):
    """Equi-join: build a hash table on the right, probe from left.

    ``outer=True`` gives LEFT OUTER semantics: unmatched left rows are
    kept, with the right side's columns padded with NULL (NaN; integer
    right columns are widened to float for the padding).  The residual
    predicate, when present, participates in the match decision — a
    left row whose equi-matches all fail the residual is still emitted
    once with NULL right columns, per SQL's ON-clause semantics.
    """

    left: PlanNode
    right: PlanNode
    left_key: Expr
    right_key: Expr
    residual: Expr | None = None  # extra non-equi conjuncts from ON
    outer: bool = False

    def execute(self) -> Batch:
        lbatch = self.left.execute()
        rbatch = self.right.execute()
        lkeys = np.asarray(self.left_key.eval(lbatch))
        rkeys = np.asarray(self.right_key.eval(rbatch))

        buckets: dict = {}
        for row, key in enumerate(rkeys.tolist()):
            buckets.setdefault(key, []).append(row)

        left_rows: list[int] = []
        right_rows: list[int] = []
        for row, key in enumerate(lkeys.tolist()):
            matches = buckets.get(key)
            if matches:
                left_rows.extend([row] * len(matches))
                right_rows.extend(matches)

        joined = merge_batches(
            lbatch, np.asarray(left_rows, dtype=np.int64),
            rbatch, np.asarray(right_rows, dtype=np.int64),
        )
        if self.residual is not None and batch_length(joined):
            mask = np.asarray(self.residual.eval(joined), dtype=bool)
            joined = take(joined, mask)
            left_rows = np.asarray(left_rows, dtype=np.int64)[mask].tolist()

        if not self.outer:
            return joined

        matched = np.zeros(batch_length(lbatch), dtype=bool)
        if left_rows:
            matched[np.asarray(left_rows, dtype=np.int64)] = True
        missing = np.flatnonzero(~matched)
        if missing.size == 0:
            return joined
        pad: Batch = {}
        for key, arr in lbatch.items():
            pad[key] = np.asarray(arr)[missing]
        n_pad = missing.size
        for key, arr in rbatch.items():
            arr = np.asarray(arr)
            if arr.dtype.kind in ("i", "u", "b", "f"):
                pad[key] = np.full(n_pad, np.nan)
            else:
                pad[key] = np.full(n_pad, None, dtype=object)
        out: Batch = {}
        for key in joined:
            left_part = np.asarray(joined[key])
            right_part = np.asarray(pad[key])
            if left_part.dtype != right_part.dtype and right_part.dtype.kind == "f":
                left_part = left_part.astype(np.float64)
            out[key] = np.concatenate([left_part, right_part])
        return out

    def _describe(self) -> str:
        txt = "HashJoin(" + ("LEFT, " if self.outer else "")
        txt += f"{self.left_key} = {self.right_key}"
        if self.residual is not None:
            txt += f", residual {self.residual}"
        return txt + ")"

    def _children(self) -> tuple[PlanNode, ...]:
        return (self.left, self.right)


@dataclass
class NestedLoopJoin(PlanNode):
    """Inner join on an arbitrary predicate.

    Evaluated block-wise: for each left row block, the right side is
    broadcast and the predicate filters pairs.  Quadratic, as nested
    loops are — the planner only uses it when no equi-key exists.
    """

    left: PlanNode
    right: PlanNode
    predicate: Expr | None
    block_rows: int = 1024

    def execute(self) -> Batch:
        lbatch = self.left.execute()
        rbatch = self.right.execute()
        n_left = batch_length(lbatch)
        n_right = batch_length(rbatch)
        if n_left == 0 or n_right == 0:
            return merge_batches(
                lbatch, np.empty(0, np.int64), rbatch, np.empty(0, np.int64)
            )

        left_parts: list[np.ndarray] = []
        right_parts: list[np.ndarray] = []
        r_index = np.arange(n_right, dtype=np.int64)
        for start in range(0, n_left, self.block_rows):
            stop = min(start + self.block_rows, n_left)
            block = stop - start
            l_rows = np.repeat(np.arange(start, stop, dtype=np.int64), n_right)
            r_rows = np.tile(r_index, block)
            if self.predicate is None:
                left_parts.append(l_rows)
                right_parts.append(r_rows)
                continue
            pair_batch = merge_batches(lbatch, l_rows, rbatch, r_rows)
            mask = np.asarray(self.predicate.eval(pair_batch), dtype=bool)
            left_parts.append(l_rows[mask])
            right_parts.append(r_rows[mask])

        left_rows = np.concatenate(left_parts)
        right_rows = np.concatenate(right_parts)
        return merge_batches(lbatch, left_rows, rbatch, right_rows)

    def _describe(self) -> str:
        return f"NestedLoopJoin({self.predicate})"

    def _children(self) -> tuple[PlanNode, ...]:
        return (self.left, self.right)


@dataclass
class CrossJoin(PlanNode):
    """Cartesian product — the paper's ``Galaxy CROSS JOIN Kcorr`` shape."""

    left: PlanNode
    right: PlanNode

    def execute(self) -> Batch:
        return NestedLoopJoin(self.left, self.right, None).execute()

    def _describe(self) -> str:
        return "CrossJoin"

    def _children(self) -> tuple[PlanNode, ...]:
        return (self.left, self.right)
