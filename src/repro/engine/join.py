"""Join operators: hash, band, nested-loop, and cross joins.

The paper's Filter step is a ``CROSS JOIN`` of each galaxy with the
1000-row Kcorr table followed by a chi² predicate, and its Section 2.6
credits "the redshift index as the JOIN attribute" for speed — i.e. an
equi-join on ``zid`` executed as a hash join.  The planner picks
:class:`HashJoin` whenever an equality conjunct connects the two sides,
:class:`BandJoin` when a range conjunct bounds one side's column by
expressions over the other (the set-oriented rewrite the original
authors used for neighbor searches: sort one side, visit only the rows
inside each probe's interval), and falls back to
:class:`NestedLoopJoin` otherwise.

Join outputs are *canonically ordered*: pairs appear sorted by
(left row, right row), exactly the order a naive nested loop emits.
Every operator here preserves that invariant no matter which side it
builds on, how it bins, or how many morsel workers execute it — which
is what lets the differential tests demand byte-identical batches
across physical plans.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.engine.expressions import (
    Batch,
    Expr,
    batch_length,
    resolve_key,
)
from repro.engine.operators import PlanNode, take
from repro.errors import SqlPlanError


def _as_array(arr) -> np.ndarray:
    """Coerce only when needed — columns are almost always ndarrays."""
    return arr if isinstance(arr, np.ndarray) else np.asarray(arr)


def merge_batches(left: Batch, left_rows, right: Batch, right_rows) -> Batch:
    """Combine row selections from two batches into one joined batch."""
    out: Batch = {}
    for key, arr in left.items():
        out[key] = _as_array(arr)[left_rows]
    for key, arr in right.items():
        if key in out:
            raise SqlPlanError(f"join would duplicate output column '{key}'")
        out[key] = _as_array(arr)[right_rows]
    return out


def _row_bytes(*batches: Batch) -> int:
    """Bytes one materialized pair row costs across the given batches."""
    total = 0
    for batch in batches:
        for arr in batch.values():
            total += _as_array(arr).itemsize
    return max(total, 1)


def _predicate_kernel(node: PlanNode, predicate: Expr):
    """Lazily compile a join's residual/theta predicate (one kernel per
    plan node, shared across blocks and morsel workers)."""
    kernel = getattr(node, "_kernel", None)
    if kernel is None:
        from repro.engine.compile import CompiledKernel

        kernel = node._kernel = CompiledKernel(predicate=predicate)
    return kernel


@dataclass
class HashJoin(PlanNode):
    """Equi-join: build a hash table on the smaller input, probe the other.

    The build side is picked by the optimizer's ``est_rows`` stamped on
    each input (falling back to the actual batch lengths when the plan
    was never annotated) — building on a 1000-row dimension instead of
    a million-row fact is the difference between a dict that fits in
    cache and one that doesn't.  Output order is canonical
    (left row, right row) regardless of which side built.

    ``outer=True`` gives LEFT OUTER semantics: unmatched left rows are
    kept, with the right side's columns padded with NULL (NaN; integer
    right columns are widened to float for the padding).  The residual
    predicate, when present, participates in the match decision — a
    left row whose equi-matches all fail the residual is still emitted
    once with NULL right columns, per SQL's ON-clause semantics.
    """

    left: PlanNode
    right: PlanNode
    left_key: Expr
    right_key: Expr
    residual: Expr | None = None  # extra non-equi conjuncts from ON
    outer: bool = False

    def _build_on_right(self, n_left: int, n_right: int) -> bool:
        """Build the table on the smaller side (estimates, then actuals)."""
        left_est, right_est = self.left.est_rows, self.right.est_rows
        if left_est is not None and right_est is not None \
                and left_est != right_est:
            return right_est <= left_est
        return n_right <= n_left

    def execute(self) -> Batch:
        lbatch = self.left.execute()
        rbatch = self.right.execute()
        lkeys = _as_array(self.left_key.eval(lbatch))
        rkeys = _as_array(self.right_key.eval(rbatch))

        if self._build_on_right(lkeys.shape[0], rkeys.shape[0]):
            build_keys, probe_keys, probe_is_left = rkeys, lkeys, True
        else:
            build_keys, probe_keys, probe_is_left = lkeys, rkeys, False

        buckets: dict = {}
        for row, key in enumerate(build_keys.tolist()):
            buckets.setdefault(key, []).append(row)

        probe_rows: list[int] = []
        build_rows: list[int] = []
        for row, key in enumerate(probe_keys.tolist()):
            matches = buckets.get(key)
            if matches:
                probe_rows.extend([row] * len(matches))
                build_rows.extend(matches)

        if probe_is_left:
            left_rows = np.asarray(probe_rows, dtype=np.int64)
            right_rows = np.asarray(build_rows, dtype=np.int64)
        else:
            # probed from the right: pairs arrived right-major; restore
            # the canonical (left row, right row) order
            left_rows = np.asarray(build_rows, dtype=np.int64)
            right_rows = np.asarray(probe_rows, dtype=np.int64)
            perm = np.lexsort((right_rows, left_rows))
            left_rows = left_rows[perm]
            right_rows = right_rows[perm]

        joined = merge_batches(lbatch, left_rows, rbatch, right_rows)
        if self.residual is not None and batch_length(joined):
            if self.compiled:
                survivors = _predicate_kernel(self, self.residual).select(joined)
                joined = take(joined, survivors)
                left_rows = left_rows[survivors]
            else:
                mask = np.asarray(self.residual.eval(joined), dtype=bool)
                joined = take(joined, mask)
                left_rows = left_rows[mask]

        if not self.outer:
            return joined

        matched = np.zeros(batch_length(lbatch), dtype=bool)
        if left_rows.size:
            matched[left_rows] = True
        missing = np.flatnonzero(~matched)
        if missing.size == 0:
            return joined
        pad: Batch = {}
        for key, arr in lbatch.items():
            pad[key] = _as_array(arr)[missing]
        n_pad = missing.size
        for key, arr in rbatch.items():
            arr = _as_array(arr)
            if arr.dtype.kind in ("i", "u", "b", "f"):
                pad[key] = np.full(n_pad, np.nan)
            else:
                pad[key] = np.full(n_pad, None, dtype=object)
        out: Batch = {}
        for key in joined:
            left_part = _as_array(joined[key])
            right_part = _as_array(pad[key])
            if left_part.dtype != right_part.dtype and right_part.dtype.kind == "f":
                left_part = left_part.astype(np.float64)
            out[key] = np.concatenate([left_part, right_part])
        return out

    def _describe(self) -> str:
        txt = "HashJoin(" + ("LEFT, " if self.outer else "")
        txt += f"{self.left_key} = {self.right_key}"
        if self.residual is not None:
            txt += f", residual {self.residual}"
        txt += ")"
        if self.compiled and self.residual is not None:
            txt += f"  {_predicate_kernel(self, self.residual).describe()}"
        return txt

    def _children(self) -> tuple[PlanNode, ...]:
        return (self.left, self.right)


@dataclass
class BandJoin(PlanNode):
    """Sort-based band join: the paper-era fix for range theta-joins.

    The right side is sorted on ``right_key`` once; for every left row
    the bounds ``[low(l), high(l)]`` (expressions over the left batch —
    column arithmetic or constants) select a *contiguous* slice of the
    sorted keys by binary search, so the pair space shrinks from
    |L|·|R| to exactly the rows inside each band.  The remaining theta
    conjuncts run as a vectorized ``residual`` filter over only the
    band survivors — and only over the columns the residual references;
    the full output batch is materialized for final pairs alone.

    Semantics are *identical* to a :class:`NestedLoopJoin` over
    ``low ⋈ key ⋈ high AND residual``:

    * strict bounds (``<``/``>``) pick the open searchsorted side, so no
      boundary row is wrongly admitted;
    * NaN bounds match nothing (as every SQL comparison with NaN is
      false), and NaN key rows are never visited (they sort past the
      finite region and the search is clamped to it);
    * output pairs are canonically ordered (left row, right row).

    ``workers > 1`` dispatches left-row blocks to the shared morsel
    pool; block boundaries depend only on :attr:`block_rows`, so the
    output is byte-identical for every worker count.
    """

    #: Default left rows per block (overridable via ``block_rows``).
    DEFAULT_BLOCK_ROWS = 8192

    left: PlanNode
    right: PlanNode
    right_key: Expr
    low: Expr | None = None
    high: Expr | None = None
    low_strict: bool = False
    high_strict: bool = False
    residual: Expr | None = None
    block_rows: int = 0  # 0 = DEFAULT_BLOCK_ROWS
    workers: int = 1

    def execute(self) -> Batch:
        lbatch = self.left.execute()
        rbatch = self.right.execute()
        n_left = batch_length(lbatch)
        n_right = batch_length(rbatch)
        if n_left == 0 or n_right == 0:
            return merge_batches(
                lbatch, np.empty(0, np.int64), rbatch, np.empty(0, np.int64)
            )

        rkeys = _as_array(self.right_key.eval(rbatch))
        order = np.argsort(rkeys, kind="stable")
        sorted_keys = rkeys[order]
        # NaN keys sort past every finite key; clamping the search stops
        # to the finite region guarantees they are never visited.
        n_finite = n_right
        if sorted_keys.dtype.kind == "f":
            n_finite = n_right - int(np.isnan(sorted_keys).sum())

        lo = hi = None
        invalid = np.zeros(n_left, dtype=bool)
        if self.low is not None:
            lo = _as_array(self.low.eval(lbatch))
            if lo.dtype.kind == "f":
                invalid |= np.isnan(lo)
        if self.high is not None:
            hi = _as_array(self.high.eval(lbatch))
            if hi.dtype.kind == "f":
                invalid |= np.isnan(hi)
        any_invalid = bool(invalid.any())

        residual_keys = self._residual_keys(lbatch, rbatch)
        residual_kernel = (
            _predicate_kernel(self, self.residual)
            if self.compiled and self.residual is not None
            else None
        )

        def block_task(start: int, stop: int) -> tuple[np.ndarray, np.ndarray]:
            if lo is not None:
                starts = np.searchsorted(
                    sorted_keys, lo[start:stop],
                    side="right" if self.low_strict else "left",
                )
                starts = np.minimum(starts, n_finite)
            else:
                starts = np.zeros(stop - start, dtype=np.int64)
            if hi is not None:
                stops = np.searchsorted(
                    sorted_keys, hi[start:stop],
                    side="left" if self.high_strict else "right",
                )
                stops = np.minimum(stops, n_finite)
            else:
                stops = np.full(stop - start, n_finite, dtype=np.int64)

            counts = np.maximum(stops - starts, 0)
            if any_invalid:
                counts[invalid[start:stop]] = 0
            total = int(counts.sum())
            empty = np.empty(0, dtype=np.int64)
            if total == 0:
                return empty, empty

            l_rows = np.repeat(np.arange(start, stop, dtype=np.int64), counts)
            # concatenate the ranges starts[i]:stops[i] without a loop
            group_first = np.cumsum(counts) - counts
            within = np.arange(total, dtype=np.int64) - np.repeat(
                group_first, counts
            )
            r_rows = order[np.repeat(starts, counts) + within]
            # canonical order: per left row, right rows by original
            # position (the sorted slice visits them in key order)
            perm = np.lexsort((r_rows, l_rows))
            r_rows = r_rows[perm]

            if self.residual is not None:
                pair = {
                    key: (_as_array(lbatch[key])[l_rows] if side == "left"
                          else _as_array(rbatch[key])[r_rows])
                    for key, side in residual_keys
                }
                if not pair:
                    pair = {"__band": np.zeros(total)}
                if residual_kernel is not None:
                    survivors = residual_kernel.select(pair, total)
                    l_rows = l_rows[survivors]
                    r_rows = r_rows[survivors]
                else:
                    mask = np.asarray(self.residual.eval(pair), dtype=bool)
                    l_rows = l_rows[mask]
                    r_rows = r_rows[mask]
            return l_rows, r_rows

        block = self.block_rows or self.DEFAULT_BLOCK_ROWS
        starts_list = list(range(0, n_left, block))
        from repro.engine.parallel import run_morsels

        parts = run_morsels(
            [
                (lambda s=start: block_task(s, min(s + block, n_left)))
                for start in starts_list
            ],
            workers=self.workers,
            name="engine.morsel.bandjoin",
        )
        left_rows = np.concatenate([p[0] for p in parts])
        right_rows = np.concatenate([p[1] for p in parts])
        return merge_batches(lbatch, left_rows, rbatch, right_rows)

    def _residual_keys(
        self, lbatch: Batch, rbatch: Batch
    ) -> list[tuple[str, str]]:
        """Resolve the residual's column refs to (batch key, side) pairs
        so the residual evaluates over a projection, not the full merge."""
        if self.residual is None:
            return []
        combined: Batch = {**lbatch, **rbatch}
        resolved: dict[str, str] = {}
        for ref in self.residual.column_refs():
            key = resolve_key(combined, ref.name, ref.qualifier)
            resolved[key] = "left" if key in lbatch else "right"
        return sorted(resolved.items())

    def _describe(self) -> str:
        lb = "(" if self.low_strict else "["
        rb = ")" if self.high_strict else "]"
        lo = str(self.low) if self.low is not None else "-inf"
        hi = str(self.high) if self.high is not None else "+inf"
        txt = f"BandJoin({self.right_key} in {lb}{lo}, {hi}{rb}"
        if self.residual is not None:
            txt += f", residual {self.residual}"
        if self.workers > 1:
            txt += f", workers={self.workers}"
        txt += ")"
        if self.compiled and self.residual is not None:
            txt += f"  {_predicate_kernel(self, self.residual).describe()}"
        return txt

    def _children(self) -> tuple[PlanNode, ...]:
        return (self.left, self.right)


@dataclass
class NestedLoopJoin(PlanNode):
    """Inner join on an arbitrary predicate.

    Evaluated block-wise: for each left row block, the right side is
    broadcast and the predicate filters pairs.  Quadratic, as nested
    loops are — the planner only uses it when neither an equi key nor a
    band bound exists.

    ``block_rows=0`` (the default) sizes blocks adaptively so one
    materialized pair batch stays under :attr:`PAIR_BYTE_BUDGET` —
    a wide right side gets short blocks instead of a memory blowup.
    ``workers > 1`` runs blocks on the shared morsel pool; the block
    split never depends on the worker count, so output is byte-stable.
    """

    #: Byte ceiling for one block's materialized pair batch.
    PAIR_BYTE_BUDGET = 32 << 20

    left: PlanNode
    right: PlanNode
    predicate: Expr | None
    block_rows: int = 0  # 0 = adaptive under PAIR_BYTE_BUDGET
    workers: int = 1

    def _effective_block_rows(
        self, lbatch: Batch, rbatch: Batch, n_right: int
    ) -> int:
        if self.block_rows:
            return self.block_rows
        per_left_row = n_right * _row_bytes(lbatch, rbatch)
        return int(min(max(self.PAIR_BYTE_BUDGET // max(per_left_row, 1), 16),
                       65536))

    def execute(self) -> Batch:
        lbatch = self.left.execute()
        rbatch = self.right.execute()
        n_left = batch_length(lbatch)
        n_right = batch_length(rbatch)
        if n_left == 0 or n_right == 0:
            return merge_batches(
                lbatch, np.empty(0, np.int64), rbatch, np.empty(0, np.int64)
            )

        r_index = np.arange(n_right, dtype=np.int64)
        kernel = (
            _predicate_kernel(self, self.predicate)
            if self.compiled and self.predicate is not None
            else None
        )

        def block_task(start: int, stop: int) -> tuple[np.ndarray, np.ndarray]:
            block = stop - start
            l_rows = np.repeat(np.arange(start, stop, dtype=np.int64), n_right)
            r_rows = np.tile(r_index, block)
            if self.predicate is None:
                return l_rows, r_rows
            pair_batch = merge_batches(lbatch, l_rows, rbatch, r_rows)
            if kernel is not None:
                survivors = kernel.select(pair_batch, l_rows.size)
                return l_rows[survivors], r_rows[survivors]
            mask = np.asarray(self.predicate.eval(pair_batch), dtype=bool)
            return l_rows[mask], r_rows[mask]

        block = self._effective_block_rows(lbatch, rbatch, n_right)
        from repro.engine.parallel import run_morsels

        parts = run_morsels(
            [
                (lambda s=start: block_task(s, min(s + block, n_left)))
                for start in range(0, n_left, block)
            ],
            workers=self.workers,
            name="engine.morsel.nljoin",
        )
        left_rows = np.concatenate([p[0] for p in parts])
        right_rows = np.concatenate([p[1] for p in parts])
        return merge_batches(lbatch, left_rows, rbatch, right_rows)

    def _describe(self) -> str:
        txt = f"NestedLoopJoin({self.predicate}"
        if self.workers > 1:
            txt += f", workers={self.workers}"
        txt += ")"
        if self.compiled and self.predicate is not None:
            txt += f"  {_predicate_kernel(self, self.predicate).describe()}"
        return txt

    def _children(self) -> tuple[PlanNode, ...]:
        return (self.left, self.right)


@dataclass
class CrossJoin(PlanNode):
    """Cartesian product — the paper's ``Galaxy CROSS JOIN Kcorr`` shape."""

    left: PlanNode
    right: PlanNode
    workers: int = 1

    def execute(self) -> Batch:
        return NestedLoopJoin(
            self.left, self.right, None, workers=self.workers
        ).execute()

    def _describe(self) -> str:
        return "CrossJoin"

    def _children(self) -> tuple[PlanNode, ...]:
        return (self.left, self.right)
