"""On-disk persistence of tables and databases.

Two consumers need durable tables: the TAM comparison (whose whole point
is that the baseline round-trips everything through files) and CasJobs
MyDBs (per-user databases that outlive a session).  Format: one ``.npz``
per table holding the column arrays, plus a tiny ``.schema`` JSON with
column types and the primary key.  Optimizer statistics, when the table
has been ANALYZEd, ride along in a ``.stats`` JSON so a restored
database plans as well as the original did.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.engine.database import Database
from repro.engine.optimizer.statistics import stats_from_json, stats_to_json
from repro.engine.schema import Column, TableSchema
from repro.engine.table import Table
from repro.engine.types import ColumnType
from repro.errors import EngineError


def save_table(table: Table, directory: str | Path) -> Path:
    """Write one table to ``<directory>/<name>.npz`` (+ ``.schema``)."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    data_path = directory / f"{table.name.lower()}.npz"
    columns = table.columns_dict()
    # STRING columns are object arrays; store them as unicode for npz.
    storable = {
        name: (arr.astype(str) if arr.dtype == object else arr)
        for name, arr in columns.items()
    }
    np.savez(data_path, **storable)
    meta = {
        "name": table.schema.name,
        "columns": [
            {"name": c.name, "type": c.type.value} for c in table.schema.columns
        ],
        "primary_key": table.schema.primary_key,
    }
    if table.compression is not None:
        meta["compression"] = [
            {
                "column": c.column,
                "kind": c.kind,
                "bytes_per_row": c.bytes_per_row,
            }
            for c in table.compression.codecs
        ]
    (directory / f"{table.name.lower()}.schema").write_text(json.dumps(meta))
    stats_path = directory / f"{table.name.lower()}.stats"
    if table.stats is not None:
        stats_path.write_text(json.dumps(stats_to_json(table.stats)))
    elif stats_path.exists():
        # re-saving an unanalyzed table must not resurrect stale stats
        stats_path.unlink()
    return data_path


def load_table(database: Database, directory: str | Path, name: str) -> Table:
    """Load a saved table into a database (creating the table)."""
    directory = Path(directory)
    schema_path = directory / f"{name.lower()}.schema"
    data_path = directory / f"{name.lower()}.npz"
    if not schema_path.exists() or not data_path.exists():
        raise EngineError(f"no saved table '{name}' in {directory}")
    meta = json.loads(schema_path.read_text())
    schema = TableSchema(
        name=meta["name"],
        columns=tuple(
            Column(c["name"], ColumnType(c["type"])) for c in meta["columns"]
        ),
        primary_key=meta["primary_key"],
    )
    table = database.create_table_from_schema(schema)
    with np.load(data_path, allow_pickle=False) as bundle:
        columns = {}
        for column in schema.columns:
            arr = bundle[column.name.lower()]
            if column.type is ColumnType.STRING:
                arr = arr.astype(object)
            columns[column.name.lower()] = arr
    if next(iter(columns.values())).size:
        table.insert(columns)
    stats_path = directory / f"{name.lower()}.stats"
    if stats_path.exists():
        table.stats = stats_from_json(json.loads(stats_path.read_text()))
    if meta.get("compression"):
        from repro.engine.pages import ColumnCodec, CompressionPlan

        table.apply_compression(CompressionPlan(codecs=tuple(
            ColumnCodec(
                column=c["column"],
                kind=c["kind"],
                bytes_per_row=c["bytes_per_row"],
            )
            for c in meta["compression"]
        )))
    return table


#: Filename of the persisted Query Store document.
QUERY_STORE_FILE = "querystore.json"


def save_database(database: Database, directory: str | Path) -> list[Path]:
    """Persist every table of a database; returns the written paths.

    System tables (the ``sys_query_store_*`` views) are derived data
    and are skipped; the Query Store itself — runtime stats, plan
    history and forced-plan pins — is written as one
    ``querystore.json`` beside the table files.
    """
    directory = Path(directory)
    paths = [
        save_table(database.table(name), directory)
        for name in database.table_names()
        if not database.is_system_table(name)
    ]
    store = getattr(database, "query_store", None)
    if store is not None:
        directory.mkdir(parents=True, exist_ok=True)
        store_path = directory / QUERY_STORE_FILE
        store_path.write_text(
            json.dumps(store.to_json(database.plan_forcer))
        )
        paths.append(store_path)
    return paths


def load_database(
    directory: str | Path,
    name: str = "restored",
    pool_pages: int | None = None,
    config=None,
) -> Database:
    """Restore a database from a directory of saved tables.

    With ``config=EngineConfig(query_store=True)`` a saved
    ``querystore.json`` is loaded back: workload history, plan history
    and forced-plan pins all survive the restart (pinned plans are
    re-established structurally on their next execution).
    """
    from repro.engine.config import DEFAULT_ENGINE_CONFIG

    directory = Path(directory)
    if not directory.is_dir():
        raise EngineError(f"{directory} is not a directory")
    if config is None:
        config = DEFAULT_ENGINE_CONFIG
    if pool_pages is not None:
        config = config.replace(pool_pages=pool_pages)
    database = Database(name, config=config)
    for schema_path in sorted(directory.glob("*.schema")):
        load_table(database, directory, schema_path.stem)
    store_path = directory / QUERY_STORE_FILE
    if database.query_store is not None and store_path.exists():
        database.query_store.load_json(
            json.loads(store_path.read_text()), database.plan_forcer
        )
    return database
