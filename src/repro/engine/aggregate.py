"""Grouped and scalar aggregation (GROUP BY / aggregate functions).

Supports COUNT(*), COUNT(expr), SUM, MIN, MAX and AVG — the set the
paper's SQL uses (``COUNT(*) ... GROUP BY c.zid``, ``MAX(k.radius)``,
``MIN(chisq)``, ...).  Without a GROUP BY clause the result is a single
scalar row, as in SQL.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.engine.expressions import Batch, Expr, batch_length
from repro.engine.operators import PlanNode
from repro.errors import SqlPlanError

AGGREGATE_NAMES = ("count", "count_distinct", "sum", "min", "max", "avg")


@dataclass(frozen=True)
class AggregateSpec:
    """One output aggregate: ``name <- func(argument)``.

    ``argument is None`` encodes ``COUNT(*)``.
    """

    func: str
    argument: Expr | None
    name: str

    def __post_init__(self) -> None:
        if self.func.lower() not in AGGREGATE_NAMES:
            raise SqlPlanError(f"unknown aggregate function '{self.func}'")
        if self.argument is None and self.func.lower() != "count":
            raise SqlPlanError(f"{self.func}(*) is not valid; only COUNT(*)")


def _drop_nulls(values: np.ndarray) -> np.ndarray:
    """SQL NULL semantics: NaN values are absent for COUNT purposes."""
    if values.dtype.kind == "f":
        return values[~np.isnan(values)]
    return values


def _reduce(func: str, values: np.ndarray):
    if func == "count":
        # COUNT(expr) skips NULLs; COUNT(*) reaches here with an
        # all-ones surrogate and is unaffected
        return int(_drop_nulls(values).size)
    if func == "count_distinct":
        return int(np.unique(_drop_nulls(values)).size)
    if values.size == 0:
        # SQL semantics: other aggregates over empty inputs yield NULL
        return np.nan
    if func == "sum":
        return values.sum()
    if func == "min":
        return values.min()
    if func == "max":
        return values.max()
    if func == "avg":
        return float(values.mean())
    raise SqlPlanError(f"unknown aggregate '{func}'")


@dataclass
class Aggregate(PlanNode):
    """Hash aggregation over optional group keys."""

    child: PlanNode
    group_by: list[tuple[str, Expr]]  # output name, key expression
    aggregates: list[AggregateSpec]

    def execute(self) -> Batch:
        batch = self.child.execute()
        n = batch_length(batch)

        agg_values: list[np.ndarray] = []
        for spec in self.aggregates:
            if spec.argument is None:
                agg_values.append(np.ones(n))
            else:
                agg_values.append(np.asarray(spec.argument.eval(batch)))

        if not self.group_by:
            out: Batch = {}
            for spec, values in zip(self.aggregates, agg_values):
                out[spec.name.lower()] = np.asarray([_reduce(spec.func.lower(), values)])
            return out

        key_arrays = [np.asarray(expr.eval(batch)) for _, expr in self.group_by]
        if n == 0:
            out = {name.lower(): np.empty(0) for name, _ in self.group_by}
            for spec in self.aggregates:
                out[spec.name.lower()] = np.empty(0)
            return out

        # Group via sorted composite keys: stable and fully vectorized
        # for the single-key case that dominates the workload.
        if len(key_arrays) == 1:
            keys = key_arrays[0]
            order = np.argsort(keys, kind="stable")
            sorted_keys = keys[order]
            boundaries = np.flatnonzero(
                np.concatenate([[True], sorted_keys[1:] != sorted_keys[:-1]])
            )
            group_of_sorted = np.cumsum(
                np.concatenate([[0], (sorted_keys[1:] != sorted_keys[:-1]).astype(int)])
            )
            uniques = [sorted_keys[boundaries]]
            group_ids = np.empty(n, dtype=np.int64)
            group_ids[order] = group_of_sorted
            n_groups = boundaries.size
        else:
            composite = np.empty(n, dtype=object)
            rows = list(zip(*[k.tolist() for k in key_arrays]))
            for row, values in enumerate(rows):
                composite[row] = values
            unique_vals, group_ids = np.unique(composite, return_inverse=True)
            n_groups = unique_vals.size
            uniques = [
                np.asarray([v[i] for v in unique_vals.tolist()])
                for i in range(len(key_arrays))
            ]

        out = {}
        for (name, _), values in zip(self.group_by, uniques):
            out[name.lower()] = values
        for spec, values in zip(self.aggregates, agg_values):
            func = spec.func.lower()
            result = np.empty(n_groups, dtype=np.float64)
            order = np.argsort(group_ids, kind="stable")
            sorted_vals = values[order]
            sorted_groups = group_ids[order]
            starts = np.searchsorted(sorted_groups, np.arange(n_groups), side="left")
            stops = np.searchsorted(sorted_groups, np.arange(n_groups), side="right")
            for g in range(n_groups):
                result[g] = _reduce(func, sorted_vals[starts[g]:stops[g]])
            if func in ("count", "count_distinct"):
                out[spec.name.lower()] = result.astype(np.int64)
            else:
                out[spec.name.lower()] = result
        return out

    def _describe(self) -> str:
        keys = ", ".join(name for name, _ in self.group_by) or "<scalar>"
        aggs = ", ".join(f"{s.func}->{s.name}" for s in self.aggregates)
        return f"Aggregate(group by {keys}; {aggs})"

    def _children(self) -> tuple[PlanNode, ...]:
        return (self.child,)
