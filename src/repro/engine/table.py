"""Column-store tables with paged-storage accounting.

A :class:`Table` owns one numpy array per column plus a
:class:`~repro.engine.pages.PagedFile` describing how those rows would
lay out on 8 KiB pages.  Reads that go through :meth:`scan` /
:meth:`read_rows` touch the buffer pool and therefore show up in the
I/O statistics; internal array access (index construction, planners)
uses :meth:`column` and is free, mirroring how a real engine's memory
structures do not count as page I/O.
"""

from __future__ import annotations

import numpy as np

from repro.engine.pages import BufferPool, PagedFile, PageId
from repro.engine.schema import TableSchema
from repro.engine.types import ColumnType
from repro.errors import ColumnNotFoundError, SchemaError


class Table:
    """One relational table: schema + column arrays + page accounting."""

    def __init__(self, schema: TableSchema, pool: BufferPool):
        self.schema = schema
        self._columns: dict[str, np.ndarray] = {
            c.name.lower(): np.empty(0, dtype=c.type.numpy_dtype)
            for c in schema.columns
        }
        self.file = PagedFile(pool, schema.row_byte_width)
        #: Optimizer statistics (a TableStats), set by ANALYZE; stay as
        #: of their collection time until the next ANALYZE, like a real
        #: engine's.
        self.stats = None
        #: Monotonic mutation counter: every insert/update/delete/
        #: truncate/reorder bumps it.  The result cache and materialized
        #: views key their freshness on this, so DML and loads
        #: invalidate structurally.
        self.version = 0
        #: Monotonic statistics generation: bumped each time ANALYZE
        #: rebuilds ``stats``.  The plan memo snapshots it so a plan
        #: chosen under old statistics is replanned after re-ANALYZE
        #: even when the data itself (``version``) has not moved.
        self.stats_version = 0
        #: Active page-compression plan (a
        #: :class:`~repro.engine.pages.CompressionPlan`), set by ANALYZE
        #: when ``EngineConfig.page_compression`` is on and at least one
        #: column beats raw storage; None means raw pages.
        self.compression = None
        self._pk_index: dict | None = None
        if schema.primary_key is not None:
            self._pk_index = {}

    # ------------------------------------------------------------------
    # metadata
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return self.schema.name

    @property
    def row_count(self) -> int:
        first = next(iter(self._columns.values()))
        return int(first.size)

    @property
    def page_count(self) -> int:
        return self.file.page_count(self.row_count)

    def __len__(self) -> int:
        return self.row_count

    def apply_compression(self, plan) -> None:
        """Adopt (or drop, with ``None``) a page-compression plan.

        Rows pack denser on compressed pages, so the paged file is
        repacked at the plan's effective row width; subsequent scans
        touch proportionally fewer pages, which is where the
        logical-read drop in ``engine.pool.*`` comes from.
        """
        self.compression = plan
        if plan is None:
            self.file.set_row_bytes(float(self.schema.row_byte_width))
        else:
            self.file.set_row_bytes(plan.row_bytes)

    # ------------------------------------------------------------------
    # raw column access (no I/O accounting; engine-internal)
    # ------------------------------------------------------------------
    def column(self, name: str) -> np.ndarray:
        try:
            return self._columns[name.lower()]
        except KeyError:
            raise ColumnNotFoundError(
                f"table '{self.name}' has no column '{name}'"
            ) from None

    def columns_dict(self) -> dict[str, np.ndarray]:
        return dict(self._columns)

    # ------------------------------------------------------------------
    # accounted access paths
    # ------------------------------------------------------------------
    def scan(self) -> dict[str, np.ndarray]:
        """Full sequential scan: touches every page, returns all columns."""
        self.file.read_range(0, self.row_count)
        return dict(self._columns)

    def read_rows(self, row_start: int, row_stop: int) -> dict[str, np.ndarray]:
        """Read a contiguous row range (clustered-index range scan)."""
        row_start = max(0, row_start)
        row_stop = min(self.row_count, row_stop)
        self.file.read_range(row_start, row_stop)
        return {n: a[row_start:row_stop] for n, a in self._columns.items()}

    def touch_rows(self, rows: np.ndarray) -> None:
        """Account page reads for the given rows without fetching them."""
        rows = np.asarray(rows, dtype=np.int64)
        if rows.size:
            for page_no in np.unique(rows // self.file.rows_per_page):
                self.file.read_page(int(page_no))

    def read_row_ids(self, rows: np.ndarray) -> dict[str, np.ndarray]:
        """Random row fetches (bookmark lookups): touch each distinct page."""
        rows = np.asarray(rows, dtype=np.int64)
        if rows.size:
            pages = np.unique(rows // self.file.rows_per_page)
            for page_no in pages:
                self.file.read_page(int(page_no))
        return {n: a[rows] for n, a in self._columns.items()}

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def insert(self, columns: dict[str, np.ndarray]) -> int:
        """Append rows; returns the number inserted.

        All schema columns must be present.  The primary key (if any) is
        checked for uniqueness against existing and incoming rows.
        """
        lowered = {k.lower(): v for k, v in columns.items()}
        missing = [
            c.name for c in self.schema.columns if c.name.lower() not in lowered
        ]
        if missing:
            raise SchemaError(f"insert into '{self.name}' missing columns {missing}")

        coerced: dict[str, np.ndarray] = {}
        n_new: int | None = None
        for col in self.schema.columns:
            arr = col.type.coerce(np.atleast_1d(lowered[col.name.lower()]))
            if n_new is None:
                n_new = arr.size
            elif arr.size != n_new:
                raise SchemaError(
                    f"insert into '{self.name}': ragged column lengths"
                )
            coerced[col.name.lower()] = arr
        assert n_new is not None

        if self._pk_index is not None and n_new:
            pk = self.schema.primary_key.lower()  # type: ignore[union-attr]
            new_keys = coerced[pk]
            seen = self._pk_index
            for key in new_keys.tolist():
                if key in seen:
                    raise SchemaError(
                        f"duplicate primary key {key!r} in table '{self.name}'"
                    )
            base = self.row_count
            for offset, key in enumerate(new_keys.tolist()):
                seen[key] = base + offset

        start = self.row_count
        for name, arr in coerced.items():
            self._columns[name] = np.concatenate([self._columns[name], arr])
        self.file.write_range(start, start + n_new)
        if n_new:
            self.version += 1
        return n_new

    def truncate(self) -> None:
        """Remove all rows (the paper's ``TRUNCATE TABLE`` steps)."""
        for col in self.schema.columns:
            self._columns[col.name.lower()] = np.empty(
                0, dtype=col.type.numpy_dtype
            )
        if self._pk_index is not None:
            self._pk_index = {}
        self.file.invalidate()
        self.version += 1

    def delete_rows(self, rows: np.ndarray) -> int:
        """Delete rows by position; rewrites the table (counted as writes)."""
        rows = np.unique(np.asarray(rows, dtype=np.int64))
        if rows.size == 0:
            return 0
        keep = np.ones(self.row_count, dtype=bool)
        keep[rows] = False
        for name, arr in self._columns.items():
            self._columns[name] = arr[keep]
        self._rebuild_pk()
        self.file.write_range(0, self.row_count)
        self.version += 1
        return int(rows.size)

    def update_rows(self, rows: np.ndarray, values: dict[str, np.ndarray]) -> int:
        """Overwrite columns at the given row positions (UPDATE path)."""
        rows = np.asarray(rows, dtype=np.int64)
        if rows.size == 0:
            return 0
        for name, new_values in values.items():
            column = self.schema.column(name)
            arr = self._columns[column.name.lower()]
            arr[rows] = column.type.coerce(np.asarray(new_values))
        pk = self.schema.primary_key
        if pk is not None and pk.lower() in {n.lower() for n in values}:
            self._rebuild_pk()
        for page_no in np.unique(rows // self.file.rows_per_page):
            self.file.pool.write(PageId(self.file.file_id, int(page_no)))
        self.version += 1
        return int(rows.size)

    def reorder(self, order: np.ndarray) -> None:
        """Physically re-sort rows (clustered-index build); counted as a
        full rewrite, which is what ``spZone``'s cost is made of."""
        order = np.asarray(order, dtype=np.int64)
        if order.size != self.row_count:
            raise SchemaError("reorder permutation length mismatch")
        for name, arr in self._columns.items():
            self._columns[name] = arr[order]
        self._rebuild_pk()
        self.file.read_range(0, self.row_count)
        self.file.write_range(0, self.row_count)
        # physical order changed: uncorrelated cached results may rely
        # on scan order, so a reorder is a version event too
        self.version += 1

    def _rebuild_pk(self) -> None:
        if self._pk_index is None:
            return
        pk = self.schema.primary_key.lower()  # type: ignore[union-attr]
        self._pk_index = {
            key: row for row, key in enumerate(self._columns[pk].tolist())
        }

    # ------------------------------------------------------------------
    def pk_lookup(self, key) -> int | None:
        """Primary-key point lookup; touches the row's page on a hit."""
        if self._pk_index is None:
            raise SchemaError(f"table '{self.name}' has no primary key")
        row = self._pk_index.get(key)
        if row is not None:
            self.file.read_page(self.file.page_of_row(row))
        return row
