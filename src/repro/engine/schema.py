"""Table schemas: named, typed column lists with an optional primary key."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine.types import ColumnType
from repro.errors import SchemaError

_IDENT_OK = set("abcdefghijklmnopqrstuvwxyz0123456789_")


def _check_identifier(name: str, kind: str) -> None:
    if not name:
        raise SchemaError(f"{kind} name must be non-empty")
    lowered = name.lower()
    if not set(lowered) <= _IDENT_OK or lowered[0].isdigit():
        raise SchemaError(f"invalid {kind} name '{name}'")


@dataclass(frozen=True)
class Column:
    """One column: a name and a storage type."""

    name: str
    type: ColumnType

    def __post_init__(self) -> None:
        _check_identifier(self.name, "column")


@dataclass(frozen=True)
class TableSchema:
    """Ordered columns of a table plus an optional primary-key column.

    The engine keeps a hash index on the primary key (the paper's tables
    all declare one), which also enforces uniqueness on insert.
    """

    name: str
    columns: tuple[Column, ...]
    primary_key: str | None = None

    def __post_init__(self) -> None:
        _check_identifier(self.name, "table")
        if not self.columns:
            raise SchemaError(f"table '{self.name}' must have at least one column")
        names = [c.name.lower() for c in self.columns]
        if len(set(names)) != len(names):
            raise SchemaError(f"table '{self.name}' has duplicate column names")
        if self.primary_key is not None and self.primary_key.lower() not in names:
            raise SchemaError(
                f"primary key '{self.primary_key}' is not a column of "
                f"'{self.name}'"
            )

    @property
    def column_names(self) -> tuple[str, ...]:
        return tuple(c.name for c in self.columns)

    def column(self, name: str) -> Column:
        lowered = name.lower()
        for c in self.columns:
            if c.name.lower() == lowered:
                return c
        raise SchemaError(f"table '{self.name}' has no column '{name}'")

    def has_column(self, name: str) -> bool:
        lowered = name.lower()
        return any(c.name.lower() == lowered for c in self.columns)

    @property
    def row_byte_width(self) -> int:
        """Bytes per row, used to size pages (cf. the paper's 44-byte rows)."""
        return sum(c.type.byte_width for c in self.columns)


def schema(name: str, spec: dict[str, ColumnType], primary_key: str | None = None) -> TableSchema:
    """Convenience constructor: ``schema("galaxy", {"objid": INT64, ...})``."""
    return TableSchema(
        name=name,
        columns=tuple(Column(n, t) for n, t in spec.items()),
        primary_key=primary_key,
    )
