"""Cardinality estimation: predicate selectivity and the est_rows pass.

Estimates follow the classic System-R recipe, upgraded with the
statistics ANALYZE collects:

* equality against a literal     -> 1 / NDV (0 outside [min, max]);
* ranges / BETWEEN               -> equi-depth histogram interpolation,
                                    falling back to a linear min–max
                                    ramp, falling back to 1/3;
* conjunctions                   -> independence (product);
* disjunctions                   -> inclusion–exclusion;
* equi-joins                     -> containment: 1 / max(NDV_l, NDV_r),
                                    with the primary key counting as
                                    fully distinct even without stats.

:func:`annotate_plan` walks a finished physical plan bottom-up and
stamps ``est_rows`` onto every node — the number EXPLAIN ANALYZE later
compares against actuals to compute per-operator q-error.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.engine.aggregate import Aggregate
from repro.engine.expressions import (
    Between,
    BinaryOp,
    ColumnRef,
    Expr,
    FuncCall,
    InList,
    Literal,
    UnaryOp,
    batch_length,
)
from repro.engine.join import BandJoin, CrossJoin, HashJoin, NestedLoopJoin
from repro.engine.operators import (
    Distinct,
    Filter,
    IndexRangeScan,
    Limit,
    Materialized,
    PlanNode,
    Project,
    ProjectPassthrough,
    SeqScan,
    Sort,
    SubqueryScan,
    TableFunctionScan,
)
from repro.engine.optimizer.statistics import ColumnStats, TableStats

#: System-R style fallbacks when statistics are missing.
DEFAULT_EQ_SELECTIVITY = 0.1
DEFAULT_RANGE_SELECTIVITY = 1.0 / 3.0
DEFAULT_OTHER_SELECTIVITY = 0.25
DEFAULT_TVF_ROWS = 100.0
DEFAULT_JOIN_NDV = 10.0


@dataclass
class RelationProfile:
    """What the estimator knows about one bound relation."""

    alias: str
    table_rows: float
    stats: TableStats | None = None
    columns: set[str] = field(default_factory=set)
    primary_key: str | None = None
    pages: float = 0.0
    #: Lowercased base-table name, when the relation is one (None for
    #: derived relations).  Learned selectivity overrides key on
    #: ``table.column`` so every alias of the same join shares them.
    table: str | None = None


def _literal_value(expr: Expr):
    if isinstance(expr, Literal):
        value = expr.value
        return value if isinstance(value, (int, float, bool)) else None
    if (
        isinstance(expr, UnaryOp)
        and expr.op == "-"
        and isinstance(expr.operand, Literal)
        and isinstance(expr.operand.value, (int, float))
    ):
        return -expr.operand.value
    return None


def _base_and_offset(expr: Expr) -> tuple[Expr, float]:
    """Decompose ``base + c`` / ``base - c`` structurally; plain
    expressions are their own base with offset 0."""
    if isinstance(expr, BinaryOp):
        if expr.op == "+":
            lit = _literal_value(expr.right)
            if lit is not None:
                return expr.left, float(lit)
            lit = _literal_value(expr.left)
            if lit is not None:
                return expr.right, float(lit)
        elif expr.op == "-":
            lit = _literal_value(expr.right)
            if lit is not None:
                return expr.left, -float(lit)
    return expr, 0.0


def _band_width(low: Expr | None, high: Expr | None) -> float | None:
    """Width of a ``[base - c1, base + c2]`` band, if both bounds offset
    the *same* base expression (frozen dataclasses give structural ==)."""
    if low is None or high is None:
        return None
    lo_base, lo_off = _base_and_offset(low)
    hi_base, hi_off = _base_and_offset(high)
    if lo_base == hi_base:
        return hi_off - lo_off
    return None


class CardinalityEstimator:
    """Estimates selectivities and cardinalities from relation profiles.

    ``overrides`` (duck-typed: ``equi_ratio(col_a, col_b)`` and
    ``band_ratio(col, shape)`` returning a float or None) carries the
    feedback loop's learned actual/estimate ratios; when present they
    multiply the corresponding base join selectivity.
    """

    def __init__(
        self,
        profiles: list[RelationProfile] | None = None,
        overrides=None,
    ):
        self.profiles = list(profiles or [])
        self.overrides = overrides

    # ------------------------------------------------------------------
    # name resolution
    # ------------------------------------------------------------------
    def _profile_of(self, ref: ColumnRef) -> RelationProfile | None:
        if ref.qualifier is not None:
            lowered = ref.qualifier.lower()
            for profile in self.profiles:
                if profile.alias == lowered:
                    return profile
            return None
        matches = [
            p for p in self.profiles if ref.name.lower() in p.columns
        ]
        if len(matches) == 1:
            return matches[0]
        return None

    def column_key(self, ref: Expr) -> str | None:
        """``"table.column"`` for a base-table column ref, else None.

        The stable identity learned overrides key on: alias-independent,
        so ``g.zoneid = z.zoneid`` and ``gal.zoneid = zn.zoneid`` hit
        the same correction.
        """
        if not isinstance(ref, ColumnRef):
            return None
        profile = self._profile_of(ref)
        if profile is None or profile.table is None:
            return None
        return f"{profile.table}.{ref.name.lower()}"

    def column_stats(self, ref: ColumnRef) -> ColumnStats | None:
        profile = self._profile_of(ref)
        if profile is None or profile.stats is None:
            return None
        return profile.stats.column(ref.name)

    def ndv(self, ref: ColumnRef) -> float | None:
        """Distinct-count estimate for a column, stats or schema based."""
        stats = self.column_stats(ref)
        if stats is not None and stats.ndv > 0:
            return float(stats.ndv)
        profile = self._profile_of(ref)
        if profile is None:
            return None
        if (
            profile.primary_key is not None
            and profile.primary_key.lower() == ref.name.lower()
        ):
            return max(profile.table_rows, 1.0)
        if profile.table_rows > 0:
            # unknown column: assume distinct values grow as sqrt(rows)
            return max(math.sqrt(profile.table_rows), 1.0)
        return None

    # ------------------------------------------------------------------
    # predicate selectivity
    # ------------------------------------------------------------------
    def selectivity(self, expr: Expr | None) -> float:
        if expr is None:
            return 1.0
        sel = self._selectivity(expr)
        return float(min(max(sel, 0.0), 1.0))

    def _selectivity(self, expr: Expr) -> float:
        if isinstance(expr, BinaryOp):
            op = expr.op.upper() if expr.op.isalpha() else expr.op
            if op == "AND":
                return self._selectivity(expr.left) * self._selectivity(expr.right)
            if op == "OR":
                left = self._selectivity(expr.left)
                right = self._selectivity(expr.right)
                return left + right - left * right
            if op in ("=", "!=", "<>", "<", "<=", ">", ">="):
                return self._comparison(op, expr.left, expr.right)
            return DEFAULT_OTHER_SELECTIVITY
        if isinstance(expr, UnaryOp) and expr.op.upper() == "NOT":
            return 1.0 - self._selectivity(expr.operand)
        if isinstance(expr, Between):
            return self._range(expr.value,
                               _literal_value(expr.low),
                               _literal_value(expr.high))
        if isinstance(expr, InList):
            eq = DEFAULT_EQ_SELECTIVITY
            if isinstance(expr.value, ColumnRef):
                ndv = self.ndv(expr.value)
                if ndv:
                    eq = 1.0 / ndv
            return min(1.0, eq * len(expr.options))
        if isinstance(expr, FuncCall) and expr.name.lower() == "isnull":
            if expr.args and isinstance(expr.args[0], ColumnRef):
                stats = self.column_stats(expr.args[0])
                if stats is not None:
                    return stats.null_fraction
            return DEFAULT_EQ_SELECTIVITY
        if isinstance(expr, Literal):
            if expr.value is True:
                return 1.0
            if expr.value is False:
                return 0.0
        return DEFAULT_OTHER_SELECTIVITY

    def _comparison(self, op: str, left: Expr, right: Expr) -> float:
        lref = isinstance(left, ColumnRef)
        rref = isinstance(right, ColumnRef)
        if lref and rref:
            if op == "=":
                return self.equi_selectivity(left, right)
            if op in ("!=", "<>"):
                return 1.0 - self.equi_selectivity(left, right)
            return DEFAULT_RANGE_SELECTIVITY
        # normalize to column <op> literal
        if rref and not lref:
            flipped = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}.get(op, op)
            return self._comparison(flipped, right, left)
        if not lref:
            return (DEFAULT_EQ_SELECTIVITY if op in ("=", "!=", "<>")
                    else DEFAULT_RANGE_SELECTIVITY)
        value = _literal_value(right)
        if value is None:
            return (DEFAULT_EQ_SELECTIVITY if op in ("=", "!=", "<>")
                    else DEFAULT_RANGE_SELECTIVITY)
        if op == "=":
            return self._equality(left, value)
        if op in ("!=", "<>"):
            return 1.0 - self._equality(left, value)
        if op in ("<", "<="):
            return self._range(left, None, value)
        return self._range(left, value, None)

    def _equality(self, ref: ColumnRef, value) -> float:
        stats = self.column_stats(ref)
        if stats is not None:
            if stats.ndv <= 0:
                return 0.0
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                if (
                    isinstance(stats.min_value, (int, float))
                    and isinstance(stats.max_value, (int, float))
                    and (value < stats.min_value or value > stats.max_value)
                ):
                    return 0.0
            return 1.0 / stats.ndv
        ndv = self.ndv(ref)
        if ndv:
            return 1.0 / ndv
        return DEFAULT_EQ_SELECTIVITY

    def _range(self, value_expr: Expr, lo, hi) -> float:
        if not isinstance(value_expr, ColumnRef) or (lo is None and hi is None):
            return DEFAULT_RANGE_SELECTIVITY
        stats = self.column_stats(value_expr)
        if stats is None:
            return DEFAULT_RANGE_SELECTIVITY
        if stats.histogram is not None:
            return stats.histogram.fraction_between(lo, hi)
        if (
            isinstance(stats.min_value, (int, float))
            and isinstance(stats.max_value, (int, float))
            and stats.max_value > stats.min_value
        ):
            low = stats.min_value if lo is None else max(lo, stats.min_value)
            high = stats.max_value if hi is None else min(hi, stats.max_value)
            width = stats.max_value - stats.min_value
            return max(0.0, (high - low) / width)
        # constant column: either everything or nothing matches
        if stats.min_value is not None and isinstance(stats.min_value, (int, float)):
            inside = ((lo is None or lo <= stats.min_value)
                      and (hi is None or stats.min_value <= hi))
            return 1.0 if inside else 0.0
        return DEFAULT_RANGE_SELECTIVITY

    def band_selectivity(
        self, key: Expr, low: Expr | None, high: Expr | None
    ) -> float:
        """Fraction of one side's rows a band ``low <= key <= high``
        admits per probe.  Literal bounds go through the histogram
        machinery; a structural ``base ± c`` band is priced as its width
        over the key column's value range; otherwise 1/3.  A learned
        override for this key + bound shape scales the base estimate."""
        lo = _literal_value(low) if low is not None else None
        hi = _literal_value(high) if high is not None else None
        if (low is None or lo is not None) and (high is None or hi is not None):
            return self._apply_band_override(key, low, high,
                                             self._range(key, lo, hi))
        width = _band_width(low, high)
        base = DEFAULT_RANGE_SELECTIVITY
        if width is not None and isinstance(key, ColumnRef):
            stats = self.column_stats(key)
            if (
                stats is not None
                and isinstance(stats.min_value, (int, float))
                and isinstance(stats.max_value, (int, float))
                and stats.max_value > stats.min_value
            ):
                span = stats.max_value - stats.min_value
                base = float(min(max(width, 0.0) / span, 1.0))
        return self._apply_band_override(key, low, high, base)

    def _apply_band_override(
        self, key: Expr, low: Expr | None, high: Expr | None, base: float
    ) -> float:
        if self.overrides is None:
            return base
        shape = (repr(low) if low is not None else "",
                 repr(high) if high is not None else "")
        ratio = self.overrides.band_ratio(self.column_key(key), shape)
        if ratio is None:
            return base
        return float(min(max(base * ratio, 1e-12), 1.0))

    # ------------------------------------------------------------------
    # joins
    # ------------------------------------------------------------------
    def equi_selectivity(self, left: Expr, right: Expr) -> float:
        """Containment assumption: |join| ~= |L||R| / max(NDV_l, NDV_r).

        A learned override for this column pair (either order) scales
        the containment estimate by the observed actual/estimate ratio.
        """
        ndvs = []
        for side in (left, right):
            if isinstance(side, ColumnRef):
                ndv = self.ndv(side)
                if ndv:
                    ndvs.append(ndv)
        if not ndvs:
            base = 1.0 / DEFAULT_JOIN_NDV
        else:
            base = 1.0 / max(max(ndvs), 1.0)
        if self.overrides is not None:
            ratio = self.overrides.equi_ratio(
                self.column_key(left), self.column_key(right)
            )
            if ratio is not None:
                base = float(min(max(base * ratio, 1e-12), 1.0))
        return base


# ----------------------------------------------------------------------
# the est_rows annotation pass
# ----------------------------------------------------------------------
def profile_for_table(table, alias: str) -> RelationProfile:
    return RelationProfile(
        alias=alias.lower(),
        table_rows=float(table.row_count),
        stats=getattr(table, "stats", None),
        columns={c.lower() for c in table.schema.column_names},
        primary_key=table.schema.primary_key,
        pages=float(table.page_count),
        table=table.name.lower(),
    )


def _index_range_rows(node: IndexRangeScan,
                      estimator: CardinalityEstimator) -> float:
    table = node.index.table
    ref = ColumnRef(node.index.leading_key, node.alias)
    lo = node.lo if isinstance(node.lo, (int, float)) else None
    hi = node.hi if isinstance(node.hi, (int, float)) else None
    fraction = estimator._range(ref, lo, hi)
    return float(table.row_count) * fraction


def annotate_plan(plan: PlanNode, overrides=None) -> float:
    """Stamp ``est_rows`` on every node of a physical plan; returns the
    root estimate.  Works on any plan — cost-based or syntactic — so
    q-error reporting is available under both optimizers.  ``overrides``
    carries the feedback loop's learned selectivity ratios (None when
    feedback is off)."""
    est, _ = _annotate(plan, overrides)
    return est


def _annotate(
    node: PlanNode, overrides=None
) -> tuple[float, list[RelationProfile]]:
    est, profiles = _estimate(node, overrides)
    node.est_rows = float(max(est, 0.0))
    return node.est_rows, profiles


def _estimate(
    node: PlanNode, overrides=None
) -> tuple[float, list[RelationProfile]]:
    if isinstance(node, SeqScan):
        profile = profile_for_table(node.table, node.alias)
        return profile.table_rows, [profile]
    if isinstance(node, IndexRangeScan):
        profile = profile_for_table(node.index.table, node.alias)
        estimator = CardinalityEstimator([profile], overrides)
        return _index_range_rows(node, estimator), [profile]
    if isinstance(node, SubqueryScan):
        child_est, _ = _annotate(node.child, overrides)
        profile = RelationProfile(alias=node.alias.lower(),
                                  table_rows=child_est)
        return child_est, [profile]
    if isinstance(node, TableFunctionScan):
        profile = RelationProfile(alias=node.alias.lower(),
                                  table_rows=DEFAULT_TVF_ROWS)
        return DEFAULT_TVF_ROWS, [profile]
    if isinstance(node, Materialized):
        return float(batch_length(node.batch)), []
    if isinstance(node, Filter):
        child_est, profiles = _annotate(node.child, overrides)
        sel = CardinalityEstimator(profiles, overrides).selectivity(
            node.predicate
        )
        return child_est * sel, profiles
    if isinstance(node, HashJoin):
        left_est, left_profiles = _annotate(node.left, overrides)
        right_est, right_profiles = _annotate(node.right, overrides)
        profiles = left_profiles + right_profiles
        estimator = CardinalityEstimator(profiles, overrides)
        sel = estimator.equi_selectivity(node.left_key, node.right_key)
        sel *= estimator.selectivity(node.residual)
        est = left_est * right_est * sel
        if node.outer:
            est = max(est, left_est)
        return est, profiles
    if isinstance(node, BandJoin):
        left_est, left_profiles = _annotate(node.left, overrides)
        right_est, right_profiles = _annotate(node.right, overrides)
        profiles = left_profiles + right_profiles
        estimator = CardinalityEstimator(profiles, overrides)
        sel = estimator.band_selectivity(node.right_key, node.low, node.high)
        sel *= estimator.selectivity(node.residual)
        return left_est * right_est * sel, profiles
    if isinstance(node, (NestedLoopJoin, CrossJoin)):
        left_est, left_profiles = _annotate(node.left, overrides)
        right_est, right_profiles = _annotate(node.right, overrides)
        profiles = left_profiles + right_profiles
        predicate = getattr(node, "predicate", None)
        sel = CardinalityEstimator(profiles, overrides).selectivity(predicate)
        return left_est * right_est * sel, profiles
    if isinstance(node, Aggregate):
        child_est, profiles = _annotate(node.child, overrides)
        if not node.group_by:
            return 1.0, profiles
        estimator = CardinalityEstimator(profiles, overrides)
        groups = 1.0
        for _, key in node.group_by:
            if isinstance(key, ColumnRef):
                ndv = estimator.ndv(key)
                groups *= ndv if ndv else DEFAULT_JOIN_NDV
            else:
                groups *= DEFAULT_JOIN_NDV
        return min(child_est, groups), profiles
    if isinstance(node, Limit):
        child_est, profiles = _annotate(node.child, overrides)
        return min(child_est, float(node.limit)), profiles
    if isinstance(node, (Project, ProjectPassthrough, Sort, Distinct)):
        child_est, profiles = _annotate(node.child, overrides)
        return child_est, profiles
    # unknown node type: annotate children generically, passthrough est
    children = node._children()
    est = 1.0
    profiles: list[RelationProfile] = []
    for child in children:
        child_est, child_profiles = _annotate(child, overrides)
        est = child_est
        profiles.extend(child_profiles)
    return est, profiles
