"""Table statistics: the raw material of cardinality estimation.

``ANALYZE <table>`` builds one :class:`TableStats` per table — a row
count plus, per column, the number of distinct values (NDV), min/max,
the null fraction and (for numeric columns) an equi-depth histogram.
Statistics are *estimates by design*: they describe the table at
ANALYZE time and survive later DML untouched, exactly like a real
engine's, so plans stay stable until the DBA re-analyzes.

Everything here is JSON-serializable so :mod:`repro.engine.storage`
can persist stats next to the table's ``.npz``/``.schema`` files.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Default number of equi-depth histogram buckets.
DEFAULT_BUCKETS = 32


@dataclass(frozen=True)
class Histogram:
    """Equi-depth histogram: piecewise-linear CDF over bucket bounds.

    ``bounds`` holds ``B + 1`` ascending quantile values; ``depths``
    the row count landing in each of the ``B`` buckets.  Range
    selectivity interpolates linearly inside a bucket — the classic
    uniformity-within-bucket assumption.
    """

    bounds: tuple[float, ...]
    depths: tuple[int, ...]

    @property
    def total(self) -> int:
        return int(sum(self.depths))

    def _cdf(self, value: float) -> float:
        """Rows with ``column <= value`` (interpolated)."""
        bounds = np.asarray(self.bounds, dtype=np.float64)
        cumulative = np.concatenate([[0.0], np.cumsum(self.depths)])
        if value <= bounds[0]:
            return 0.0
        if value >= bounds[-1]:
            return float(cumulative[-1])
        return float(np.interp(value, bounds, cumulative))

    def fraction_between(self, lo: float | None, hi: float | None) -> float:
        """Fraction of (non-null) rows with ``lo <= column <= hi``.

        ``None`` on either end means unbounded.  BETWEEN is inclusive,
        and the interpolation cannot see individual values, so the
        result is the CDF difference clamped to [0, 1].
        """
        total = self.total
        if total == 0:
            return 0.0
        low = 0.0 if lo is None else self._cdf(float(lo))
        high = float(total) if hi is None else self._cdf(float(hi))
        return float(min(max((high - low) / total, 0.0), 1.0))


@dataclass(frozen=True)
class ColumnStats:
    """One column's ANALYZE output."""

    name: str
    n_rows: int
    n_null: int
    ndv: int
    min_value: object | None
    max_value: object | None
    histogram: Histogram | None = None
    #: Number of equal-value runs in *physical* row order (NaNs compare
    #: equal to each other here, matching the RLE codec).  A column
    #: clustered by the table's sort order — the zone table's
    #: ``(zoneid, ra)`` — has few runs, which is what makes run-length
    #: page encoding pay off.  ``None`` on stats loaded from files
    #: written before this field existed.
    n_runs: int | None = None

    @property
    def null_fraction(self) -> float:
        if self.n_rows == 0:
            return 0.0
        return self.n_null / self.n_rows


@dataclass(frozen=True)
class TableStats:
    """Statistics for one table, as of its last ANALYZE."""

    table: str
    row_count: int
    columns: dict[str, ColumnStats]

    def column(self, name: str) -> ColumnStats | None:
        return self.columns.get(name.lower())


# ----------------------------------------------------------------------
# building
# ----------------------------------------------------------------------
def count_runs(values: np.ndarray) -> int:
    """Equal-value runs in physical order (NaN == NaN for this purpose)."""
    values = np.asarray(values)
    if values.size == 0:
        return 0
    if values.dtype.kind == "f":
        a, b = values[1:], values[:-1]
        same = (a == b) | (np.isnan(a) & np.isnan(b))
    elif values.dtype.kind == "O":
        items = values.tolist()
        same = np.fromiter(
            (x == y for x, y in zip(items[1:], items[:-1])),
            dtype=bool,
            count=max(0, len(items) - 1),
        )
    else:
        same = np.asarray(values[1:] == values[:-1], dtype=bool)
    return 1 + int((~same).sum())


def _column_stats(
    name: str, values: np.ndarray, buckets: int
) -> ColumnStats:
    values = np.asarray(values)
    n_rows = int(values.size)
    n_runs = count_runs(values)
    numeric = values.dtype.kind in ("i", "u", "f", "b")
    if numeric:
        as_float = values.astype(np.float64, copy=False)
        null_mask = np.isnan(as_float)
        present = values[~null_mask]
    else:
        null_mask = np.asarray([v is None for v in values.tolist()])
        present = values[~null_mask]
    n_null = int(null_mask.sum())

    if present.size == 0:
        return ColumnStats(name, n_rows, n_null, 0, None, None, None, n_runs)

    distinct = np.unique(present)
    ndv = int(distinct.size)
    if numeric:
        lo, hi = float(present.min()), float(present.max())
    else:
        ordered = sorted(str(v) for v in present.tolist())
        lo, hi = ordered[0], ordered[-1]

    histogram = None
    if numeric and ndv > 1:
        n_buckets = int(min(buckets, ndv))
        quantiles = np.linspace(0.0, 1.0, n_buckets + 1)
        bounds = np.quantile(present.astype(np.float64), quantiles)
        # collapse duplicate bounds produced by heavy values
        bounds = np.maximum.accumulate(bounds)
        ordered_values = np.sort(present.astype(np.float64))
        positions = np.searchsorted(ordered_values, bounds, side="right")
        positions[0] = 0
        positions[-1] = ordered_values.size
        depths = np.diff(positions)
        histogram = Histogram(
            bounds=tuple(float(b) for b in bounds),
            depths=tuple(int(d) for d in depths),
        )
    return ColumnStats(name, n_rows, n_null, ndv, lo, hi, histogram, n_runs)


def build_table_stats(table, buckets: int = DEFAULT_BUCKETS) -> TableStats:
    """ANALYZE one engine table (reads arrays directly, no page I/O —
    statistics gathering samples memory structures, like DBCC does)."""
    columns: dict[str, ColumnStats] = {}
    for column in table.schema.columns:
        key = column.name.lower()
        columns[key] = _column_stats(key, table.column(key), buckets)
    return TableStats(
        table=table.name.lower(),
        row_count=table.row_count,
        columns=columns,
    )


# ----------------------------------------------------------------------
# (de)serialization — storage.py persists these next to the table
# ----------------------------------------------------------------------
def stats_to_json(stats: TableStats) -> dict:
    return {
        "table": stats.table,
        "row_count": stats.row_count,
        "columns": {
            name: {
                "n_rows": c.n_rows,
                "n_null": c.n_null,
                "ndv": c.ndv,
                "min": c.min_value,
                "max": c.max_value,
                "n_runs": c.n_runs,
                "histogram": (
                    None if c.histogram is None else {
                        "bounds": list(c.histogram.bounds),
                        "depths": list(c.histogram.depths),
                    }
                ),
            }
            for name, c in stats.columns.items()
        },
    }


def stats_from_json(payload: dict) -> TableStats:
    columns: dict[str, ColumnStats] = {}
    for name, c in payload["columns"].items():
        histogram = None
        if c.get("histogram") is not None:
            histogram = Histogram(
                bounds=tuple(c["histogram"]["bounds"]),
                depths=tuple(c["histogram"]["depths"]),
            )
        columns[name] = ColumnStats(
            name=name,
            n_rows=c["n_rows"],
            n_null=c["n_null"],
            ndv=c["ndv"],
            min_value=c["min"],
            max_value=c["max"],
            histogram=histogram,
            n_runs=c.get("n_runs"),
        )
    return TableStats(
        table=payload["table"],
        row_count=payload["row_count"],
        columns=columns,
    )
