"""Cost-based query optimization for the engine.

The subsystem the paper's 40x win quietly presupposes: SQL Server beat
the TAM pipeline because its optimizer chose early filters, set-oriented
joins and index-aware access paths *from statistics*, not because the
queries were hand-ordered.  This package gives our engine the same
machinery:

* :mod:`~repro.engine.optimizer.statistics` — per-table row counts and
  per-column NDV / min / max / null-fraction / equi-depth histograms,
  collected by ``ANALYZE <table>`` and persisted with the table;
* :mod:`~repro.engine.optimizer.cardinality` — selectivity and
  cardinality estimation over predicate trees and equi-joins, plus the
  ``est_rows`` annotation pass every plan receives;
* :mod:`~repro.engine.optimizer.cost` — the operator cost model pricing
  TableScan vs IndexRangeScan vs hash/nested-loop joins;
* :mod:`~repro.engine.optimizer.joinorder` — join-order search
  (dynamic programming up to ~6 relations, greedy beyond);
* :mod:`~repro.engine.optimizer.quality` — q-error accounting, the
  estimated-vs-actual report EXPLAIN ANALYZE renders per operator.
"""

from repro.engine.optimizer.cardinality import (
    CardinalityEstimator,
    annotate_plan,
)
from repro.engine.optimizer.cost import CostModel
from repro.engine.optimizer.joinorder import JoinPred, JoinRel, order_relations
from repro.engine.optimizer.quality import (
    NodeQuality,
    PlanQualityReport,
    q_error,
)
from repro.engine.optimizer.statistics import (
    ColumnStats,
    Histogram,
    TableStats,
    build_table_stats,
)

__all__ = [
    "CardinalityEstimator",
    "ColumnStats",
    "CostModel",
    "Histogram",
    "JoinPred",
    "JoinRel",
    "NodeQuality",
    "PlanQualityReport",
    "TableStats",
    "annotate_plan",
    "build_table_stats",
    "order_relations",
    "q_error",
]
