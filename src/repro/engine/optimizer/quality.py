"""Plan-quality accounting: q-error, the optimizer's report card.

The q-error of an operator is ``max(est/actual, actual/est)`` with both
sides floored at one row — the standard symmetric measure of estimation
error (1.0 is perfect; 10 means an order of magnitude off in either
direction).  EXPLAIN ANALYZE renders it per operator, and
:class:`PlanQualityReport` aggregates the worst offenders so a golden
run can pin "no node is more than X× off" in CI.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

#: Sentinel ceiling for degenerate q-errors.  An infinite estimate (an
#: annotation-pass overflow) or a NaN one (0 * inf during estimation)
#: cannot be ranked, and a single inf/NaN poisons ``max()`` aggregation
#: for the whole report — so both clamp to this documented, finite,
#: comparable value: "maximally wrong".  Zero estimated or actual rows
#: floor at one row (the classic q-error convention), so empty results
#: never divide by zero.
Q_ERROR_CAP = 1e12


def q_error(est: float | None, actual: float) -> float | None:
    """Symmetric estimation error; ``None`` when no estimate exists.

    Both sides are floored at one row and capped at
    :data:`Q_ERROR_CAP`; NaN on either side yields the cap.  The result
    is therefore always a finite float in ``[1.0, Q_ERROR_CAP]``.
    """
    if est is None:
        return None
    e = float(est)
    a = float(actual)
    if math.isnan(e) or math.isnan(a):
        return Q_ERROR_CAP
    e = min(max(e, 1.0), Q_ERROR_CAP)
    a = min(max(a, 1.0), Q_ERROR_CAP)
    return min(max(e / a, a / e), Q_ERROR_CAP)


@dataclass(frozen=True)
class NodeQuality:
    """One operator's estimate vs. what actually flowed through it."""

    description: str
    depth: int
    est_rows: float
    actual_rows: int

    @property
    def q(self) -> float:
        return q_error(self.est_rows, self.actual_rows)

    @property
    def line(self) -> str:
        pad = "  " * self.depth
        return (
            f"{pad}{self.description}: est={self.est_rows:.0f} "
            f"actual={self.actual_rows} q={self.q:.2f}"
        )


@dataclass(frozen=True)
class PlanQualityReport:
    """All instrumented operators that carried an estimate."""

    nodes: tuple[NodeQuality, ...]

    @property
    def max_q_error(self) -> float:
        if not self.nodes:
            return 1.0
        return max(node.q for node in self.nodes)

    def worst(self, k: int = 3) -> list[NodeQuality]:
        """The ``k`` operators with the largest q-error, worst first."""
        ranked = sorted(self.nodes, key=lambda n: (-n.q, n.depth))
        return ranked[:k]

    def render(self) -> str:
        if not self.nodes:
            return "plan quality: no estimates recorded"
        lines = [f"plan quality: max q-error {self.max_q_error:.2f}"]
        lines.extend(node.line for node in self.nodes)
        return "\n".join(lines)
