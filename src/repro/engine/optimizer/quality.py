"""Plan-quality accounting: q-error, the optimizer's report card.

The q-error of an operator is ``max(est/actual, actual/est)`` with both
sides floored at one row — the standard symmetric measure of estimation
error (1.0 is perfect; 10 means an order of magnitude off in either
direction).  EXPLAIN ANALYZE renders it per operator, and
:class:`PlanQualityReport` aggregates the worst offenders so a golden
run can pin "no node is more than X× off" in CI.
"""

from __future__ import annotations

from dataclasses import dataclass


def q_error(est: float | None, actual: float) -> float | None:
    """Symmetric estimation error; ``None`` when no estimate exists."""
    if est is None:
        return None
    e = max(float(est), 1.0)
    a = max(float(actual), 1.0)
    return max(e / a, a / e)


@dataclass(frozen=True)
class NodeQuality:
    """One operator's estimate vs. what actually flowed through it."""

    description: str
    depth: int
    est_rows: float
    actual_rows: int

    @property
    def q(self) -> float:
        return q_error(self.est_rows, self.actual_rows)

    @property
    def line(self) -> str:
        pad = "  " * self.depth
        return (
            f"{pad}{self.description}: est={self.est_rows:.0f} "
            f"actual={self.actual_rows} q={self.q:.2f}"
        )


@dataclass(frozen=True)
class PlanQualityReport:
    """All instrumented operators that carried an estimate."""

    nodes: tuple[NodeQuality, ...]

    @property
    def max_q_error(self) -> float:
        if not self.nodes:
            return 1.0
        return max(node.q for node in self.nodes)

    def worst(self, k: int = 3) -> list[NodeQuality]:
        """The ``k`` operators with the largest q-error, worst first."""
        ranked = sorted(self.nodes, key=lambda n: (-n.q, n.depth))
        return ranked[:k]

    def render(self) -> str:
        if not self.nodes:
            return "plan quality: no estimates recorded"
        lines = [f"plan quality: max q-error {self.max_q_error:.2f}"]
        lines.extend(node.line for node in self.nodes)
        return "\n".join(lines)
