"""The operator cost model.

Costs are unitless "work" numbers used only to *rank* alternatives;
their absolute scale is meaningless.  The weights encode the paper-era
truths the optimizer must respect:

* a page read costs far more than touching a row already in memory
  (the paper's Table 1 is dominated by I/O);
* an index range scan reads only the pages its key range covers;
* a hash join is linear in both inputs, a nested loop is quadratic —
  which is exactly why the appendix's zone join beats the cursor.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CostModel:
    """Tunable weights; defaults favor I/O avoidance, as the paper does."""

    page_io: float = 25.0     # one page read
    cpu_row: float = 1.0      # touch/emit one row
    hash_build: float = 1.5   # insert one row into a hash table
    hash_probe: float = 1.0   # probe one row against it
    loop_pair: float = 0.5    # evaluate one nested-loop candidate pair
    sort_row: float = 0.25    # one comparison inside an n·log n sort
    band_probe: float = 2.0   # one binary-search probe into sorted keys

    # ------------------------------------------------------------------
    # access paths
    # ------------------------------------------------------------------
    def seq_scan(self, rows: float, pages: float) -> float:
        return pages * self.page_io + rows * self.cpu_row

    def index_range_scan(
        self, est_rows: float, table_rows: float, pages: float
    ) -> float:
        """Clustered range scan: touch only the covered page fraction."""
        fraction = 0.0 if table_rows <= 0 else min(est_rows / table_rows, 1.0)
        return pages * fraction * self.page_io + est_rows * self.cpu_row

    def filter(self, input_rows: float) -> float:
        return input_rows * self.cpu_row

    # ------------------------------------------------------------------
    # joins
    # ------------------------------------------------------------------
    def hash_join(self, left_rows: float, right_rows: float,
                  output_rows: float) -> float:
        return (right_rows * self.hash_build
                + left_rows * self.hash_probe
                + output_rows * self.cpu_row)

    def nested_loop_join(self, left_rows: float, right_rows: float,
                         output_rows: float) -> float:
        return left_rows * right_rows * self.loop_pair + output_rows * self.cpu_row

    def band_join(self, left_rows: float, right_rows: float,
                  output_rows: float) -> float:
        """Sort the right side once, binary-search it per left row, and
        touch only the band survivors — n·log n + probes instead of the
        nested loop's full cross product."""
        import math

        sort = right_rows * math.log2(max(right_rows, 2.0)) * self.sort_row
        probe = left_rows * self.band_probe
        return sort + probe + output_rows * self.cpu_row

    def join(self, left_rows: float, right_rows: float, output_rows: float,
             has_equi: bool, has_band: bool = False) -> float:
        if has_equi:
            return self.hash_join(left_rows, right_rows, output_rows)
        if has_band:
            return self.band_join(left_rows, right_rows, output_rows)
        return self.nested_loop_join(left_rows, right_rows, output_rows)


#: The model every planner instance shares unless a test swaps weights.
DEFAULT_COST_MODEL = CostModel()
