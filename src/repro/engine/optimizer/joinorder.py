"""Join-order search: left-deep dynamic programming with a greedy tail.

The planner hands this module an abstract picture of the FROM clause —
one :class:`JoinRel` per bound relation (its estimated output rows and
access cost) and one :class:`JoinPred` per join/filter conjunct that
spans two or more relations — and gets back a permutation of relation
indexes to join left-deep in that order.

Up to ``dp_limit`` relations the search is exact over left-deep trees
(the classic System-R dynamic program on relation subsets); beyond
that it degrades to a greedy heuristic: start from the smallest
relation and repeatedly attach whichever remaining relation is cheapest
to join next.  Both paths price joins with the shared
:class:`~repro.engine.optimizer.cost.CostModel` and estimate join
output rows by multiplying the selectivities of every predicate that
becomes applicable at that step (independence assumption).

Cross products are allowed but naturally priced out: a relation with no
applicable predicate joins with selectivity 1 and nested-loop cost, so
the DP only picks it when nothing better exists.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.optimizer.cost import DEFAULT_COST_MODEL, CostModel

#: Above this many relations the exact DP gives way to the greedy pass.
DP_LIMIT = 6


@dataclass(frozen=True)
class JoinRel:
    """One FROM-clause relation as the search sees it."""

    alias: str
    rows: float       # estimated rows *after* pushed-down filters
    cost: float       # cost of its chosen access path


@dataclass(frozen=True)
class JoinPred:
    """One conjunct spanning ``aliases``; applicable once all are bound."""

    aliases: frozenset[str]
    selectivity: float
    equi: bool = False
    band: bool = False


def _applicable(
    preds: list[JoinPred], bound: frozenset[str], adding: str
) -> list[JoinPred]:
    """Predicates that become evaluable when ``adding`` joins ``bound``."""
    after = bound | {adding}
    return [
        p for p in preds
        if p.aliases <= after and not p.aliases <= bound and adding in p.aliases
    ]


def _step(
    rows: float,
    cost: float,
    rel: JoinRel,
    preds: list[JoinPred],
    model: CostModel,
) -> tuple[float, float]:
    """Price joining ``rel`` onto an intermediate of ``rows`` rows."""
    selectivity = 1.0
    has_equi = False
    has_band = False
    for pred in preds:
        selectivity *= pred.selectivity
        has_equi = has_equi or pred.equi
        has_band = has_band or pred.band
    out_rows = rows * rel.rows * selectivity
    join_cost = model.join(rows, rel.rows, out_rows, has_equi, has_band)
    return out_rows, cost + rel.cost + join_cost


def order_relations(
    rels: list[JoinRel],
    preds: list[JoinPred],
    model: CostModel = DEFAULT_COST_MODEL,
    dp_limit: int = DP_LIMIT,
) -> list[int]:
    """Choose a left-deep join order; returns indexes into ``rels``."""
    n = len(rels)
    if n <= 1:
        return list(range(n))
    if n <= dp_limit:
        return _order_dp(rels, preds, model)
    return _order_greedy(rels, preds, model)


def _order_dp(
    rels: list[JoinRel], preds: list[JoinPred], model: CostModel
) -> list[int]:
    n = len(rels)
    # dp key: frozenset of relation indexes ->
    #   (cost, rows, order tuple, bound alias set)
    dp: dict[frozenset[int], tuple[float, float, tuple[int, ...], frozenset[str]]] = {}
    for i, rel in enumerate(rels):
        dp[frozenset([i])] = (rel.cost, rel.rows, (i,), frozenset([rel.alias]))

    for size in range(2, n + 1):
        next_dp: dict[
            frozenset[int], tuple[float, float, tuple[int, ...], frozenset[str]]
        ] = {}
        for subset, (cost, rows, order, bound) in sorted(
            dp.items(), key=lambda kv: kv[1][2]
        ):
            if len(subset) != size - 1:
                continue
            for j in range(n):
                if j in subset:
                    continue
                rel = rels[j]
                applicable = _applicable(preds, bound, rel.alias)
                out_rows, total = _step(rows, cost, rel, applicable, model)
                # the access-path cost of rels already in `order` is
                # inside `cost`; _step added rels[j].cost once.
                key = subset | {j}
                candidate = (total, out_rows, order + (j,), bound | {rel.alias})
                best = next_dp.get(key)
                if best is None or candidate[0] < best[0]:
                    next_dp[key] = candidate
        dp.update(next_dp)

    _, _, order, _ = dp[frozenset(range(n))]
    return list(order)


def _order_greedy(
    rels: list[JoinRel], preds: list[JoinPred], model: CostModel
) -> list[int]:
    n = len(rels)
    start = min(range(n), key=lambda i: (rels[i].rows, rels[i].alias))
    order = [start]
    bound = frozenset([rels[start].alias])
    rows = rels[start].rows
    cost = rels[start].cost
    remaining = set(range(n)) - {start}
    while remaining:
        best_j = None
        best = (float("inf"), float("inf"), "")
        for j in sorted(remaining, key=lambda i: rels[i].alias):
            applicable = _applicable(preds, bound, rels[j].alias)
            out_rows, total = _step(rows, cost, rels[j], applicable, model)
            candidate = (total, out_rows, rels[j].alias)
            if candidate < best:
                best = candidate
                best_j = j
        order.append(best_j)
        bound = bound | {rels[best_j].alias}
        cost, rows = best[0], best[1]
        remaining.remove(best_j)
    return order
