"""Plan forcing: pin a statement fingerprint to a stored plan.

The feedback loop (PR 8) makes plans a function of observed execution —
which is usually what you want, until a re-plan lands on something
*worse* and the operator needs to say "run the old plan, full stop".
SQL Server's Query Store answer is plan forcing: the operator picks a
plan from the fingerprint's history and the optimizer is bypassed for
that statement until the pin is removed.

Forcing is structural, not pickled: a live
:class:`~repro.engine.operators.PlanNode` tree references Table and
index objects that do not survive a restart, so a :class:`ForcedPlan`
stores the plan's **structural signature** (:func:`plan_structure` — a
hash of the operator tree that ignores cardinality estimates) alongside
the plan text.  While the process that forced the plan is alive the
live node is reused directly; after a restore the forcer re-plans once
and *adopts* the result if its structure matches the stored signature
("forced-reestablished").  When the catalog has drifted so far that the
planner can no longer produce the forced shape, the force **fails
visibly**: the fresh plan runs, the failure is counted, and the reason
is recorded on the entry — the moral equivalent of Query Store's
``last_force_failure_reason``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import threading
import time
from dataclasses import dataclass
from typing import Callable

from repro.engine.expressions import Expr
from repro.engine.index import ClusteredIndex, HashIndex
from repro.engine.operators import PlanNode
from repro.engine.table import Table
from repro.errors import EngineError
from repro.obs.metrics import get_metrics


def _structure_tokens(value, out: list[str]) -> None:
    """Append a stable token stream for one plan-tree value.

    Tables and indexes are identified by name/keys (never by object
    identity, which changes across restarts); bound expressions are
    frozen dataclasses whose ``repr`` is deterministic (the band-shape
    keys of the feedback loop already rely on this).  ``est_rows`` and
    ``rewrite_trace`` are class attributes, not dataclass fields, so a
    field walk skips estimate churn for free.
    """
    if isinstance(value, PlanNode):
        out.append(f"node:{type(value).__name__}(")
        for f in dataclasses.fields(value):
            out.append(f"{f.name}=")
            _structure_tokens(getattr(value, f.name), out)
        out.append(")")
    elif isinstance(value, Table):
        out.append(f"table:{value.name.lower()}")
    elif isinstance(value, ClusteredIndex):
        keys = ",".join(k.lower() for k in value.keys)
        out.append(f"cindex:{value.table.name.lower()}[{keys}]")
    elif isinstance(value, HashIndex):
        out.append(f"hindex:{value.table.name.lower()}[{value.key.lower()}]")
    elif isinstance(value, Expr):
        out.append(f"expr:{value!r}")
    elif isinstance(value, (tuple, list)):
        out.append("[")
        for item in value:
            _structure_tokens(item, out)
        out.append("]")
    else:
        out.append(repr(value))


def plan_structure(plan: PlanNode) -> str:
    """Structural signature of a plan tree (hex digest).

    Two plans compare equal iff they have the same operator shapes over
    the same tables/indexes/expressions — row estimates and statistics
    do not participate, so re-ANALYZE alone never flips the signature.
    """
    tokens: list[str] = []
    _structure_tokens(plan, tokens)
    return hashlib.sha256("\x00".join(tokens).encode()).hexdigest()[:32]


@dataclass
class ForcedPlan:
    """One pinned fingerprint -> plan binding."""

    fingerprint: str
    plan_id: int
    structure: str
    plan_text: str
    plan_signature: str = ""
    #: Live operator tree; None after a restore until re-established.
    node: PlanNode | None = None
    forced_at: float = 0.0
    executions: int = 0
    #: Whether the live node was re-adopted by structure match after a
    #: restart (as opposed to surviving from the forcing process).
    re_established: bool = False
    failures: int = 0
    last_failure: str | None = None


class PlanForcer:
    """Thread-safe fingerprint -> :class:`ForcedPlan` map.

    One instance hangs off each query-store-enabled
    :class:`~repro.engine.database.Database`.  ``version`` bumps on any
    force/unforce so the Query Store's system views refresh lazily.
    """

    def __init__(self, metrics_prefix: str = "engine.planforce"):
        self._entries: dict[str, ForcedPlan] = {}
        self._lock = threading.Lock()
        self.version = 0
        metrics = get_metrics()
        self._m_forced = metrics.counter(f"{metrics_prefix}.forced_executions")
        self._m_reestablished = metrics.counter(
            f"{metrics_prefix}.reestablished"
        )
        self._m_failures = metrics.counter(f"{metrics_prefix}.force_failures")

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def force(
        self,
        fingerprint: str,
        plan_id: int,
        structure: str,
        plan_text: str,
        plan_signature: str = "",
        node: PlanNode | None = None,
    ) -> ForcedPlan:
        """Pin a fingerprint to a plan (replacing any existing pin)."""
        if not structure:
            raise EngineError(
                f"cannot force plan {plan_id}: no structural signature"
            )
        entry = ForcedPlan(
            fingerprint=fingerprint,
            plan_id=plan_id,
            structure=structure,
            plan_text=plan_text,
            plan_signature=plan_signature,
            node=node,
            forced_at=time.time(),
        )
        with self._lock:
            self._entries[fingerprint] = entry
            self.version += 1
        return entry

    def unforce(self, fingerprint: str) -> ForcedPlan | None:
        """Remove a pin; returns the removed entry (None if absent)."""
        with self._lock:
            entry = self._entries.pop(fingerprint, None)
            if entry is not None:
                self.version += 1
            return entry

    def get(self, fingerprint: str) -> ForcedPlan | None:
        with self._lock:
            return self._entries.get(fingerprint)

    def entries(self) -> list[ForcedPlan]:
        with self._lock:
            return list(self._entries.values())

    def clear(self) -> None:
        with self._lock:
            if self._entries:
                self.version += 1
            self._entries.clear()

    # ------------------------------------------------------------------
    def resolve(
        self, fingerprint: str, replan: Callable[[], PlanNode]
    ) -> tuple[PlanNode, str] | None:
        """The plan to run for a forced fingerprint, or None if unpinned.

        Returns ``(plan, decision)`` with decision one of:

        * ``"forced"`` — the pinned live plan ran;
        * ``"forced-reestablished"`` — no live node (restored pin); the
          planner's fresh plan matched the stored structure and was
          adopted as the live node;
        * ``"force-failed"`` — the fresh plan's structure diverged from
          the pin; the fresh plan runs anyway and the failure is
          recorded on the entry.
        """
        entry = self.get(fingerprint)
        if entry is None:
            return None
        if entry.node is not None:
            with self._lock:
                entry.executions += 1
            self._m_forced.inc()
            return entry.node, "forced"
        plan = replan()
        structure = plan_structure(plan)
        if structure == entry.structure:
            with self._lock:
                entry.node = plan
                entry.re_established = True
                entry.executions += 1
                entry.last_failure = None
                self.version += 1
            self._m_reestablished.inc()
            self._m_forced.inc()
            return plan, "forced-reestablished"
        with self._lock:
            entry.failures += 1
            entry.last_failure = (
                f"planner produced structure {structure[:12]}, "
                f"forced plan has {entry.structure[:12]}"
            )
            self.version += 1
        self._m_failures.inc()
        return plan, "force-failed"

    # ------------------------------------------------------------------
    def render(self) -> str:
        entries = self.entries()
        if not entries:
            return "forced plans: none"
        lines = [f"forced plans ({len(entries)}):"]
        for entry in sorted(entries, key=lambda e: e.fingerprint):
            state = "live" if entry.node is not None else "awaiting re-plan"
            if entry.re_established:
                state = "re-established"
            lines.append(
                f"  {entry.fingerprint[:12]} -> plan {entry.plan_id} "
                f"[{state}]  execs={entry.executions}  "
                f"failures={entry.failures}"
                + (f"  last_failure={entry.last_failure}"
                   if entry.last_failure else "")
            )
        return "\n".join(lines)
