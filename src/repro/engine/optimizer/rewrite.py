"""Rule-driven logical query rewrites, applied between parse and plan.

The pass transforms the *statement* (the frozen AST), never the physical
plan: each rule is a pure function ``stmt -> stmt | None`` that fires
when a structural precondition holds.  The driver applies rules to a
fixpoint (one firing per iteration, bounded by :data:`MAX_PASSES`) and
records a :class:`RuleFiring` per applied rule — EXPLAIN renders the
firings ahead of the operator tree, and the ``engine.rewrite.*``
counters aggregate them process-wide.

Two properties are load-bearing:

* **Determinism.**  ``rewrite_statement`` is a pure function of the
  statement and the catalog.  The result cache fingerprints the
  *rewritten* statement, so the cheap fingerprint path
  (``price=False``) must produce the byte-identical AST the planner
  path produces.  Rules therefore fire purely on structural
  applicability; the cost model is consulted only to *report* the
  estimated effect of a firing, never to gate it.

* **Semantics preservation.**  Every rule keeps the result multiset
  identical under the engine's NaN-as-NULL arithmetic (``NaN == NaN``
  is false, aggregates skip NaN).  The differential suite in
  ``tests/test_differential_sql.py`` checks row identity with rewrites
  on and off across hundreds of generated queries; the metamorphic
  tests in ``tests/test_engine_rewrite.py`` pin each rule's firing.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass

from repro.engine.expressions import (
    Between,
    BinaryOp,
    Case,
    ColumnRef,
    Expr,
    FuncCall,
    InList,
    Literal,
    UnaryOp,
)
from repro.engine.join import BandJoin, CrossJoin, HashJoin, NestedLoopJoin
from repro.engine.operators import (
    Filter,
    IndexRangeScan,
    PlanNode,
    SeqScan,
    Sort,
)
from repro.engine.optimizer.cost import DEFAULT_COST_MODEL, CostModel
from repro.engine.sql.ast import (
    Exists,
    InSubquery,
    JoinClause,
    SelectItem,
    SelectStatement,
    TableRef,
    UnionStatement,
)
from repro.engine.sql.planner import (
    Planner,
    _Relation,
    and_all,
    find_aggregates,
    find_subquery_exprs,
    rewrite as substitute_exprs,
    split_conjuncts,
)
from repro.errors import SqlPlanError
from repro.obs.metrics import get_metrics

#: Upper bound on rule firings per statement scope.  Purely a runaway
#: backstop — real statements reach their fixpoint in a handful of
#: firings, and hitting the cap is deterministic (both the planner and
#: the cache-fingerprint path stop at the same prefix).
MAX_PASSES = 32


# ----------------------------------------------------------------------
# firing records and pricing
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RuleFiring:
    """One applied rewrite rule, with its cost-model-estimated effect.

    The estimates compare the *unrewritten* plans of the statement
    before and after the firing: ``est_rows`` sums the optimizer's row
    estimate over every plan node (a proxy for rows the plan touches),
    ``cost`` is the cost model's total work number.  ``None`` when the
    intermediate statement was not priceable.
    """

    rule: str
    detail: str
    est_rows_before: float | None = None
    est_rows_after: float | None = None
    cost_before: float | None = None
    cost_after: float | None = None

    def describe(self) -> str:
        text = f"Rewrite {self.rule}: {self.detail}"
        if self.est_rows_before is not None and self.est_rows_after is not None:
            text += (
                f"  [est_rows {self.est_rows_before:.0f}"
                f"->{self.est_rows_after:.0f}"
            )
            if self.cost_before is not None and self.cost_after is not None:
                text += f", cost {self.cost_before:.0f}->{self.cost_after:.0f}"
            text += "]"
        return text


def plan_cost(plan: PlanNode, model: CostModel = DEFAULT_COST_MODEL) -> float:
    """Total cost-model work for an annotated plan tree."""
    total = sum(plan_cost(child, model) for child in plan._children())
    est = plan.est_rows or 0.0
    if isinstance(plan, SeqScan):
        table = plan.table
        return model.seq_scan(float(table.row_count), float(table.page_count))
    if isinstance(plan, IndexRangeScan):
        table = plan.index.table
        return total + model.index_range_scan(
            est, float(table.row_count), float(table.page_count)
        )
    if isinstance(plan, Filter):
        return total + model.filter(plan.child.est_rows or 0.0)
    if isinstance(plan, HashJoin):
        return total + model.hash_join(
            plan.left.est_rows or 0.0, plan.right.est_rows or 0.0, est
        )
    if isinstance(plan, BandJoin):
        return total + model.band_join(
            plan.left.est_rows or 0.0, plan.right.est_rows or 0.0, est
        )
    if isinstance(plan, (NestedLoopJoin, CrossJoin)):
        return total + model.nested_loop_join(
            plan.left.est_rows or 0.0, plan.right.est_rows or 0.0, est
        )
    if isinstance(plan, Sort):
        rows = plan.child.est_rows or 0.0
        return total + rows * math.log2(max(rows, 2.0)) * model.sort_row
    return total + model.cpu_row * est


def _total_est_rows(plan: PlanNode) -> float:
    total = plan.est_rows or 0.0
    for child in plan._children():
        total += _total_est_rows(child)
    return total


def _plan_metrics(
    stmt: SelectStatement, database, optimizer: str | None
) -> tuple[float | None, float | None]:
    """Price a statement by planning it with rewrites off."""
    try:
        plan = Planner(database, optimizer=optimizer, rewrites=False) \
            .plan_select(stmt)
    except Exception:
        return None, None
    return _total_est_rows(plan), plan_cost(plan)


# ----------------------------------------------------------------------
# expression utilities
# ----------------------------------------------------------------------
def _transform_expr(expr: Expr, fn) -> Expr:
    """Bottom-up structural map: rebuild children, then apply ``fn``.

    Subquery bodies (``Exists``/``InSubquery.select``) are separate
    scopes and are never descended into.
    """
    if isinstance(expr, BinaryOp):
        node: Expr = BinaryOp(
            expr.op,
            _transform_expr(expr.left, fn),
            _transform_expr(expr.right, fn),
        )
    elif isinstance(expr, UnaryOp):
        node = UnaryOp(expr.op, _transform_expr(expr.operand, fn))
    elif isinstance(expr, Between):
        node = Between(
            _transform_expr(expr.value, fn),
            _transform_expr(expr.low, fn),
            _transform_expr(expr.high, fn),
        )
    elif isinstance(expr, InList):
        node = InList(
            _transform_expr(expr.value, fn),
            tuple(_transform_expr(o, fn) for o in expr.options),
        )
    elif isinstance(expr, FuncCall):
        node = FuncCall(
            expr.name, tuple(_transform_expr(a, fn) for a in expr.args)
        )
    elif isinstance(expr, Case):
        node = Case(
            tuple(
                (_transform_expr(c, fn), _transform_expr(v, fn))
                for c, v in expr.whens
            ),
            None if expr.default is None
            else _transform_expr(expr.default, fn),
        )
    elif isinstance(expr, InSubquery):
        node = InSubquery(_transform_expr(expr.value, fn), expr.select)
    else:
        node = expr
    return fn(node)


def _map_statement_exprs(stmt: SelectStatement, map_expr) -> SelectStatement:
    """Apply an expression transform to every clause of a statement."""
    items = tuple(
        item if item.star
        else dataclasses.replace(item, expr=map_expr(item.expr))
        for item in stmt.items
    )
    joins = tuple(
        join if join.condition is None
        else dataclasses.replace(join, condition=map_expr(join.condition))
        for join in stmt.joins
    )
    return dataclasses.replace(
        stmt,
        items=items,
        joins=joins,
        where=None if stmt.where is None else map_expr(stmt.where),
        group_by=tuple(map_expr(e) for e in stmt.group_by),
        having=None if stmt.having is None else map_expr(stmt.having),
        order_by=tuple(
            dataclasses.replace(o, expr=map_expr(o.expr))
            for o in stmt.order_by
        ),
    )


def _statement_exprs(stmt: SelectStatement) -> list[Expr]:
    """Every top-scope expression of a statement (no subquery bodies)."""
    exprs: list[Expr] = [
        item.expr for item in stmt.items if item.expr is not None
    ]
    if stmt.where is not None:
        exprs.append(stmt.where)
    exprs.extend(stmt.group_by)
    if stmt.having is not None:
        exprs.append(stmt.having)
    exprs.extend(o.expr for o in stmt.order_by)
    exprs.extend(
        j.condition for j in stmt.joins if j.condition is not None
    )
    return exprs


def _select_mentions(
    select: SelectStatement, alias: str, bare_names=None
) -> bool:
    """Does a subquery body reference ``alias`` (or, when ``bare_names``
    is given, an unqualified name from that set)?  Used to detect
    correlation into a relation a rule is about to restructure."""
    for expr in _statement_exprs(select):
        for ref in expr.column_refs():
            qualifier = ref.qualifier.lower() if ref.qualifier else None
            if qualifier == alias:
                return True
            if (bare_names is not None and qualifier is None
                    and ref.name.lower() in bare_names):
                return True
        for node in find_subquery_exprs(expr):
            if _select_mentions(node.select, alias, bare_names):
                return True
    return False


def _is_bool_literal(expr: Expr, value: bool) -> bool:
    return isinstance(expr, Literal) and expr.value is value


def _numeric(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


_BOOL_OPS = frozenset({"AND", "OR", "=", "!=", "<>", "<", "<=", ">", ">="})


def _boolish(expr: Expr) -> bool:
    """Is the expression already boolean-valued under engine eval?

    AND/OR absorption (``TRUE AND x -> x``) may only keep the raw
    operand when it evaluates to booleans; for a numeric ``x`` the
    conjunction coerces (``bool(x)``) while the bare operand does not,
    which would change dtype/values in a SELECT-item position.
    """
    if isinstance(expr, Literal):
        return isinstance(expr.value, bool)
    if isinstance(expr, BinaryOp):
        op = expr.op.upper() if expr.op.isalpha() else expr.op
        return op in _BOOL_OPS
    if isinstance(expr, UnaryOp):
        return expr.op.upper() == "NOT"
    if isinstance(expr, (Between, InList, Exists, InSubquery)):
        return True
    if isinstance(expr, FuncCall):
        return expr.name.lower() == "isnull"
    return False


# ----------------------------------------------------------------------
# rule: constant folding
# ----------------------------------------------------------------------
_COMPARES = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<>": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}

#: numpy int64 wraps on overflow where Python ints don't; only fold
#: integer arithmetic whose result stays comfortably inside int64.
_INT_FOLD_LIMIT = 2 ** 62


def _fold_arith(op: str, lv, rv):
    """Fold a binary arithmetic op the way the engine's numpy ops would,
    or return None when folding can't be proven equivalent."""
    if op == "/":
        if rv == 0:
            return None  # numpy yields inf/nan; Python raises — keep it
        return float(lv) / float(rv)
    if op == "%":
        if rv == 0:
            return None
        result = lv % rv
    elif op == "+":
        result = lv + rv
    elif op == "-":
        result = lv - rv
    elif op == "*":
        result = lv * rv
    else:
        return None
    if isinstance(result, int) and abs(result) >= _INT_FOLD_LIMIT:
        return None
    return result


def _fold_node(expr: Expr) -> Expr:
    if isinstance(expr, BinaryOp):
        op = expr.op.upper() if expr.op.isalpha() else expr.op
        left, right = expr.left, expr.right
        if op == "AND":
            if _is_bool_literal(left, False) or _is_bool_literal(right, False):
                return Literal(False)
            if _is_bool_literal(left, True) and _boolish(right):
                return right
            if _is_bool_literal(right, True) and _boolish(left):
                return left
            return expr
        if op == "OR":
            if _is_bool_literal(left, True) or _is_bool_literal(right, True):
                return Literal(True)
            if _is_bool_literal(left, False) and _boolish(right):
                return right
            if _is_bool_literal(right, False) and _boolish(left):
                return left
            return expr
        if not (isinstance(left, Literal) and isinstance(right, Literal)):
            return expr
        lv, rv = left.value, right.value
        if op in _COMPARES:
            both_str = isinstance(lv, str) and isinstance(rv, str)
            both_num = isinstance(lv, (int, float, bool)) \
                and isinstance(rv, (int, float, bool))
            if both_str or both_num:
                # Python scalar comparisons match numpy elementwise
                # semantics here, including NaN (always false).
                return Literal(bool(_COMPARES[op](lv, rv)))
            return expr
        if _numeric(lv) and _numeric(rv):
            folded = _fold_arith(op, lv, rv)
            if folded is not None:
                return Literal(folded)
        return expr
    if isinstance(expr, UnaryOp):
        operand = expr.operand
        if expr.op == "-" and isinstance(operand, Literal) \
                and _numeric(operand.value):
            return Literal(-operand.value)
        if expr.op.upper() == "NOT" and isinstance(operand, Literal) \
                and isinstance(operand.value, bool):
            return Literal(not operand.value)
        return expr
    if isinstance(expr, Between):
        parts = (expr.value, expr.low, expr.high)
        if all(isinstance(p, Literal) and _numeric(p.value) for p in parts):
            v, lo, hi = (p.value for p in parts)  # type: ignore[union-attr]
            return Literal(bool(lo <= v) and bool(v <= hi))
        return expr
    if isinstance(expr, InList):
        if isinstance(expr.value, Literal) and all(
            isinstance(o, Literal) for o in expr.options
        ):
            v = expr.value.value
            mixable = (int, float, bool)
            for option in expr.options:
                o = option.value  # type: ignore[union-attr]
                same_kind = (
                    isinstance(v, str) and isinstance(o, str)
                ) or (
                    isinstance(v, mixable) and isinstance(o, mixable)
                )
                if not same_kind:
                    return expr  # numpy mixed-type equality is murky
            return Literal(
                any(v == o.value for o in expr.options)  # type: ignore
            )
        return expr
    return expr


def _rule_constant_folding(stmt: SelectStatement, database):
    folded = _map_statement_exprs(
        stmt, lambda e: _transform_expr(e, _fold_node)
    )
    if folded == stmt:
        return None
    return folded, "folded constant subexpressions"


# ----------------------------------------------------------------------
# rule: tautology elimination
# ----------------------------------------------------------------------
def _rule_tautology(stmt: SelectStatement, database):
    changes: dict = {}
    details: list[str] = []
    for attr in ("where", "having"):
        predicate = getattr(stmt, attr)
        if predicate is None:
            continue
        conjuncts = split_conjuncts(predicate)
        if any(_is_bool_literal(c, False) for c in conjuncts):
            if predicate != Literal(False):
                changes[attr] = Literal(False)
                details.append(f"{attr.upper()} is contradictory")
            continue
        kept = [c for c in conjuncts if not _is_bool_literal(c, True)]
        if len(kept) != len(conjuncts):
            changes[attr] = and_all(kept)
            dropped = len(conjuncts) - len(kept)
            details.append(
                f"dropped {dropped} tautological conjunct(s) "
                f"from {attr.upper()}"
            )
    if not changes:
        return None
    return dataclasses.replace(stmt, **changes), "; ".join(details)


# ----------------------------------------------------------------------
# rule: double negation elimination
# ----------------------------------------------------------------------
def _denot_node(expr: Expr) -> Expr:
    if (
        isinstance(expr, UnaryOp) and expr.op.upper() == "NOT"
        and isinstance(expr.operand, UnaryOp)
        and expr.operand.op.upper() == "NOT"
    ):
        return expr.operand.operand
    return expr


def _rule_double_negation(stmt: SelectStatement, database):
    # Only predicate positions: there the result feeds a boolean
    # coercion, so NOT NOT x == x even for non-boolean x.
    def strip(expr: Expr) -> Expr:
        return _transform_expr(expr, _denot_node)

    changes: dict = {}
    if stmt.where is not None:
        changes["where"] = strip(stmt.where)
    if stmt.having is not None:
        changes["having"] = strip(stmt.having)
    joins = tuple(
        join if join.condition is None
        else dataclasses.replace(join, condition=strip(join.condition))
        for join in stmt.joins
    )
    changes["joins"] = joins
    stripped = dataclasses.replace(stmt, **changes)
    if stripped == stmt:
        return None
    return stripped, "collapsed double negation"


# ----------------------------------------------------------------------
# rules: CTE and view inlining
# ----------------------------------------------------------------------
def _convert_refs(stmt: SelectStatement, convert):
    """Rebuild FROM/JOIN refs through ``convert``; returns (stmt, hits)."""
    hits: list[str] = []

    def step(ref: TableRef) -> TableRef:
        converted = convert(ref)
        if converted is not ref:
            hits.append(ref.table.lower())
        return converted

    source = None if stmt.source is None else step(stmt.source)
    joins = tuple(
        dataclasses.replace(join, table=step(join.table))
        for join in stmt.joins
    )
    return dataclasses.replace(stmt, source=source, joins=joins), hits


def _rule_cte_inline(stmt: SelectStatement, database):
    if not stmt.ctes:
        return None
    bodies = {name.lower(): body for name, body in stmt.ctes}

    def convert(ref: TableRef) -> TableRef:
        if (not ref.is_subquery and not ref.is_function
                and ref.table.lower() in bodies):
            return TableRef("", ref.alias,
                            subquery=bodies[ref.table.lower()])
        return ref

    converted, hits = _convert_refs(stmt, convert)
    converted = dataclasses.replace(converted, ctes=())
    if hits:
        names = ", ".join(f"'{n}'" for n in dict.fromkeys(hits))
        detail = f"inlined CTE(s) {names} as derived tables"
    else:
        detail = "dropped unreferenced CTE(s)"
    return converted, detail


def _rule_view_inline(stmt: SelectStatement, database):
    if stmt.ctes:
        return None  # CTE names shadow views; wait for cte_inline
    has_view = getattr(database, "has_view", None)
    view_of = getattr(database, "view", None)
    if has_view is None or view_of is None:
        return None

    def convert(ref: TableRef) -> TableRef:
        if (not ref.is_subquery and not ref.is_function
                and has_view(ref.table)):
            return TableRef("", ref.alias, subquery=view_of(ref.table))
        return ref

    converted, hits = _convert_refs(stmt, convert)
    if not hits:
        return None
    names = ", ".join(f"'{n}'" for n in dict.fromkeys(hits))
    return converted, f"inlined view(s) {names} as derived tables"


# ----------------------------------------------------------------------
# rule: HAVING -> WHERE (filter before aggregate)
# ----------------------------------------------------------------------
def _rule_having_pushdown(stmt: SelectStatement, database):
    if stmt.having is None or not stmt.group_by:
        return None
    group_exprs = set(stmt.group_by)
    movable: list[Expr] = []
    kept: list[Expr] = []
    for conjunct in split_conjuncts(stmt.having):
        if find_aggregates(conjunct) or find_subquery_exprs(conjunct):
            kept.append(conjunct)
            continue
        refs = list(conjunct.column_refs())
        # Sound when the conjunct only touches grouping expressions:
        # those are constant within each group, so filtering rows before
        # aggregation removes exactly the groups HAVING would.
        if all(ref in group_exprs for ref in refs):
            movable.append(conjunct)
        else:
            kept.append(conjunct)
    if not movable:
        return None
    new_where = and_all(split_conjuncts(stmt.where) + movable)
    new_stmt = dataclasses.replace(
        stmt, where=new_where, having=and_all(kept)
    )
    return new_stmt, (
        f"moved {len(movable)} HAVING conjunct(s) on group keys into WHERE"
    )


# ----------------------------------------------------------------------
# rule: redundant LEFT JOIN elimination
# ----------------------------------------------------------------------
def _rule_join_elimination(stmt: SelectStatement, database):
    if stmt.source is None or not stmt.joins:
        return None
    if any(item.star and item.star_qualifier is None for item in stmt.items):
        return None
    for idx, join in enumerate(stmt.joins):
        if join.kind != "left" or join.condition is None:
            continue
        ref = join.table
        if ref.is_subquery or ref.is_function:
            continue
        has_view = getattr(database, "has_view", None)
        if has_view is not None and has_view(ref.table):
            continue
        if any(name.lower() == ref.table.lower() for name, _ in stmt.ctes):
            continue
        try:
            table = database.table(ref.table)
        except Exception:
            continue
        primary_key = getattr(table.schema, "primary_key", None)
        if primary_key is None:
            continue
        conditions = split_conjuncts(join.condition)
        if len(conditions) != 1:
            continue
        condition = conditions[0]
        if not (isinstance(condition, BinaryOp) and condition.op == "="):
            continue
        alias = ref.alias.lower()
        columns = {c.lower() for c in table.schema.column_names}

        def is_right_pk(expr: Expr) -> bool:
            return (
                isinstance(expr, ColumnRef)
                and expr.qualifier is not None
                and expr.qualifier.lower() == alias
                and expr.name.lower() == primary_key.lower()
            )

        def mentions(expr: Expr) -> bool:
            for column in expr.column_refs():
                qualifier = (
                    column.qualifier.lower() if column.qualifier else None
                )
                if qualifier == alias:
                    return True
                if qualifier is None and column.name.lower() in columns:
                    return True  # could resolve here: be conservative
            for node in find_subquery_exprs(expr):
                if _select_mentions(node.select, alias, columns):
                    return True
            return False

        if is_right_pk(condition.left):
            other = condition.right
        elif is_right_pk(condition.right):
            other = condition.left
        else:
            continue
        if mentions(other):
            continue
        used = False
        for item in stmt.items:
            if item.star:
                if (item.star_qualifier is not None
                        and item.star_qualifier.lower() == alias):
                    used = True
                continue
            if item.expr is not None and mentions(item.expr):
                used = True
        for pos, other_join in enumerate(stmt.joins):
            if pos != idx and other_join.condition is not None \
                    and mentions(other_join.condition):
                used = True
        for expr in (
            [stmt.where, stmt.having]
            + list(stmt.group_by)
            + [o.expr for o in stmt.order_by]
        ):
            if expr is not None and mentions(expr):
                used = True
        if used:
            continue
        new_joins = stmt.joins[:idx] + stmt.joins[idx + 1:]
        new_stmt = dataclasses.replace(stmt, joins=new_joins)
        return new_stmt, (
            f"eliminated LEFT JOIN '{ref.alias}' "
            "(keyed on its primary key, never referenced)"
        )
    return None


# ----------------------------------------------------------------------
# rule: derived table merge (subquery flattening)
# ----------------------------------------------------------------------
def _mergeable_inner(inner: SelectStatement) -> bool:
    return (
        inner.source is not None
        and not inner.joins
        and not inner.group_by
        and inner.having is None
        and not inner.distinct
        and inner.limit is None
        and inner.offset is None
        and not inner.order_by
        and not inner.ctes
    )


def _rule_derived_merge(stmt: SelectStatement, database):
    if stmt.ctes or stmt.source is None:
        return None
    planner = Planner(database, rewrites=False)
    slots: list[tuple[int | None, TableRef]] = [(None, stmt.source)]
    slots += [(i, join.table) for i, join in enumerate(stmt.joins)]
    single_outer = len(slots) == 1
    for slot, ref in slots:
        if not ref.is_subquery:
            continue
        if slot is not None and stmt.joins[slot].kind == "left":
            continue  # inner WHERE must not leak past NULL padding
        inner = ref.subquery
        assert inner is not None
        if not _mergeable_inner(inner):
            continue
        inner_where = split_conjuncts(inner.where)
        if any(find_subquery_exprs(c) for c in inner_where):
            continue  # requalification can't reach into subquery bodies
        star_items = [item for item in inner.items if item.star]
        identity = bool(star_items)
        if identity and not (
            len(inner.items) == 1 and star_items[0].star_qualifier is None
        ):
            continue
        if not identity:
            exprs = [item.expr for item in inner.items
                     if item.expr is not None]
            try:
                if any(find_aggregates(e) for e in exprs):
                    continue
            except SqlPlanError:
                continue
            if any(find_subquery_exprs(e) for e in exprs):
                continue
            try:
                names = planner.select_output_names(inner)
            except Exception:
                continue
            if len(set(names)) != len(names):
                continue
        alias = ref.alias.lower()
        assert inner.source is not None
        inner_alias = inner.source.alias.lower()

        def requal(expr: Expr) -> Expr:
            def fix(node: Expr) -> Expr:
                if isinstance(node, ColumnRef):
                    qualifier = (
                        node.qualifier.lower() if node.qualifier else None
                    )
                    if qualifier is None or qualifier == inner_alias:
                        return ColumnRef(node.name, ref.alias)
                return node
            return _transform_expr(expr, fix)

        if identity:
            mapping: dict[Expr, Expr] = {}
        else:
            mapping = {}
            for name, item in zip(names, inner.items):
                assert item.expr is not None
                target = requal(item.expr)
                mapping[ColumnRef(name, ref.alias)] = target
                if single_outer:
                    mapping[ColumnRef(name)] = target
            # Star items expanding the derived table would change from
            # the derived output list to the inner table's columns.
            bad = False
            for item in stmt.items:
                if item.star and (
                    item.star_qualifier is None
                    or item.star_qualifier.lower() == alias
                ):
                    bad = True
            # Bare outer refs that match a derived output are ambiguous
            # to re-map when other relations are in scope.
            if not single_outer:
                output_names = set(names)
                for expr in _statement_exprs(stmt):
                    for column in expr.column_refs():
                        if (column.qualifier is None
                                and column.name.lower() in output_names):
                            bad = True
            # Correlated subquery expressions referencing the derived
            # table can't be requalified (their bodies are not walked).
            for expr in _statement_exprs(stmt):
                for node in find_subquery_exprs(expr):
                    if _select_mentions(node.select, alias, set(names)):
                        bad = True
            if bad:
                continue

        merged_ref = dataclasses.replace(inner.source, alias=ref.alias)
        if mapping:
            def map_expr(expr: Expr) -> Expr:
                return substitute_exprs(expr, mapping)
        else:
            def map_expr(expr: Expr) -> Expr:
                return expr

        new_items = []
        for pos, item in enumerate(stmt.items):
            if item.star:
                new_items.append(item)
                continue
            assert item.expr is not None
            new_expr = map_expr(item.expr)
            item_alias = item.alias
            if item_alias is None and new_expr != item.expr:
                # keep the output column name the derived table gave it
                item_alias = Planner._output_name(item, pos)
            new_items.append(
                SelectItem(new_expr, item_alias, item.star,
                           item.star_qualifier)
            )
        outer_where = [map_expr(c) for c in split_conjuncts(stmt.where)]
        merged_where = and_all(outer_where + [requal(c) for c in inner_where])
        joins = tuple(
            dataclasses.replace(
                join,
                table=merged_ref if slot == pos else join.table,
                condition=(
                    None if join.condition is None
                    else map_expr(join.condition)
                ),
            )
            for pos, join in enumerate(stmt.joins)
        )
        new_stmt = dataclasses.replace(
            stmt,
            items=tuple(new_items),
            source=merged_ref if slot is None else stmt.source,
            joins=joins,
            where=merged_where,
            group_by=tuple(map_expr(e) for e in stmt.group_by),
            having=None if stmt.having is None else map_expr(stmt.having),
            order_by=tuple(
                dataclasses.replace(o, expr=map_expr(o.expr))
                for o in stmt.order_by
            ),
        )
        return new_stmt, (
            f"merged derived table '{ref.alias}' into the outer query"
        )
    return None


# ----------------------------------------------------------------------
# rule: predicate pushdown into derived tables
# ----------------------------------------------------------------------
def _rule_predicate_pushdown(stmt: SelectStatement, database):
    if stmt.source is None or stmt.where is None:
        return None
    planner = Planner(database, rewrites=False)
    refs = [stmt.source] + [j.table for j in stmt.joins]
    single_outer = len(refs) == 1
    nullable = {
        join.table.alias.lower()
        for join in stmt.joins
        if join.kind == "left"
    }
    derived = {
        ref.alias.lower(): ref
        for ref in refs
        if ref.is_subquery and ref.alias.lower() not in nullable
    }
    if not derived:
        return None

    moved: dict[str, list[Expr]] = {}
    kept: list[Expr] = []
    for conjunct in split_conjuncts(stmt.where):
        try:
            has_aggs = bool(find_aggregates(conjunct))
        except SqlPlanError:
            has_aggs = True
        if has_aggs or find_subquery_exprs(conjunct):
            kept.append(conjunct)
            continue
        columns = list(conjunct.column_refs())
        if not columns:
            kept.append(conjunct)
            continue
        aliases: set[str] = set()
        resolvable = True
        for column in columns:
            if column.qualifier is not None:
                aliases.add(column.qualifier.lower())
            elif single_outer:
                aliases.add(refs[0].alias.lower())
            else:
                resolvable = False
                break
        if not resolvable or len(aliases) != 1:
            kept.append(conjunct)
            continue
        alias = aliases.pop()
        if alias not in derived:
            kept.append(conjunct)
            continue
        sub = derived[alias].subquery
        assert sub is not None
        if sub.limit is not None or sub.offset is not None:
            kept.append(conjunct)
            continue
        stars = [item for item in sub.items if item.star]
        if stars:
            # only the plain pass-through star is translatable
            if not (
                len(sub.items) == 1 and stars[0].star_qualifier is None
                and not sub.joins and sub.source is not None
                and not sub.group_by
            ):
                kept.append(conjunct)
                continue
            inner_alias = sub.source.alias
            mapping: dict[Expr, Expr] = {}
            for column in columns:
                mapping[column] = ColumnRef(column.name, inner_alias)
        else:
            try:
                names = planner.select_output_names(sub)
            except Exception:
                kept.append(conjunct)
                continue
            if len(set(names)) != len(names):
                kept.append(conjunct)
                continue
            by_name = {
                name: item.expr for name, item in zip(names, sub.items)
            }
            targets = []
            ok = True
            for column in columns:
                target = by_name.get(column.name.lower())
                if target is None:
                    ok = False
                    break
                targets.append(target)
            if ok:
                for target in targets:
                    try:
                        if find_aggregates(target):
                            ok = False
                    except SqlPlanError:
                        ok = False
                    if find_subquery_exprs(target):
                        ok = False
            if ok and sub.group_by:
                # below a GROUP BY the filter must bind to group keys:
                # those are constant per group, so pre-filtering rows
                # removes exactly the groups the outer filter would.
                group_exprs = set(sub.group_by)
                if any(target not in group_exprs for target in targets):
                    ok = False
            if not ok:
                kept.append(conjunct)
                continue
            mapping = {
                column: target
                for column, target in zip(columns, targets)
            }
        moved.setdefault(alias, []).append(
            substitute_exprs(conjunct, mapping)
        )
    if not moved:
        return None

    def convert(ref: TableRef) -> TableRef:
        pushed = moved.get(ref.alias.lower())
        if pushed is None or not ref.is_subquery:
            return ref
        sub = ref.subquery
        assert sub is not None
        new_where = and_all(split_conjuncts(sub.where) + pushed)
        return dataclasses.replace(
            ref, subquery=dataclasses.replace(sub, where=new_where)
        )

    converted, _ = _convert_refs(stmt, convert)
    converted = dataclasses.replace(converted, where=and_all(kept))
    total = sum(len(v) for v in moved.values())
    aliases_text = ", ".join(f"'{a}'" for a in sorted(moved))
    return converted, (
        f"pushed {total} predicate(s) into derived table(s) {aliases_text}"
    )


# ----------------------------------------------------------------------
# rule: IN/EXISTS decorrelation into semi-joins
# ----------------------------------------------------------------------
def _rule_decorrelate(stmt: SelectStatement, database):
    if stmt.source is None or stmt.where is None:
        return None
    if stmt.limit is not None:
        # without a total order LIMIT picks rows by plan order, which
        # the added join may change — keep the naive path
        return None
    if any(item.star and item.star_qualifier is None for item in stmt.items):
        return None  # a new join would widen the * expansion
    planner = Planner(database, rewrites=False)
    ctes = {name.lower(): body for name, body in stmt.ctes}
    outer_refs = [stmt.source] + [j.table for j in stmt.joins]
    try:
        relations = [
            _Relation(
                ref=ref,
                scan=None,  # type: ignore[arg-type] — name scope only
                columns={
                    c.lower()
                    for c in planner._relation_columns(ref, ctes)
                },
                derived=ref.is_subquery,
            )
            for ref in outer_refs
        ]
    except Exception:
        return None
    taken = {ref.alias.lower() for ref in outer_refs}
    where_conjuncts = split_conjuncts(stmt.where)
    for index, conjunct in enumerate(where_conjuncts):
        if not isinstance(conjunct, (Exists, InSubquery)):
            continue
        sub = conjunct.select
        try:
            inner_conjuncts, pairs = planner.split_correlation(
                sub, relations
            )
        except SqlPlanError:
            continue  # unsupported shape: the naive path reports it
        value = (
            conjunct.value if isinstance(conjunct, InSubquery) else None
        )
        if value is not None:
            if len(sub.items) != 1 or sub.items[0].star \
                    or sub.items[0].expr is None:
                continue
            if find_subquery_exprs(value):
                continue
            item_expr = sub.items[0].expr
            if not pairs:
                # an uncorrelated IN may still carry aggregation or
                # LIMIT — the DISTINCT-key extraction would drop them
                try:
                    item_aggs = bool(find_aggregates(item_expr))
                except SqlPlanError:
                    continue
                if (sub.group_by or sub.having is not None
                        or sub.limit is not None
                        or sub.offset is not None or item_aggs):
                    continue
            if find_subquery_exprs(item_expr):
                continue
            pairs = pairs + [(value, item_expr)]
        if not pairs:
            continue  # uncorrelated EXISTS: a cheap scalar check already
        # NaN keys can never match under NULL semantics; `key = key` is
        # false exactly for NaN and keeps the hash build NaN-free.
        guards: list[Expr] = [
            BinaryOp("=", inner, inner) for _, inner in pairs
        ]
        counter = 0
        while f"__semi{counter}" in taken:
            counter += 1
        alias = f"__semi{counter}"
        body = SelectStatement(
            items=tuple(
                SelectItem(inner, f"__ck{pos}")
                for pos, (_, inner) in enumerate(pairs)
            ),
            source=sub.source,
            joins=sub.joins,
            where=and_all(inner_conjuncts + guards),
            distinct=True,
            ctes=sub.ctes,
        )
        condition = and_all([
            BinaryOp("=", outer, ColumnRef(f"__ck{pos}", alias))
            for pos, (outer, _) in enumerate(pairs)
        ])
        semi = JoinClause(
            "inner", TableRef("", alias, subquery=body), condition
        )
        new_stmt = dataclasses.replace(
            stmt,
            where=and_all(
                where_conjuncts[:index] + where_conjuncts[index + 1:]
            ),
            joins=stmt.joins + (semi,),
        )
        label = "IN" if value is not None else "EXISTS"
        return new_stmt, (
            f"decorrelated {label} subquery into semi-join "
            f"derived table '{alias}'"
        )
    return None


# ----------------------------------------------------------------------
# rule: eager aggregation below a PK-keyed join
# ----------------------------------------------------------------------
def _refs_outside_aggregates(expr: Expr) -> list[ColumnRef]:
    found: list[ColumnRef] = []

    def visit(node: Expr) -> None:
        if isinstance(node, FuncCall) and node.name.lower() in (
            "count", "count_distinct", "sum", "min", "max", "avg"
        ):
            return
        if isinstance(node, ColumnRef):
            found.append(node)
        for child in node.children():
            visit(child)

    visit(expr)
    return found


def _rule_aggregate_pushdown(stmt: SelectStatement, database):
    if (
        stmt.source is None or len(stmt.joins) != 1 or stmt.ctes
        or stmt.distinct or stmt.having is not None
        or len(stmt.group_by) != 1
    ):
        return None
    join = stmt.joins[0]
    if join.kind != "inner" or join.condition is None:
        return None
    conditions = split_conjuncts(join.condition)
    if len(conditions) != 1:
        return None
    condition = conditions[0]
    if not (
        isinstance(condition, BinaryOp) and condition.op == "="
        and isinstance(condition.left, ColumnRef)
        and isinstance(condition.right, ColumnRef)
    ):
        return None
    keep_ref, agg_ref = stmt.source, join.table
    has_view = getattr(database, "has_view", None)
    for ref in (keep_ref, agg_ref):
        if ref.is_subquery or ref.is_function:
            return None
        if has_view is not None and has_view(ref.table):
            return None
    try:
        keep_table = database.table(keep_ref.table)
        agg_table = database.table(agg_ref.table)
    except Exception:
        return None
    keep_alias = keep_ref.alias.lower()
    agg_alias = agg_ref.alias.lower()
    keep_cols = {c.lower() for c in keep_table.schema.column_names}
    agg_cols = {c.lower() for c in agg_table.schema.column_names}

    def side_of(column: ColumnRef) -> str | None:
        qualifier = column.qualifier.lower() if column.qualifier else None
        if qualifier == keep_alias:
            return "keep"
        if qualifier == agg_alias:
            return "agg"
        if qualifier is None:
            in_keep = column.name.lower() in keep_cols
            in_agg = column.name.lower() in agg_cols
            if in_keep and not in_agg:
                return "keep"
            if in_agg and not in_keep:
                return "agg"
        return None

    sides = (side_of(condition.left), side_of(condition.right))
    if sides == ("keep", "agg"):
        keep_key, agg_key = condition.left, condition.right
    elif sides == ("agg", "keep"):
        keep_key, agg_key = condition.right, condition.left
    else:
        return None
    # grouping on the preserved side's join key, which must be its
    # primary key: then each group holds exactly one preserved row and
    # the outer re-aggregation over partials is exact
    if stmt.group_by[0] != keep_key:
        return None
    primary_key = getattr(keep_table.schema, "primary_key", None)
    if primary_key is None or primary_key.lower() != keep_key.name.lower():
        return None
    if agg_key.name.lower() not in agg_cols:
        return None

    aggregate_calls: list[FuncCall] = []
    try:
        for item in stmt.items:
            if item.star:
                return None
            assert item.expr is not None
            aggregate_calls += find_aggregates(item.expr)
        for order in stmt.order_by:
            aggregate_calls += find_aggregates(order.expr)
    except SqlPlanError:
        return None
    deduped: list[FuncCall] = []
    for call in aggregate_calls:
        if call not in deduped:
            deduped.append(call)
    if not deduped:
        return None
    for call in deduped:
        func = call.name.lower()
        # COUNT is excluded on purpose: grouped COUNT yields int64 while
        # the re-aggregating SUM over partial counts would yield float64,
        # changing the observable output dtype.  SUM/MIN/MAX are float64
        # either way, so the rewrite is invisible.
        if func not in ("sum", "min", "max") or len(call.args) != 1:
            return None
        if find_subquery_exprs(call.args[0]):
            return None
        for column in call.args[0].column_refs():
            if side_of(column) != "agg":
                return None
    # no naked references to the aggregated side may survive the merge
    for expr in (
        [item.expr for item in stmt.items if item.expr is not None]
        + [o.expr for o in stmt.order_by]
        + list(stmt.group_by)
    ):
        if find_subquery_exprs(expr):
            return None
        for column in _refs_outside_aggregates(expr):
            if side_of(column) != "keep":
                return None
    keep_where: list[Expr] = []
    agg_where: list[Expr] = []
    for conjunct in split_conjuncts(stmt.where):
        if find_subquery_exprs(conjunct):
            return None
        conjunct_sides = {
            side_of(column) for column in conjunct.column_refs()
        }
        if None in conjunct_sides:
            return None
        if conjunct_sides <= {"keep"}:
            keep_where.append(conjunct)
        elif conjunct_sides == {"agg"}:
            agg_where.append(conjunct)
        else:
            return None

    alias = "__pre0"
    while alias in (keep_alias, agg_alias):
        alias += "_"
    partial_items = [SelectItem(agg_key, "__pk")]
    mapping: dict[Expr, Expr] = {}
    for pos, call in enumerate(deduped):
        partial_items.append(SelectItem(call, f"__pa{pos}"))
        # each outer group joins exactly one partial row (keep-side PK),
        # so re-applying the same function reproduces the value exactly
        mapping[call] = FuncCall(
            call.name.lower(), (ColumnRef(f"__pa{pos}", alias),)
        )
    body = SelectStatement(
        items=tuple(partial_items),
        source=agg_ref,
        where=and_all(agg_where),
        group_by=(agg_key,),
    )
    new_join = JoinClause(
        "inner",
        TableRef("", alias, subquery=body),
        BinaryOp("=", keep_key, ColumnRef("__pk", alias)),
    )

    def map_expr(expr: Expr) -> Expr:
        return substitute_exprs(expr, mapping)

    new_stmt = dataclasses.replace(
        stmt,
        items=tuple(
            item if item.star
            else dataclasses.replace(item, expr=map_expr(item.expr))
            for item in stmt.items
        ),
        joins=(new_join,),
        where=and_all(keep_where),
        order_by=tuple(
            dataclasses.replace(o, expr=map_expr(o.expr))
            for o in stmt.order_by
        ),
    )
    return new_stmt, (
        f"pushed {len(deduped)} aggregate(s) below the join, "
        f"pre-grouped '{agg_ref.alias}' by {agg_key.name} as '{alias}'"
    )


# ----------------------------------------------------------------------
# the rule table and the driver
# ----------------------------------------------------------------------
#: (name, rule) in priority order; the driver applies the first rule
#: that fires, re-prices, and iterates to a fixpoint.
REWRITE_RULES: tuple[tuple[str, object], ...] = (
    ("constant_folding", _rule_constant_folding),
    ("tautology_elimination", _rule_tautology),
    ("double_negation_elimination", _rule_double_negation),
    ("cte_inline", _rule_cte_inline),
    ("view_inline", _rule_view_inline),
    ("filter_before_aggregate", _rule_having_pushdown),
    ("redundant_join_elimination", _rule_join_elimination),
    ("derived_table_merge", _rule_derived_merge),
    ("predicate_pushdown", _rule_predicate_pushdown),
    ("decorrelate_subquery", _rule_decorrelate),
    ("aggregate_pushdown", _rule_aggregate_pushdown),
)


def _fire_once(stmt: SelectStatement, database):
    """First applicable rule anywhere in the statement, or None.

    Top-level rules take priority; afterwards the driver recurses into
    derived-table bodies (their own scopes) so e.g. a view inlined into
    a derived table is itself flattened.
    """
    for rule, apply in REWRITE_RULES:
        outcome = apply(stmt, database)  # type: ignore[operator]
        if outcome is None:
            continue
        new_stmt, detail = outcome
        if new_stmt != stmt:
            return new_stmt, rule, detail
    source = stmt.source
    if source is not None and source.is_subquery:
        assert source.subquery is not None
        nested = _fire_once(source.subquery, database)
        if nested is not None:
            body, rule, detail = nested
            new_source = dataclasses.replace(source, subquery=body)
            return (
                dataclasses.replace(stmt, source=new_source),
                rule,
                f"[in derived '{source.alias}'] {detail}",
            )
    for index, join in enumerate(stmt.joins):
        if not join.table.is_subquery:
            continue
        assert join.table.subquery is not None
        nested = _fire_once(join.table.subquery, database)
        if nested is None:
            continue
        body, rule, detail = nested
        new_ref = dataclasses.replace(join.table, subquery=body)
        joins = (
            stmt.joins[:index]
            + (dataclasses.replace(join, table=new_ref),)
            + stmt.joins[index + 1:]
        )
        return (
            dataclasses.replace(stmt, joins=joins),
            rule,
            f"[in derived '{join.table.alias}'] {detail}",
        )
    return None


def rewrite_statement(
    stmt,
    database,
    price: bool = True,
    optimizer: str | None = None,
):
    """Rewrite a SELECT (or UNION) statement to its fixpoint.

    Returns ``(statement, firings)``.  The rewritten AST depends only
    on the statement and the catalog — ``price`` controls whether each
    firing is priced through the cost model and counted in the metrics
    registry, never which rules fire, so the result cache's cheap
    fingerprint path (``price=False``) agrees byte-for-byte with the
    planner's priced pass.
    """
    if isinstance(stmt, UnionStatement):
        members = []
        firings: list[RuleFiring] = []
        for member in stmt.selects:
            rewritten, fired = rewrite_statement(
                member, database, price=price, optimizer=optimizer
            )
            members.append(rewritten)
            firings.extend(fired)
        if firings:
            stmt = UnionStatement(tuple(members))
        return stmt, tuple(firings)

    firings = []
    current: tuple[float | None, float | None] | None = None
    for _ in range(MAX_PASSES):
        fired = _fire_once(stmt, database)
        if fired is None:
            break
        new_stmt, rule, detail = fired
        est_before = est_after = cost_before = cost_after = None
        if price:
            if current is None:
                current = _plan_metrics(stmt, database, optimizer)
            est_before, cost_before = current
            current = _plan_metrics(new_stmt, database, optimizer)
            est_after, cost_after = current
            get_metrics().counter(f"engine.rewrite.{rule}").inc()
        firings.append(
            RuleFiring(
                rule, detail,
                est_before, est_after, cost_before, cost_after,
            )
        )
        stmt = new_stmt
    return stmt, tuple(firings)
