"""Adaptive feedback optimization: the loop that closes on q-error.

EXPLAIN ANALYZE and the slow-query log have recorded per-operator
est-vs-actual q-error since the optimizer landed — this module finally
*consumes* it.  A :class:`FeedbackController` hangs off each
feedback-enabled :class:`~repro.engine.database.Database` and owns
three pieces of state:

* a :class:`~repro.engine.memo.PlanMemo` — repeat executions of a
  fingerprint skip rewrite + DP planning entirely;
* a :class:`FeedbackStore` — per-fingerprint execution history (max
  q-error, planning time, memo decisions);
* :class:`SelectivityOverrides` — learned actual/estimate ratios keyed
  by join column pair (equi joins) and by band key + predicate shape
  (band joins), applied multiplicatively by the cardinality estimator.

Every SELECT executes instrumented.  After execution the controller
folds the observed per-operator actuals back; when a fingerprint's max
q-error exceeds the configured ceiling it reacts: targeted re-ANALYZE
of the tables under the offending operators, override ratios computed
against the *fresh* statistics (so the corrected estimate lands on the
observed cardinality, not on a stale baseline), and the memo entry
dropped so the next execution re-plans.  Plans thereby stop being a
pure function of stale statistics and become a converging function of
observed execution.

Obs: counters under ``engine.feedback.*`` and spans
(``engine.plan`` / ``engine.feedback.observe`` /
``engine.feedback.react``) cover every decision.
"""

from __future__ import annotations

import dataclasses
import threading
import time
from dataclasses import dataclass, field

from repro.engine.instrument import NodeStats, instrument_plan
from repro.engine.join import BandJoin, HashJoin
from repro.engine.memo import MemoEntry, PlanMemo
from repro.engine.operators import IndexRangeScan, PlanNode, SeqScan
from repro.engine.optimizer.cardinality import (
    CardinalityEstimator,
    profile_for_table,
)
from repro.obs.metrics import get_metrics
from repro.obs.trace import span

#: Learned ratios are clamped here: a single wild observation (an empty
#: intermediate, say) must not install a correction the estimator can
#: never recover from.
MIN_OVERRIDE_RATIO = 1e-6
MAX_OVERRIDE_RATIO = 1e6


# ----------------------------------------------------------------------
# learned selectivity overrides
# ----------------------------------------------------------------------
@dataclass
class OverrideEntry:
    """One learned correction: estimate *= ratio."""

    kind: str  # "equi" | "band"
    key: tuple
    ratio: float
    installs: int = 1
    fingerprint: str | None = None  # who learned it (for reports)


class SelectivityOverrides:
    """Actual/estimate ratios the cardinality estimator multiplies in.

    Keys are table-qualified column names (``"galaxy.zoneid"``), not
    aliases, so every query shape touching the same join shares one
    learned correction.  ``version`` bumps on every install; the plan
    memo snapshots it, so new knowledge forces a re-plan structurally.
    """

    def __init__(self):
        self._entries: dict[tuple, OverrideEntry] = {}
        self._lock = threading.Lock()
        self.version = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @staticmethod
    def equi_key(column_a: str, column_b: str) -> tuple:
        return ("equi", tuple(sorted((column_a, column_b))))

    @staticmethod
    def band_key(column: str, shape: tuple[str, str]) -> tuple:
        return ("band", column, shape)

    def install(
        self, kind: str, key: tuple, ratio: float,
        fingerprint: str | None = None,
    ) -> OverrideEntry:
        ratio = float(min(max(ratio, MIN_OVERRIDE_RATIO), MAX_OVERRIDE_RATIO))
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                entry = OverrideEntry(kind=kind, key=key, ratio=ratio,
                                      fingerprint=fingerprint)
                self._entries[key] = entry
            else:
                entry.ratio = ratio
                entry.installs += 1
                entry.fingerprint = fingerprint
            self.version += 1
            return entry

    def equi_ratio(self, column_a: str | None, column_b: str | None) -> float | None:
        if column_a is None or column_b is None:
            return None
        return self._ratio(self.equi_key(column_a, column_b))

    def band_ratio(self, column: str | None, shape: tuple[str, str]) -> float | None:
        if column is None:
            return None
        return self._ratio(self.band_key(column, shape))

    def _ratio(self, key: tuple) -> float | None:
        with self._lock:
            entry = self._entries.get(key)
            return entry.ratio if entry is not None else None

    def entries(self) -> list[OverrideEntry]:
        with self._lock:
            return list(self._entries.values())

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.version += 1

    def render(self) -> str:
        entries = self.entries()
        if not entries:
            return "learned overrides: none"
        lines = [f"learned overrides ({len(entries)}, generation {self.version}):"]
        for entry in entries:
            if entry.kind == "equi":
                what = " ~ ".join(entry.key[1])
            else:
                # band shapes are expression reprs; keep the line readable
                low, high = (s if len(s) <= 24 else s[:21] + "..."
                             for s in entry.key[2])
                what = f"{entry.key[1]} in [{low}, {high}]"
            lines.append(
                f"  {entry.kind}({what}): x{entry.ratio:.4g} "
                f"(installs={entry.installs})"
            )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# per-fingerprint execution history
# ----------------------------------------------------------------------
@dataclass
class FingerprintFeedback:
    """Everything observed about one statement fingerprint so far."""

    fingerprint: str
    sql: str = ""
    executions: int = 0
    replans: int = 0
    last_max_q: float = 1.0
    worst_max_q: float = 1.0
    last_decision: str | None = None
    last_planning_s: float = 0.0
    planning_total_s: float = 0.0
    #: Set when a ceiling breach demands a re-plan; consumed (and
    #: reported as the memo decision) by the next planning of this
    #: fingerprint.
    pending: str | None = None
    #: max q-error per execution, oldest first (bounded ring).
    q_trajectory: list[float] = field(default_factory=list)


class FeedbackStore:
    """Thread-safe map fingerprint -> :class:`FingerprintFeedback`."""

    _TRAJECTORY_CAP = 64

    def __init__(self):
        self._entries: dict[str, FingerprintFeedback] = {}
        self._lock = threading.Lock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def entry(self, fingerprint: str) -> FingerprintFeedback:
        with self._lock:
            entry = self._entries.get(fingerprint)
            if entry is None:
                entry = FingerprintFeedback(fingerprint=fingerprint)
                self._entries[fingerprint] = entry
            return entry

    def get(self, fingerprint: str) -> FingerprintFeedback | None:
        with self._lock:
            return self._entries.get(fingerprint)

    def record(
        self,
        fingerprint: str,
        sql: str,
        max_q: float,
        planning_s: float,
        decision: str | None,
    ) -> FingerprintFeedback:
        with self._lock:
            entry = self._entries.get(fingerprint)
            if entry is None:
                entry = FingerprintFeedback(fingerprint=fingerprint)
                self._entries[fingerprint] = entry
            if sql:
                entry.sql = sql
            entry.executions += 1
            entry.last_max_q = max_q
            entry.worst_max_q = max(entry.worst_max_q, max_q)
            entry.last_decision = decision
            entry.last_planning_s = planning_s
            entry.planning_total_s += planning_s
            if decision in ("replan", "learned-override"):
                entry.replans += 1
            entry.q_trajectory.append(max_q)
            if len(entry.q_trajectory) > self._TRAJECTORY_CAP:
                del entry.q_trajectory[0]
            return entry

    def set_pending(self, fingerprint: str, reason: str) -> None:
        self.entry(fingerprint).pending = reason

    def take_pending(self, fingerprint: str) -> str | None:
        with self._lock:
            entry = self._entries.get(fingerprint)
            if entry is None or entry.pending is None:
                return None
            reason, entry.pending = entry.pending, None
            return reason

    def entries(self) -> list[FingerprintFeedback]:
        with self._lock:
            return list(self._entries.values())

    def render(self) -> str:
        entries = self.entries()
        if not entries:
            return "feedback store: empty"
        lines = [f"feedback store ({len(entries)} fingerprints):"]
        for entry in sorted(entries, key=lambda e: -e.worst_max_q):
            sql = entry.sql if len(entry.sql) <= 72 else entry.sql[:69] + "..."
            lines.append(
                f"  {entry.fingerprint[:12]}  execs={entry.executions}  "
                f"q_last={entry.last_max_q:.2f}  q_worst={entry.worst_max_q:.2f}  "
                f"replans={entry.replans}  last={entry.last_decision or '-'}  "
                f"{sql}"
            )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# plan walking helpers (must mirror instrument_plan's traversal)
# ----------------------------------------------------------------------
def _walk_preorder(node: PlanNode) -> list[PlanNode]:
    """Nodes in the exact order :func:`instrument_plan` records them:
    preorder, children in dataclass field order."""
    order = [node]
    if dataclasses.is_dataclass(node):
        for f in dataclasses.fields(node):
            value = getattr(node, f.name)
            if isinstance(value, PlanNode):
                order.extend(_walk_preorder(value))
    return order


def _scan_leaves(node: PlanNode):
    """Base-table scans under a node (SeqScan / IndexRangeScan)."""
    if isinstance(node, SeqScan):
        yield node.alias.lower(), node.table
        return
    if isinstance(node, IndexRangeScan):
        yield node.alias.lower(), node.index.table
        return
    if dataclasses.is_dataclass(node):
        for f in dataclasses.fields(node):
            value = getattr(node, f.name)
            if isinstance(value, PlanNode):
                yield from _scan_leaves(value)


def _subtree_profiles(node: PlanNode) -> list:
    """Fresh relation profiles for every scan leaf under a node."""
    return [
        profile_for_table(table, alias)
        for alias, table in _scan_leaves(node)
    ]


def _band_shape(low, high) -> tuple[str, str]:
    """A stable structural key for a band's bound expressions.

    Bound expressions are frozen dataclasses, so ``repr`` is
    deterministic; two band joins with the same key column and the same
    bound shapes share one learned ratio.
    """
    return (repr(low) if low is not None else "",
            repr(high) if high is not None else "")


@dataclass(frozen=True)
class PlanKey:
    """Everything needed to memoize / track one statement."""

    memo_key: tuple[str, str]
    fingerprint: str
    tables: frozenset[str]
    sql: str


class FeedbackController:
    """The per-database feedback loop: memo + store + overrides."""

    def __init__(self, database, config):
        self.database = database
        self.ceiling = float(config.qerror_ceiling)
        self.signature = config.plan_signature()
        self.memo = PlanMemo(config.plan_memo_entries)
        self.store = FeedbackStore()
        self.overrides = SelectivityOverrides()
        metrics = get_metrics()
        self._m_executions = metrics.counter("engine.feedback.executions")
        self._m_breaches = metrics.counter("engine.feedback.breaches")
        self._m_reanalyzed = metrics.counter(
            "engine.feedback.reanalyzed_tables"
        )
        self._m_overrides = metrics.counter(
            "engine.feedback.overrides_installed"
        )
        self._m_replans = metrics.counter("engine.feedback.replans")
        self._h_max_q = metrics.histogram(
            "engine.feedback.max_q_error",
            buckets=(1.0, 2.0, 4.0, 8.0, 16.0, 64.0),
        )

    # ------------------------------------------------------------------
    # keying
    # ------------------------------------------------------------------
    def plan_key(self, stmt) -> PlanKey | None:
        """Memo key for a statement, or None when it must not memoize.

        Uses the same keying as the result cache and the Query Store
        (:func:`repro.engine.cache.plan_fingerprint`): the fingerprint
        hashes the printer-normalized, *post-rewrite* statement under a
        mode tag, so rewrite-equivalent spellings share one plan.
        Statements reading TVFs or unknown names — and anything planned
        while a matview is (re)materializing — are not memoizable.
        """
        from repro.engine.cache import plan_fingerprint

        keyed = plan_fingerprint(stmt, self.database)
        if keyed is None:
            return None
        fingerprint, sql, tables = keyed
        return PlanKey(
            memo_key=(fingerprint, self.signature),
            fingerprint=fingerprint,
            tables=frozenset(t.lower() for t in tables),
            sql=sql,
        )

    def stats_versions(self, tables) -> dict[str, int]:
        """Live statistics generations for the named tables."""
        out: dict[str, int] = {}
        for name in tables:
            key = name.lower()
            table = self.database._tables.get(key)
            out[key] = (
                getattr(table, "stats_version", 0) if table is not None else -1
            )
        return out

    @staticmethod
    def memoizable(plan: PlanNode) -> bool:
        """Matview-substituted plans must not memoize: substitution is
        re-decided per statement from the view's freshness, and a
        memoized substitution would outlive it."""
        for node in _walk_preorder(plan):
            reason = getattr(node, "reason", None)
            if reason and "answered from matview" in reason:
                return False
        return True

    # ------------------------------------------------------------------
    # the execution path (called by Executor._select)
    # ------------------------------------------------------------------
    def execute_select(self, stmt, planner):
        """Plan (or recall) a SELECT, execute instrumented, observe."""
        from repro.engine.sql.executor import QueryResult

        keyed = self.plan_key(stmt)
        plan: PlanNode | None = None
        decision: str | None = None
        plan_origin: str | None = None
        planning_s = 0.0
        table_versions: dict[str, int | None] = {}
        stats_versions: dict[str, int] = {}
        forcer = getattr(self.database, "plan_forcer", None)
        if keyed is not None and forcer is not None:
            # a forced fingerprint bypasses memo and feedback: the
            # operator pinned the plan, the loop must not fight it
            started = time.perf_counter()
            resolved = forcer.resolve(
                keyed.fingerprint, lambda: planner.plan_select(stmt)
            )
            if resolved is not None:
                plan, decision = resolved
                plan_origin = decision
                planning_s = time.perf_counter() - started
        if plan is None and keyed is not None:
            table_versions = self.database.table_versions(keyed.tables)
            stats_versions = self.stats_versions(keyed.tables)
            entry = self.memo.get(
                keyed.memo_key, table_versions, stats_versions,
                self.overrides.version,
            )
            if entry is not None:
                plan = entry.plan
                decision = "hit"
                plan_origin = entry.decision
        if plan is None:
            pending = (
                self.store.take_pending(keyed.fingerprint)
                if keyed is not None else None
            )
            decision = pending or "miss"
            plan_origin = decision
            started = time.perf_counter()
            with span(
                "engine.plan", layer="engine",
                attrs={
                    "decision": decision,
                    "fingerprint": keyed.fingerprint if keyed else "",
                },
            ):
                plan = planner.plan_select(stmt)
            planning_s = time.perf_counter() - started
            if pending is not None:
                self._m_replans.inc()
            if keyed is not None and self.memoizable(plan):
                self.memo.put(
                    keyed.memo_key, plan, keyed.tables,
                    table_versions, stats_versions,
                    self.overrides.version, planning_s,
                    decision=decision,
                )
        wrapped, records = instrument_plan(plan, self.database.pool.counters)
        batch = wrapped.execute()
        self.observe(keyed, plan, records, planning_s, decision)
        return QueryResult(
            columns=batch,
            plan=plan.explain(),
            fingerprint=keyed.fingerprint if keyed is not None else None,
            memo_decision=decision,
            plan_origin=plan_origin,
            plan_node=plan,
        )

    # ------------------------------------------------------------------
    # folding actuals back
    # ------------------------------------------------------------------
    def observe(
        self,
        keyed: PlanKey | None,
        plan: PlanNode,
        records: list[NodeStats],
        planning_s: float,
        decision: str | None,
    ) -> float:
        """Fold one execution's actuals into the store; maybe react."""
        with span("engine.feedback.observe", layer="engine",
                  attrs={"decision": decision or ""}):
            max_q = 1.0
            for rec in records:
                q = rec.q_error
                if q is not None and q > max_q:
                    max_q = q
            self._m_executions.inc()
            self._h_max_q.observe(max_q)
            if keyed is None:
                return max_q
            entry = self.store.record(
                keyed.fingerprint, keyed.sql, max_q, planning_s, decision
            )
            forcer = getattr(self.database, "plan_forcer", None)
            if (
                forcer is not None
                and forcer.get(keyed.fingerprint) is not None
            ):
                # the operator pinned this plan; reacting would install
                # overrides and demand a re-plan the pin must ignore
                return max_q
            if max_q > self.ceiling and entry.pending is None:
                self._m_breaches.inc()
                with span(
                    "engine.feedback.react", layer="engine",
                    attrs={
                        "fingerprint": keyed.fingerprint,
                        "max_q": round(max_q, 2),
                    },
                ):
                    self._react(keyed, plan, records)
            return max_q

    def _react(
        self, keyed: PlanKey, plan: PlanNode, records: list[NodeStats]
    ) -> None:
        """Ceiling breached: re-ANALYZE offenders, learn ratios, re-plan.

        Overrides are computed against the estimator's *fresh* (post
        re-ANALYZE) base selectivities, so the corrected estimate lands
        on the observed cardinality in one step instead of chasing a
        moving baseline.
        """
        nodes = _walk_preorder(plan)
        if len(nodes) != len(records):  # defensive: never corrupt state
            self.store.set_pending(keyed.fingerprint, "replan")
            self.memo.invalidate_fingerprint(keyed.fingerprint)
            return
        stats_by_node = {id(node): rec for node, rec in zip(nodes, records)}
        offenders = [
            (node, rec)
            for node, rec in zip(nodes, records)
            if rec.q_error is not None and rec.q_error > self.ceiling
        ]

        # 1. targeted re-ANALYZE of every table under an offending node
        doomed_tables: dict[str, object] = {}
        for node, _rec in offenders:
            for alias, table in _scan_leaves(node):
                doomed_tables[table.name.lower()] = table
        for name in sorted(doomed_tables):
            self.database.analyze(name)
            self._m_reanalyzed.inc()

        # 2. learn selectivity ratios for the offending joins, against
        #    the now-fresh statistics
        installed = 0
        for node, rec in offenders:
            if not isinstance(node, (HashJoin, BandJoin)):
                continue
            installed += self._learn_join_ratio(
                keyed.fingerprint, node, rec, stats_by_node
            )
        if installed:
            self._m_overrides.inc(installed)

        # 3. force the re-plan: drop this fingerprint's memo entries and
        #    flag the store so the next planning reports its decision
        self.memo.invalidate_fingerprint(keyed.fingerprint)
        self.store.set_pending(
            keyed.fingerprint,
            "learned-override" if installed else "replan",
        )

    def _learn_join_ratio(
        self,
        fingerprint: str,
        node: HashJoin | BandJoin,
        rec: NodeStats,
        stats_by_node: dict[int, NodeStats],
    ) -> int:
        """Install one observed/estimated ratio for a join node.

        Returns the number of overrides installed (0 or 1).  The
        observed join selectivity is ``out / (left * right)`` per call;
        zero-row inputs are skipped — there is nothing to learn from an
        empty side, and the ratio would be undefined.
        """
        left_rec = stats_by_node.get(id(node.left))
        right_rec = stats_by_node.get(id(node.right))
        if left_rec is None or right_rec is None:
            return 0
        left_rows = left_rec.rows_per_call
        right_rows = right_rec.rows_per_call
        if left_rows <= 0 or right_rows <= 0:
            return 0
        observed = max(rec.rows_per_call, 1.0) / (left_rows * right_rows)

        estimator = CardinalityEstimator(_subtree_profiles(node))
        if isinstance(node, HashJoin):
            key_a = estimator.column_key(node.left_key)
            key_b = estimator.column_key(node.right_key)
            if key_a is None or key_b is None:
                return 0
            base = estimator.equi_selectivity(node.left_key, node.right_key)
            base *= estimator.selectivity(node.residual)
            if base <= 0.0:
                return 0
            self.overrides.install(
                "equi", SelectivityOverrides.equi_key(key_a, key_b),
                observed / base, fingerprint,
            )
            return 1
        key = estimator.column_key(node.right_key)
        if key is None:
            return 0
        base = estimator.band_selectivity(node.right_key, node.low, node.high)
        base *= estimator.selectivity(node.residual)
        if base <= 0.0:
            return 0
        shape = _band_shape(node.low, node.high)
        self.overrides.install(
            "band", SelectivityOverrides.band_key(key, shape),
            observed / base, fingerprint,
        )
        return 1

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def summary(self) -> dict[str, float]:
        """Memo counters + feedback totals, for reports and workers."""
        out = {f"memo_{k}": v for k, v in self.memo.summary().items()}
        entries = self.store.entries()
        out["fingerprints"] = len(entries)
        out["executions"] = sum(e.executions for e in entries)
        out["replans"] = sum(e.replans for e in entries)
        out["overrides"] = len(self.overrides)
        return out

    def render(self) -> str:
        """Full textual state: memo, store, overrides."""
        return "\n".join([
            self.memo.render(),
            self.store.render(),
            self.overrides.render(),
        ])
