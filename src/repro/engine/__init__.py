"""A small column-store relational engine with a SQL front end.

The substrate standing in for Microsoft SQL Server 2000: typed tables
over 8 KiB pages with an LRU buffer pool (I/O accounting), clustered
and hash indexes, hash/nested-loop/cross joins, grouped aggregation,
and a SQL subset (SELECT/INSERT/UPDATE/DELETE/CREATE/DROP/TRUNCATE).
"""

from repro.engine.database import Database, TableFunction
from repro.engine.instrument import AnalyzeReport, explain_analyze
from repro.engine.pages import BufferPool, PAGE_BYTES
from repro.engine.schema import Column, TableSchema, schema
from repro.engine.stats import IOCounters, TaskStats, TaskTimer
from repro.engine.table import Table
from repro.engine.types import ColumnType

__all__ = [
    "BufferPool",
    "Column",
    "ColumnType",
    "AnalyzeReport",
    "Database",
    "IOCounters",
    "PAGE_BYTES",
    "Table",
    "TableSchema",
    "TaskStats",
    "TableFunction",
    "TaskTimer",
    "explain_analyze",
    "schema",
]
