"""The Database: named tables, indexes, one buffer pool, SQL entry point.

This is the reproduction's "SQL Server instance".  A
:class:`Database` owns a buffer pool (default sized to the paper's 2 GB
nodes), a catalog of tables, optional clustered/hash indexes, and a
``sql()`` method that parses, plans and executes statements.  All I/O
accounting funnels through ``db.pool.counters`` so a
:class:`~repro.engine.stats.TaskTimer` wrapped around any workload
yields the (elapsed, cpu, io) triples of Table 1.
"""

from __future__ import annotations

import warnings
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.engine.cache import (
    ResultCache,
    referenced_tables,
    statement_fingerprint,
)
from repro.engine.config import DEFAULT_ENGINE_CONFIG, EngineConfig
from repro.engine.expressions import batch_length
from repro.engine.index import ClusteredIndex, HashIndex
from repro.engine.matview import MaterializedView
from repro.engine.pages import BufferPool, DEFAULT_POOL_PAGES
from repro.engine.schema import Column, TableSchema
from repro.engine.sql.executor import Executor, QueryResult
from repro.engine.sql.parser import parse, parse_script
from repro.engine.stats import IOCounters
from repro.engine.table import Table
from repro.engine.types import ColumnType, infer_type
from repro.errors import EngineError, TableNotFoundError

#: Marker distinguishing "kwarg not given" from an explicit value in the
#: deprecated per-knob constructor shim.
_UNSET = object()


@dataclass(frozen=True)
class TableFunction:
    """A registered table-valued function.

    ``fn(*scalar_args)`` must return a column batch
    (``dict[str, np.ndarray]``) whose keys match ``columns``.
    """

    name: str
    columns: tuple[str, ...]
    fn: Callable


class Database:
    """A single-node database instance."""

    def __init__(
        self,
        name: str = "db",
        pool_pages=_UNSET,
        optimizer=_UNSET,
        intra_query_workers=_UNSET,
        band_joins=_UNSET,
        *,
        config: EngineConfig | None = None,
    ):
        from repro.engine.parallel import resolve_workers

        legacy = {
            key: value
            for key, value in (
                ("pool_pages", pool_pages),
                ("optimizer", optimizer),
                ("intra_query_workers", intra_query_workers),
                ("band_joins", band_joins),
            )
            if value is not _UNSET
        }
        if legacy:
            if config is not None:
                raise EngineError(
                    "pass engine knobs via config=EngineConfig(...) only; "
                    f"got both config= and legacy kwargs {sorted(legacy)}"
                )
            warnings.warn(
                f"Database({', '.join(sorted(legacy))}=...) kwargs are "
                "deprecated; pass config=EngineConfig(...) instead",
                DeprecationWarning,
                stacklevel=2,
            )
            config = EngineConfig(**legacy)
        elif config is None:
            config = DEFAULT_ENGINE_CONFIG

        self.name = name
        #: The full knob set this instance was built with (an
        #: :class:`~repro.engine.config.EngineConfig`).
        self.config = config
        self.optimizer_mode = config.optimizer
        #: Morsel-parallel workers per operator (1 = sequential; output
        #: is byte-identical for any setting).
        self.intra_query_workers = resolve_workers(config.intra_query_workers)
        #: Allow the cost planner to extract BandJoin operators from
        #: range conjuncts (off = nested-loop baseline, for benchmarks).
        self.band_join_enabled = bool(config.band_joins)
        #: Run the logical rewrite pass between parse and plan (the
        #: planner reads this attribute; off restores pre-rewrite plans).
        self.rewrites_enabled = bool(config.rewrites)
        #: Lower plan expressions into fused kernels (CSE + selection
        #: vectors); the planner stamps ``compiled`` on every operator.
        self.compiled_expressions = bool(config.compiled_expressions)
        #: Pick per-column page codecs from ANALYZE statistics so rows
        #: pack denser and scans cost fewer logical reads.
        self.page_compression = bool(config.page_compression)
        self.pool = BufferPool(config.pool_pages)
        #: Shared semantic result cache, or None when disabled.
        self.result_cache: ResultCache | None = (
            ResultCache(
                max_bytes=config.cache_max_bytes,
                max_entries=config.cache_max_entries,
                ttl_s=config.cache_ttl_s,
            )
            if config.result_cache
            else None
        )
        #: Adaptive feedback optimizer (plan memo + q-error loop), or
        #: None when disabled.  Built before the Executor so the
        #: execution path can route SELECTs through it.
        self.feedback = None
        if config.feedback:
            from repro.engine.optimizer.feedback import FeedbackController

            self.feedback = FeedbackController(self, config)
        #: Query Store (workload history + plan forcing), or None when
        #: disabled.  The forcer exists iff the store does.
        self.query_store = None
        self.plan_forcer = None
        if config.query_store:
            from repro.engine.optimizer.planforce import PlanForcer
            from repro.obs.querystore import QueryStore

            self.query_store = QueryStore(
                interval_s=config.query_store_interval_s,
                max_queries=config.query_store_max_queries,
            )
            self.plan_forcer = PlanForcer()
        self._tables: dict[str, Table] = {}
        self._clustered: dict[str, ClusteredIndex] = {}
        self._hash: dict[tuple[str, str], HashIndex] = {}
        self._views: dict[str, object] = {}  # name -> SelectStatement
        self._matviews: dict[str, MaterializedView] = {}
        #: >0 while (re)materializing a view's defining SELECT, so the
        #: planner does not answer the refresh from the view itself.
        self._matview_plan_depth = 0
        self._table_functions: dict[str, TableFunction] = {}
        self._procedures: dict[str, Callable] = {}
        self._executor = Executor(self)

    # ------------------------------------------------------------------
    # catalog
    # ------------------------------------------------------------------
    def _maybe_sync_system_views(self, key: str) -> None:
        """Lazily (re)materialize a Query Store system view on lookup.

        The single ``query_store is None`` check keeps the disabled
        path inside the observer-effect budget.
        """
        if self.query_store is None:
            return
        from repro.obs.querystore import QUERY_STORE_VIEWS

        if key in QUERY_STORE_VIEWS:
            self.query_store.sync_views(self)

    def is_system_table(self, name: str) -> bool:
        """Is this a store-maintained catalog table (DML-guarded)?"""
        if self.query_store is None:
            return False
        from repro.obs.querystore import QUERY_STORE_VIEWS

        return name.lower() in QUERY_STORE_VIEWS

    def has_table(self, name: str) -> bool:
        key = name.lower()
        if key not in self._tables:
            self._maybe_sync_system_views(key)
        return key in self._tables

    def table(self, name: str) -> Table:
        key = name.lower()
        self._maybe_sync_system_views(key)
        try:
            return self._tables[key]
        except KeyError:
            raise TableNotFoundError(
                f"no table '{name}' in database '{self.name}'"
            ) from None

    def table_names(self) -> list[str]:
        return sorted(self._tables)

    def create_table_from_schema(self, schema: TableSchema) -> Table:
        key = schema.name.lower()
        if key in self._tables or key in self._views:
            raise EngineError(f"table '{schema.name}' already exists")
        table = Table(schema, self.pool)
        self._tables[key] = table
        return table

    def create_table(
        self,
        name: str,
        columns: dict[str, np.ndarray],
        primary_key: str | None = None,
    ) -> Table:
        """Create a table from column arrays, inferring types."""
        schema = TableSchema(
            name=name,
            columns=tuple(
                Column(col, infer_type(arr)) for col, arr in columns.items()
            ),
            primary_key=primary_key,
        )
        table = self.create_table_from_schema(schema)
        if next(iter(columns.values()), np.empty(0)).__len__():
            table.insert(columns)
        return table

    def drop_table(self, name: str, if_exists: bool = False) -> None:
        key = name.lower()
        if key in self._matviews:
            raise EngineError(
                f"'{name}' is a materialized view; "
                "use DROP MATERIALIZED VIEW"
            )
        self._drop_table_storage(key, name, if_exists)

    def _drop_table_storage(self, key: str, name: str, if_exists: bool) -> None:
        if key not in self._tables:
            if if_exists:
                return
            raise TableNotFoundError(f"no table '{name}' to drop")
        self._tables[key].file.invalidate()
        del self._tables[key]
        self._clustered.pop(key, None)
        for hash_key in [k for k in self._hash if k[0] == key]:
            del self._hash[hash_key]
        if self.result_cache is not None:
            self.result_cache.invalidate_table(key)
        if self.feedback is not None:
            self.feedback.memo.invalidate_table(key)

    # ------------------------------------------------------------------
    # views, table functions, procedures
    # ------------------------------------------------------------------
    def create_view(self, name: str, select_statement) -> None:
        """Register a view over a SELECT (the paper's ``Zone`` view)."""
        key = name.lower()
        if key in self._tables or key in self._views or key in self._matviews:
            raise EngineError(f"name '{name}' already exists")
        # validate eagerly: the view must plan against the current catalog
        from repro.engine.sql.planner import Planner

        Planner(self).plan_select(select_statement)
        self._views[key] = select_statement

    def has_view(self, name: str) -> bool:
        return name.lower() in self._views

    def view(self, name: str):
        try:
            return self._views[name.lower()]
        except KeyError:
            raise TableNotFoundError(f"no view '{name}'") from None

    def drop_view(self, name: str, if_exists: bool = False) -> None:
        if name.lower() not in self._views:
            if if_exists:
                return
            raise TableNotFoundError(f"no view '{name}' to drop")
        del self._views[name.lower()]

    def view_names(self) -> list[str]:
        return sorted(self._views)

    # ------------------------------------------------------------------
    # materialized views
    # ------------------------------------------------------------------
    def has_matview(self, name: str) -> bool:
        return name.lower() in self._matviews

    def matview(self, name: str) -> MaterializedView:
        try:
            return self._matviews[name.lower()]
        except KeyError:
            raise TableNotFoundError(
                f"no materialized view '{name}'"
            ) from None

    def matview_names(self) -> list[str]:
        return sorted(self._matviews)

    @contextmanager
    def _materializing(self):
        """Suspend matview substitution while a defining SELECT runs."""
        self._matview_plan_depth += 1
        try:
            yield
        finally:
            self._matview_plan_depth -= 1

    def create_materialized_view(self, name: str, select_statement):
        """``CREATE MATERIALIZED VIEW name AS SELECT ...``.

        Runs the SELECT once, stores its rows in a regular catalog table
        named after the view (so it counts against MyDB quotas and is
        queryable with plain ``FROM name``), and records the version of
        every source table for staleness tracking.
        """
        from repro.engine.cache import normalize_statement

        key = name.lower()
        if key in self._tables or key in self._views or key in self._matviews:
            raise EngineError(f"name '{name}' already exists")
        sources = referenced_tables(select_statement, self)
        if sources is None:
            raise EngineError(
                f"materialized view '{name}' must read base tables or "
                "views only (no table-valued functions)"
            )
        with self._materializing():
            result = self._executor.execute(select_statement)
        self.create_table(key, {k: np.asarray(v)
                                for k, v in result.columns.items()})
        view = MaterializedView(
            name=key,
            select=select_statement,
            normalized_sql=normalize_statement(select_statement),
            source_tables=frozenset(sources),
            source_versions={
                t: self._tables[t].version for t in sources
            },
        )
        self._matviews[key] = view
        return view

    def refresh_materialized_view(self, name: str) -> int:
        """Re-run a matview's SELECT; returns the new row count."""
        view = self.matview(name)
        with self._materializing():
            result = self._executor.execute(view.select)
        table = self.table(view.name)
        table.truncate()
        if result.row_count:
            table.insert({k: np.asarray(v)
                          for k, v in result.columns.items()})
        self.invalidate_indexes(view.name)
        view.source_versions = {
            t: self._tables[t].version for t in view.source_tables
        }
        view.refresh_count += 1
        return result.row_count

    def drop_materialized_view(self, name: str, if_exists: bool = False) -> None:
        key = name.lower()
        if key not in self._matviews:
            if if_exists:
                return
            raise TableNotFoundError(
                f"no materialized view '{name}' to drop"
            )
        del self._matviews[key]
        self._drop_table_storage(key, name, if_exists=False)

    def matview_stale(self, name: str) -> bool:
        """Has any source table changed since the last (re)materialize?"""
        view = self.matview(name)
        return view.stale_against(self.table_versions(view.source_tables))

    def matching_matview(self, stmt) -> MaterializedView | None:
        """A *fresh* matview whose definition equals this SELECT, if any.

        Returns None while a matview is being (re)materialized so a
        REFRESH never answers itself from the rows it is rebuilding.
        """
        from repro.engine.cache import normalize_statement
        from repro.engine.sql.ast import SelectStatement
        from repro.obs.metrics import get_metrics

        if not self._matviews or self._matview_plan_depth:
            return None
        if not isinstance(stmt, SelectStatement):
            return None
        normalized = normalize_statement(stmt)
        for view in self._matviews.values():
            if view.normalized_sql != normalized:
                continue
            if view.stale_against(self.table_versions(view.source_tables)):
                get_metrics().counter("engine.matview.stale_skips").inc()
                continue
            get_metrics().counter("engine.matview.substitutions").inc()
            return view
        return None

    def create_table_function(
        self, name: str, columns: tuple[str, ...], fn: Callable
    ) -> TableFunction:
        """Register a table-valued function callable from SQL FROM clauses."""
        key = name.lower()
        if key in self._table_functions:
            raise EngineError(f"table function '{name}' already exists")
        tvf = TableFunction(name=key, columns=tuple(c.lower() for c in columns),
                            fn=fn)
        self._table_functions[key] = tvf
        return tvf

    def table_function(self, name: str) -> TableFunction:
        try:
            return self._table_functions[name.lower()]
        except KeyError:
            raise TableNotFoundError(
                f"no table-valued function '{name}'"
            ) from None

    def create_procedure(self, name: str, fn: Callable) -> None:
        """Register a stored procedure: ``fn(db, *args)``.

        Invoked from SQL with ``EXEC name arg, arg`` — the deployment
        unit of the paper's MaxBCG ("the SQL code ... is deployed on the
        available Data-Grid nodes").
        """
        key = name.lower()
        if key in self._procedures:
            raise EngineError(f"procedure '{name}' already exists")
        self._procedures[key] = fn

    def call_procedure(self, name: str, *args):
        try:
            procedure = self._procedures[name.lower()]
        except KeyError:
            raise TableNotFoundError(f"no procedure '{name}'") from None
        return procedure(self, *args)

    def procedure_names(self) -> list[str]:
        return sorted(self._procedures)

    # ------------------------------------------------------------------
    # indexes
    # ------------------------------------------------------------------
    def create_clustered_index(self, table_name: str, *keys: str) -> ClusteredIndex:
        """Build (or rebuild) the table's clustered index — ``spZone``'s job."""
        table = self.table(table_name)
        index = ClusteredIndex(table, tuple(keys))
        index.build()
        self._clustered[table_name.lower()] = index
        # physical order changed: row-position-based hash indexes are stale
        for hash_key in [k for k in self._hash if k[0] == table_name.lower()]:
            self._hash[hash_key].invalidate()
        return index

    def clustered_index(self, table_name: str) -> ClusteredIndex | None:
        return self._clustered.get(table_name.lower())

    def create_hash_index(self, table_name: str, key: str) -> HashIndex:
        table = self.table(table_name)
        index = HashIndex(table, key)
        index.build()
        self._hash[(table_name.lower(), key.lower())] = index
        return index

    def hash_index(self, table_name: str, key: str) -> HashIndex | None:
        return self._hash.get((table_name.lower(), key.lower()))

    def invalidate_indexes(self, table_name: str) -> None:
        """Mark indexes stale after DML; clustered order survives appends
        only logically — we rebuild lazily by dropping it.

        Also eagerly drops result-cache entries that read the table.
        (Version-keyed lookups would miss them regardless; dropping now
        reclaims the memory and makes invalidation observable.)
        """
        self._clustered.pop(table_name.lower(), None)
        for hash_key in [k for k in self._hash if k[0] == table_name.lower()]:
            self._hash[hash_key].invalidate()
        if self.result_cache is not None:
            self.result_cache.invalidate_table(table_name)
        if self.feedback is not None:
            # version-keyed memo lookups would miss anyway; eager drop
            # reclaims the plans and makes the invalidation observable
            self.feedback.memo.invalidate_table(table_name)

    # ------------------------------------------------------------------
    # versions and the result cache
    # ------------------------------------------------------------------
    def table_versions(self, names) -> dict[str, int | None]:
        """Live version counters for the named tables (None = missing)."""
        out: dict[str, int | None] = {}
        for name in names:
            key = name.lower()
            table = self._tables.get(key)
            out[key] = table.version if table is not None else None
        return out

    def _cache_key(self, stmt):
        """``(key, tables)`` for a cacheable statement, else None.

        The key pairs the normalized-statement fingerprint with a
        sorted (table, version) tuple, so any DML or load on a
        referenced table makes subsequent lookups miss structurally.

        With rewrites enabled the fingerprint hashes the *rewritten*
        statement under a ``+rewrite``-tagged mode: a query and its
        rewrite-equivalent forms (tautologies, no-op view wraps, CTE
        spellings) share one cache entry, while a rewrites-off instance
        can never cross-serve a rewrites-on entry or vice versa.
        Invalidation tables come from the original statement — rewrites
        only ever drop relations, never add them.
        """
        from repro.engine.sql.ast import SelectStatement, UnionStatement

        if self.result_cache is None:
            return None
        if not isinstance(stmt, (SelectStatement, UnionStatement)):
            return None
        tables = referenced_tables(stmt, self)
        if tables is None:
            return None
        mode = self.optimizer_mode
        fingerprint_stmt = stmt
        if self.rewrites_enabled:
            from repro.engine.optimizer.rewrite import rewrite_statement

            try:
                fingerprint_stmt, _ = rewrite_statement(
                    stmt, self, price=False
                )
            except Exception:
                return None  # unpriceable shape: skip caching, run it
            mode = f"{mode}+rewrite"
        if self.compiled_expressions:
            mode = f"{mode}+compiled"
        versions = tuple(
            sorted((t, self._tables[t].version) for t in tables)
        )
        return (
            (statement_fingerprint(fingerprint_stmt, mode), versions),
            tables,
        )

    # ------------------------------------------------------------------
    # SQL entry points
    # ------------------------------------------------------------------
    def sql(self, text: str) -> QueryResult:
        """Parse and execute one SQL statement.

        Execution runs inside an ``engine.sql`` trace span (a no-op
        when tracing is disabled) and statements over the slow-query
        threshold are recorded with their SQL text and — for SELECTs —
        the plan that ran.
        """
        import time as _time

        from repro.obs.slowlog import get_slow_log
        from repro.obs.trace import span

        stmt = parse(text)
        store = self.query_store
        keyed = self._cache_key(stmt)
        if keyed is not None:
            key, tables = keyed
            cache_started = _time.perf_counter()
            entry = self.result_cache.get(key)  # type: ignore[union-attr]
            if entry is not None:
                if store is not None:
                    # a cache hit ran no plan: attach it to the
                    # fingerprint's current plan in the store
                    store.record(
                        fingerprint=key[0],
                        sql="",
                        elapsed_s=_time.perf_counter() - cache_started,
                        rows=batch_length(entry.columns),
                        decision="cache-hit",
                        cache_hit=True,
                    )
                return QueryResult(
                    columns=entry.columns,
                    plan="[answered from cache]\n" + entry.plan
                    if entry.plan else "[answered from cache]",
                )
        started = _time.perf_counter()
        cpu_started = _time.thread_time() if store is not None else 0.0
        reads_before = (
            self.pool.counters.logical_reads if store is not None else 0
        )
        with span("engine.sql", layer="engine", counters=self.pool.counters,
                  attrs={"db": self.name, "sql": text.strip()[:200]}):
            result = self._executor.execute(stmt)
        elapsed = _time.perf_counter() - started
        if store is not None and result.fingerprint is not None:
            store.record(
                fingerprint=result.fingerprint,
                sql=text.strip(),
                elapsed_s=elapsed,
                cpu_s=_time.thread_time() - cpu_started,
                rows=result.row_count,
                logical_reads=(
                    self.pool.counters.logical_reads - reads_before
                ),
                plan_text=result.plan,
                plan_signature=self.config.plan_signature(),
                decision=result.memo_decision,
                plan_origin=result.plan_origin,
                plan_node=result.plan_node,
                memo_hit=result.memo_decision == "hit",
            )
        if keyed is not None:
            self.result_cache.put(  # type: ignore[union-attr]
                key, result.columns, result.plan, tables
            )
        slow_log = get_slow_log()
        if slow_log.is_slow(elapsed):
            from repro.engine.sql.ast import SelectStatement
            from repro.engine.sql.printer import statement_to_sql

            plan = None
            statement_text = text.strip()
            if isinstance(stmt, SelectStatement):
                try:
                    statement_text = statement_to_sql(stmt)
                    plan = self.explain(text)
                except Exception:  # logging must never fail the query
                    pass
            slow_log.record(statement_text, elapsed, plan=plan,
                            database=self.name,
                            fingerprint=result.fingerprint,
                            memo=result.memo_decision,
                            plan_signature=(
                                self.config.plan_signature()
                                if result.fingerprint is not None else None
                            ),
                            decision=result.plan_origin)
        return result

    def run_script(self, text: str) -> list[QueryResult]:
        """Execute a ';'-separated script, returning per-statement results."""
        return [self._executor.execute(stmt) for stmt in parse_script(text)]

    def explain_analyze(self, text: str, optimizer: str | None = None):
        """Execute a SELECT with per-operator instrumentation.

        Returns an :class:`~repro.engine.instrument.AnalyzeReport` whose
        ``render()`` shows rows/time/I/O and estimated-vs-actual q-error
        per plan node.  ``optimizer`` overrides the database's mode for
        this one statement.
        """
        from repro.engine.instrument import explain_analyze

        return explain_analyze(self, text, optimizer=optimizer)

    def explain(self, text: str, optimizer: str | None = None) -> str:
        """Plan a SELECT and return the operator tree as text."""
        from repro.engine.sql.ast import SelectStatement
        from repro.engine.sql.planner import Planner

        stmt = parse(text)
        if not isinstance(stmt, SelectStatement):
            raise EngineError("EXPLAIN supports SELECT statements only")
        plan_text = Planner(self, optimizer).plan_select(stmt).explain()
        keyed = (
            self._cache_key(stmt)
            if optimizer in (None, self.optimizer_mode)
            else None
        )
        if keyed is not None:
            key, _tables = keyed
            if self.result_cache.peek(key) is not None:  # type: ignore[union-attr]
                return "[answered from cache]\n" + plan_text
        return plan_text

    # ------------------------------------------------------------------
    # query store and plan forcing
    # ------------------------------------------------------------------
    def statement_key(self, text: str) -> str | None:
        """The fingerprint one SELECT text is tracked under, or None.

        The join key across the Query Store, the plan memo, the
        feedback store and the slow-query log.
        """
        from repro.engine.cache import plan_fingerprint

        keyed = plan_fingerprint(parse(text), self)
        return keyed[0] if keyed is not None else None

    def force_plan(self, fingerprint: str, plan_id: int):
        """Pin a fingerprint to a plan from its Query Store history.

        Every execution of the fingerprint runs the pinned plan,
        bypassing the plan memo and the feedback loop, until
        :meth:`unforce_plan`.  Survives restarts via ``save_database``:
        a restored pin is re-established by structural signature on the
        fingerprint's next execution.
        """
        if self.query_store is None:
            raise EngineError(
                "plan forcing requires EngineConfig(query_store=True)"
            )
        plan = self.query_store.plan(plan_id)
        if plan is None:
            raise EngineError(f"query store has no plan {plan_id}")
        if plan.fingerprint != fingerprint:
            raise EngineError(
                f"plan {plan_id} belongs to fingerprint "
                f"'{plan.fingerprint[:12]}', not '{fingerprint[:12]}'"
            )
        entry = self.plan_forcer.force(
            fingerprint=fingerprint,
            plan_id=plan_id,
            structure=plan.structure,
            plan_text=plan.plan_text,
            plan_signature=plan.plan_signature,
            node=plan.node,
        )
        if self.feedback is not None:
            self.feedback.memo.invalidate_fingerprint(fingerprint)
        return entry

    def unforce_plan(self, fingerprint: str) -> bool:
        """Remove a pin; returns whether one existed."""
        if self.plan_forcer is None:
            raise EngineError(
                "plan forcing requires EngineConfig(query_store=True)"
            )
        removed = self.plan_forcer.unforce(fingerprint)
        if removed is not None and self.feedback is not None:
            # the pinned plan may be memoized stale; force a re-plan
            self.feedback.memo.invalidate_fingerprint(fingerprint)
        return removed is not None

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    def analyze(self, table_name: str | None = None) -> list[str]:
        """Collect optimizer statistics (``ANALYZE [table]`` in SQL).

        Builds row counts, per-column NDV/min/max/null-fraction and
        equi-depth histograms for one table — or, with no argument, for
        every table in the catalog — and attaches them as
        ``table.stats``.  Returns the names of the analyzed tables.
        """
        from repro.engine.optimizer.statistics import build_table_stats

        if table_name is not None:
            names = [self.table(table_name).name]
        else:
            names = self.table_names()
        for name in names:
            table = self.table(name)
            table.stats = build_table_stats(table)
            # statistics generation moved: any plan chosen under the old
            # stats must miss the memo and re-plan, even though the data
            # (table.version) has not changed
            table.stats_version += 1
            if self.page_compression:
                from repro.engine.pages import choose_codecs

                table.apply_compression(
                    choose_codecs(table.stats, table.schema)
                )
            if self.feedback is not None:
                self.feedback.memo.invalidate_table(name)
        return [n.lower() for n in names]

    # ------------------------------------------------------------------
    @property
    def io_counters(self) -> IOCounters:
        return self.pool.counters

    def stats_summary(self) -> dict[str, int]:
        """Totals for reports: tables, rows, pages, I/O counters."""
        summary = {
            "tables": len(self._tables),
            "rows": sum(t.row_count for t in self._tables.values()),
            "pages": sum(t.page_count for t in self._tables.values()),
            "logical_reads": self.pool.counters.logical_reads,
            "physical_reads": self.pool.counters.physical_reads,
            "writes": self.pool.counters.writes,
            "matviews": len(self._matviews),
        }
        if self.result_cache is not None:
            for key, value in self.result_cache.summary().items():
                summary[f"cache_{key}"] = value
        if self.query_store is not None:
            for key, value in self.query_store.summary().items():
                summary[f"querystore_{key}"] = value
        return summary
