"""Physical operators: the engine's executable plan nodes.

Execution is batch-materialized: each operator produces a complete
column batch (``dict[str, np.ndarray]``).  For the data volumes of the
reproduction this is both the simplest and the fastest model in
Python — the set-oriented idiom the paper advocates, as opposed to the
tuple-at-a-time cursor it criticizes.

Batch keys are qualified, ``"<alias>.<column>"``, so joins can expose
both sides without collisions; expression evaluation resolves bare
names when unambiguous.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.engine.expressions import Batch, Expr, batch_length
from repro.engine.index import ClusteredIndex
from repro.engine.table import Table
from repro.errors import SqlPlanError


def take(batch: Batch, selector) -> Batch:
    """Row subset of every column (mask or fancy index)."""
    # Columns are almost always ndarrays already; np.asarray on every
    # column of every operator is pure allocation churn, so only coerce
    # the odd list-backed batch a test may hand in.
    return {
        k: (v if isinstance(v, np.ndarray) else np.asarray(v))[selector]
        for k, v in batch.items()
    }


def empty_like(batch: Batch) -> Batch:
    return {
        k: (v if isinstance(v, np.ndarray) else np.asarray(v))[:0]
        for k, v in batch.items()
    }


class PlanNode:
    """Base class of executable plan nodes."""

    #: Optimizer row estimate, stamped by ``annotate_plan`` after
    #: planning.  A class attribute so the operator dataclasses keep
    #: their positional constructors; instances overwrite it in place.
    est_rows: float | None = None

    #: Fused-kernel execution, stamped by the planner when
    #: ``EngineConfig(compiled_expressions=True)`` (the default).
    #: Operators with expressions lower them into
    #: :class:`~repro.engine.compile.CompiledKernel` programs (CSE +
    #: selection vectors) instead of interpreting ``Expr.eval`` node by
    #: node; results are byte-identical either way.
    compiled: bool = False

    #: Logical-rewrite audit trail: one line per fired rule, stamped on
    #: the plan *root* by the planner when the rewrite pass changed the
    #: statement.  Rendered ahead of the operator tree by EXPLAIN.
    rewrite_trace: tuple[str, ...] = ()

    def execute(self) -> Batch:
        raise NotImplementedError

    def explain(self, depth: int = 0) -> str:
        """Indented plan description (the engine's EXPLAIN output)."""
        line = "  " * depth + self._describe()
        if self.est_rows is not None:
            line += f"  [est={self.est_rows:.0f} rows]"
        lines = [line]
        for child in self._children():
            lines.append(child.explain(depth + 1))
        text = "\n".join(lines)
        if depth == 0 and self.rewrite_trace:
            text = "\n".join(self.rewrite_trace) + "\n" + text
        return text

    def _describe(self) -> str:
        return type(self).__name__

    def _children(self) -> tuple["PlanNode", ...]:
        return ()


@dataclass
class SeqScan(PlanNode):
    """Full table scan; qualifies columns with the alias.

    ``reason`` records *why* the planner fell back to a scan when an
    index existed (e.g. an OR predicate on the leading key) so EXPLAIN
    surfaces missed access paths instead of hiding them.
    """

    table: Table
    alias: str
    reason: str | None = None

    def execute(self) -> Batch:
        raw = self.table.scan()
        prefix = self.alias.lower()
        return {f"{prefix}.{name}": arr for name, arr in raw.items()}

    def _describe(self) -> str:
        base = f"SeqScan({self.table.name} AS {self.alias})"
        if self.reason:
            base += f" [{self.reason}]"
        return base


@dataclass
class IndexRangeScan(PlanNode):
    """Clustered-index range scan on the leading key."""

    index: ClusteredIndex
    lo: object
    hi: object
    alias: str

    def execute(self) -> Batch:
        raw = self.index.range_scan(self.lo, self.hi)
        prefix = self.alias.lower()
        return {f"{prefix}.{name}": arr for name, arr in raw.items()}

    def _describe(self) -> str:
        return (
            f"IndexRangeScan({self.index.table.name}.{self.index.leading_key} "
            f"in [{self.lo}, {self.hi}] AS {self.alias})"
        )


@dataclass
class SubqueryScan(PlanNode):
    """Evaluate a planned subquery (a view body) and re-qualify its
    output columns under the binding alias."""

    child: PlanNode
    alias: str

    def execute(self) -> Batch:
        batch = self.child.execute()
        prefix = self.alias.lower()
        return {
            f"{prefix}.{key.rsplit('.', 1)[-1]}": arr
            for key, arr in batch.items()
        }

    def _describe(self) -> str:
        return f"SubqueryScan(AS {self.alias})"

    def _children(self) -> tuple[PlanNode, ...]:
        return (self.child,)


@dataclass
class TableFunctionScan(PlanNode):
    """Invoke a table-valued function with constant arguments.

    The paper's neighbor searches are TVF calls
    (``FROM fGetNearbyObjEqZd(@ra, @dec, @rad) n``); the registered
    Python callable returns a column batch whose names are declared at
    registration time.
    """

    fn: object  # Callable[..., Batch]
    args: tuple[Expr, ...]
    alias: str
    name: str = "tvf"

    def execute(self) -> Batch:
        scalar_batch: Batch = {"__scalar": np.zeros(1)}
        values = []
        for arg in self.args:
            value = np.asarray(arg.eval(scalar_batch)).reshape(-1)[0]
            values.append(value.item() if hasattr(value, "item") else value)
        result = self.fn(*values)
        prefix = self.alias.lower()
        return {f"{prefix}.{key.lower()}": np.asarray(arr)
                for key, arr in result.items()}

    def _describe(self) -> str:
        return f"TableFunctionScan({self.name}(...) AS {self.alias})"


@dataclass
class Filter(PlanNode):
    """Predicate filter; morsel-parallel over row blocks when asked.

    ``workers > 1`` splits the input into :attr:`MORSEL_ROWS`-sized
    blocks whose masks are computed concurrently (numpy releases the
    GIL inside the ufuncs) and concatenated in block order — block
    boundaries never depend on the worker count, so the output is
    byte-identical for every ``workers`` setting.
    """

    #: Rows per parallel block.  Fixed (not derived from ``workers``)
    #: so the split — and therefore the float work per block — is
    #: identical no matter how many threads execute it.
    MORSEL_ROWS = 16384

    child: PlanNode
    predicate: Expr
    workers: int = 1

    def kernel(self):
        """The lazily compiled predicate kernel (one per plan node,
        shared across batches and morsel workers)."""
        kernel = getattr(self, "_kernel", None)
        if kernel is None:
            from repro.engine.compile import CompiledKernel

            kernel = self._kernel = CompiledKernel(predicate=self.predicate)
        return kernel

    def execute(self) -> Batch:
        batch = self.child.execute()
        n = batch_length(batch)
        if n == 0:
            return batch
        if self.compiled:
            return take(batch, self._select(batch, n))
        if self.workers > 1 and n > self.MORSEL_ROWS:
            from repro.engine.parallel import run_morsels

            def block_task(start: int, stop: int):
                piece = take(batch, slice(start, stop))
                return np.asarray(self.predicate.eval(piece), dtype=bool)

            bounds = range(0, n, self.MORSEL_ROWS)
            masks = run_morsels(
                [
                    (lambda s=start: block_task(s, min(s + self.MORSEL_ROWS, n)))
                    for start in bounds
                ],
                workers=self.workers,
                name="engine.morsel.filter",
            )
            mask = np.concatenate(masks)
        else:
            mask = np.asarray(self.predicate.eval(batch), dtype=bool)
        return take(batch, mask)

    def _select(self, batch: Batch, n: int) -> np.ndarray:
        """Surviving row ids via the fused kernel (late materialization:
        payload columns are gathered once, by the caller's ``take``)."""
        kernel = self.kernel()
        if self.workers > 1 and n > self.MORSEL_ROWS:
            from repro.engine.parallel import run_morsels

            def block_task(start: int, stop: int) -> np.ndarray:
                piece = take(batch, slice(start, stop))
                return kernel.select(piece, stop - start) + start

            bounds = range(0, n, self.MORSEL_ROWS)
            parts = run_morsels(
                [
                    (lambda s=start: block_task(s, min(s + self.MORSEL_ROWS, n)))
                    for start in bounds
                ],
                workers=self.workers,
                name="engine.morsel.filter",
            )
            return np.concatenate(parts)
        return kernel.select(batch, n)

    def _describe(self) -> str:
        base = f"Filter({self.predicate})"
        if self.compiled:
            base += f"  {self.kernel().describe()}"
        return base

    def _children(self) -> tuple[PlanNode, ...]:
        return (self.child,)


@dataclass
class Project(PlanNode):
    """Compute output columns ``name <- expr``.

    When ``compiled`` is stamped, outputs evaluate through one fused
    kernel with CSE shared across the whole select list; a compiled
    single-worker :class:`Filter` child is additionally *fused into*
    the projection — the filter's selection vector flows straight into
    the output expressions, so payload columns are touched only for
    surviving rows and subexpressions shared between the predicate and
    the select list are evaluated once.
    """

    child: PlanNode
    outputs: list[tuple[str, Expr]]

    def _fusable_child(self):
        """The compiled Filter this projection can absorb, if any."""
        child = self.child
        if (
            self.compiled
            and isinstance(child, Filter)
            and child.compiled
            and child.workers <= 1
        ):
            return child
        return None

    def kernel(self):
        """The lazily compiled projection kernel.  When a compiled
        single-worker Filter child is fusable, its predicate joins the
        program so selection and CSE span the whole chain."""
        kernel = getattr(self, "_kernel", None)
        if kernel is None:
            from repro.engine.compile import CompiledKernel

            fused = self._fusable_child()
            kernel = self._kernel = CompiledKernel(
                predicate=fused.predicate if fused is not None else None,
                outputs=self.outputs,
            )
        return kernel

    def execute(self) -> Batch:
        fused = self._fusable_child()
        if fused is not None:
            batch = fused.child.execute()
            n = batch_length(batch)
            if n:
                values = self.kernel().fused(batch, n)
                return {
                    name.lower(): value
                    for (name, _), value in zip(self.outputs, values)
                }
            # empty input: the filter is a no-op; fall through and
            # project the empty batch (matching the interpreted chain)
        else:
            batch = self.child.execute()
            n = batch_length(batch)
        if self.compiled and fused is None:
            values = self.kernel().project_values(batch, n)
            return {
                name.lower(): value
                for (name, _), value in zip(self.outputs, values)
            }
        out: Batch = {}
        for name, expr in self.outputs:
            value = np.asarray(expr.eval(batch))
            out[name.lower()] = np.broadcast_to(value, (n,)).copy() \
                if value.shape != (n,) else value
        return out

    def _describe(self) -> str:
        cols = ", ".join(name for name, _ in self.outputs)
        base = f"Project({cols})"
        if self.compiled:
            base += f"  {self.kernel().describe()}"
        return base

    def _children(self) -> tuple[PlanNode, ...]:
        return (self.child,)


@dataclass
class ProjectPassthrough(PlanNode):
    """Compute output columns while keeping the input batch's columns.

    Used under ORDER BY so sort keys can reference either a select alias
    (exact bare name) or a source column (qualified name) — after the
    sort, a plain :class:`Project` strips back to the select list.
    """

    child: PlanNode
    outputs: list[tuple[str, Expr]]

    def kernel(self):
        kernel = getattr(self, "_kernel", None)
        if kernel is None:
            from repro.engine.compile import CompiledKernel

            kernel = self._kernel = CompiledKernel(outputs=self.outputs)
        return kernel

    def execute(self) -> Batch:
        batch = self.child.execute()
        n = batch_length(batch)
        out: Batch = dict(batch)
        if self.compiled:
            values = self.kernel().project_values(batch, n)
        else:
            values = None
        for index, (name, expr) in enumerate(self.outputs):
            key = name.lower()
            if values is not None:
                value = values[index]
            else:
                value = np.asarray(expr.eval(batch))
                if value.shape != (n,):
                    value = np.broadcast_to(value, (n,)).copy()
            if key in out and not np.array_equal(out[key], value):
                raise SqlPlanError(
                    f"select alias '{name}' collides with an input column"
                )
            out[key] = value
        return out

    def _describe(self) -> str:
        cols = ", ".join(name for name, _ in self.outputs)
        base = f"ProjectPassthrough({cols})"
        if self.compiled:
            base += f"  {self.kernel().describe()}"
        return base

    def _children(self) -> tuple[PlanNode, ...]:
        return (self.child,)


@dataclass
class Sort(PlanNode):
    """ORDER BY: stable sort on (expr, ascending) keys, first key primary."""

    child: PlanNode
    keys: list[tuple[Expr, bool]]

    def execute(self) -> Batch:
        batch = self.child.execute()
        n = batch_length(batch)
        if n == 0 or not self.keys:
            return batch
        order = np.arange(n)
        # Apply keys least-significant first, with a stable sort.
        for expr, ascending in reversed(self.keys):
            values = np.asarray(expr.eval(batch))[order]
            idx = np.argsort(values, kind="stable")
            if not ascending:
                idx = idx[::-1]
            order = order[idx]
        return take(batch, order)

    def _describe(self) -> str:
        keys = ", ".join(
            f"{expr} {'ASC' if asc else 'DESC'}" for expr, asc in self.keys
        )
        return f"Sort({keys})"

    def _children(self) -> tuple[PlanNode, ...]:
        return (self.child,)


@dataclass
class Limit(PlanNode):
    child: PlanNode
    limit: int
    offset: int = 0

    def execute(self) -> Batch:
        if self.limit < 0 or self.offset < 0:
            raise SqlPlanError("LIMIT/OFFSET must be non-negative")
        batch = self.child.execute()
        return take(batch, slice(self.offset, self.offset + self.limit))

    def _describe(self) -> str:
        if self.offset:
            return f"Limit({self.limit} OFFSET {self.offset})"
        return f"Limit({self.limit})"

    def _children(self) -> tuple[PlanNode, ...]:
        return (self.child,)


@dataclass
class Distinct(PlanNode):
    child: PlanNode

    def execute(self) -> Batch:
        batch = self.child.execute()
        n = batch_length(batch)
        if n == 0:
            return batch
        names = sorted(batch)
        combined = np.empty(n, dtype=object)
        stacked = list(zip(*[np.asarray(batch[name]).tolist() for name in names]))
        for row, values in enumerate(stacked):
            combined[row] = values
        _, first_rows = np.unique(combined, return_index=True)
        return take(batch, np.sort(first_rows))

    def _describe(self) -> str:
        return "Distinct"

    def _children(self) -> tuple[PlanNode, ...]:
        return (self.child,)


@dataclass
class Materialized(PlanNode):
    """Wrap a precomputed batch (subquery results, VALUES lists)."""

    batch: Batch
    label: str = "values"

    def execute(self) -> Batch:
        return self.batch

    def _describe(self) -> str:
        return f"Materialized({self.label}, {batch_length(self.batch)} rows)"
