"""Fused expression compilation: the vectorized kernel floor.

The interpreted path walks ``Expr.eval`` node by node, materializing a
full-length temporary ndarray per node per batch.  This module lowers
expression trees into *compiled kernels* that evaluate in a single
fused pass with three optimizations, while staying byte-identical to
the interpreted result:

* **Common-subexpression elimination** — structurally equal subtrees
  (the frozen dataclass nodes hash by value) are evaluated once per
  batch and shared, across the conjuncts of a predicate *and* across
  the outputs of a projection riding the same kernel (the MaxBCG
  likelihood's repeated ``g.i - k.i`` band term is the motivating
  case).

* **NaN-aware short-circuit conjunction** — a conjunctive predicate is
  split at its top-level ANDs; each later conjunct evaluates only over
  the rows surviving the earlier ones, tracked as a *selection vector*
  of row ids.  Because every expression node evaluates elementwise,
  narrowing commutes with evaluation — including SQL's NaN semantics,
  where any comparison with NaN is false — so the scattered result
  equals the full-width ``&`` of all conjuncts bit for bit.

* **Selection-vector late materialization** — ``Filter`` (and the
  fused filter+projection chain) carries the surviving row ids through
  the whole predicate and touches payload columns only once, at the
  end, for surviving rows.

Kernels compile once per plan node and are reusable across batches
(morsel workers share one kernel; per-call state lives in a private
frame).  Unknown node types — planner-internal predicates like
``SubqueryPredicate`` — fall back to ``node.eval`` over a narrowed
batch, so the compiler never has to chase the closed type set.

Execution tallies feed the ``engine.compile.*`` metrics by pull, the
same zero-hot-path-cost pattern the buffer pool uses.
"""

from __future__ import annotations

import numpy as np

from repro.engine.expressions import (
    SCALAR_FUNCTIONS,
    Batch,
    Between,
    BinaryOp,
    ColumnRef,
    Expr,
    FuncCall,
    InList,
    Literal,
    UnaryOp,
    batch_length,
    isin_fast,
    resolve_column,
)
from repro.errors import SqlPlanError

_ARITH = {
    "+": np.add,
    "-": np.subtract,
    "*": np.multiply,
    "%": np.mod,
}
_COMPARE = {
    "=": np.equal,
    "!=": np.not_equal,
    "<": np.less,
    "<=": np.less_equal,
    ">": np.greater,
    ">=": np.greater_equal,
}


# ----------------------------------------------------------------------
# execution tallies (pull-collected into the metrics registry)
# ----------------------------------------------------------------------
class _Tally:
    """Plain-int counters; snapshot-time collection costs the hot path
    nothing (the buffer-pool pattern)."""

    __slots__ = ("executions", "nodes_evaluated", "cse_hits",
                 "alloc_elements", "interp_elements", "rows_in", "rows_out")

    def __init__(self) -> None:
        self.executions = 0
        self.nodes_evaluated = 0
        self.cse_hits = 0
        self.alloc_elements = 0
        self.interp_elements = 0
        self.rows_in = 0
        self.rows_out = 0

    def snapshot(self) -> dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}


TALLY = _Tally()


def _collect_compile_metrics() -> dict[str, float]:
    return {
        "engine.compile.executions": float(TALLY.executions),
        "engine.compile.nodes_evaluated": float(TALLY.nodes_evaluated),
        "engine.compile.cse_hits": float(TALLY.cse_hits),
        "engine.compile.alloc_elements": float(TALLY.alloc_elements),
        "engine.compile.interp_elements": float(TALLY.interp_elements),
        "engine.compile.rows_in": float(TALLY.rows_in),
        "engine.compile.rows_out": float(TALLY.rows_out),
    }


def _register_compile_collector() -> None:
    from repro.obs.metrics import get_metrics

    get_metrics().add_collector(_collect_compile_metrics)


# ----------------------------------------------------------------------
# structural analysis
# ----------------------------------------------------------------------
def split_and(expr: Expr | None) -> tuple[Expr, ...]:
    """Top-level conjuncts of a predicate (the short-circuit units)."""
    if expr is None:
        return ()
    if isinstance(expr, BinaryOp) and expr.op.upper() == "AND":
        return split_and(expr.left) + split_and(expr.right)
    return (expr,)


def count_nodes(expr: Expr) -> int:
    """Total node count of a tree — one interpreted temporary each."""
    return 1 + sum(count_nodes(child) for child in expr.children())


def _hashable(node: Expr) -> bool:
    try:
        hash(node)
    except TypeError:
        return False
    return True


class _Frame:
    """Per-call evaluation state: batch, selection vector, CSE cache."""

    __slots__ = ("batch", "n_full", "sel", "n", "cache", "narrowed")

    def __init__(self, batch: Batch, n: int):
        self.batch = batch
        self.n_full = n
        self.sel: np.ndarray | None = None  # None = all rows survive
        self.n = n
        self.cache: dict[Expr, np.ndarray] = {}
        self.narrowed: Batch | None = None  # lazily built fallback batch

    def narrow(self, local_mask: np.ndarray, sel: np.ndarray) -> None:
        """Restrict the frame to the rows where ``local_mask`` holds.

        Cached values all have the current selection length, so each
        narrows with the same local mask — keeping every cache entry
        byte-identical to a fresh evaluation over the new selection.
        """
        self.sel = sel
        self.n = int(sel.size)
        if self.cache:
            self.cache = {
                node: value[local_mask] for node, value in self.cache.items()
            }
        self.narrowed = None


class CompiledKernel:
    """A predicate and/or projection lowered into one fused kernel.

    ``predicate`` is split into top-level conjuncts evaluated with
    selection-vector short-circuiting; ``outputs`` are projection
    columns sharing the same CSE cache (and, in the fused form, the
    same selection).  Compile once, call per batch — per-call state is
    confined to a :class:`_Frame`, so one kernel instance serves all
    morsel workers concurrently.
    """

    def __init__(
        self,
        predicate: Expr | None = None,
        outputs: list[tuple[str, Expr]] | tuple[tuple[str, Expr], ...] = (),
    ):
        self.predicate = predicate
        self.conjuncts = split_and(predicate)
        self.outputs = tuple((name, expr) for name, expr in outputs)
        roots = self.conjuncts + tuple(expr for _, expr in self.outputs)
        counts: dict[Expr, int] = {}
        self.n_nodes = 0
        for root in roots:
            self._count(root, counts)
        self.shared = {node for node, c in counts.items() if c > 1}
        #: evaluations saved by CSE if every occurrence were visited
        self.n_cse = sum(c - 1 for c in counts.values() if c > 1)
        #: temporaries the interpreted walk would materialize: one
        #: full-length ndarray per node, no sharing, no narrowing.
        self.n_interp_nodes = sum(count_nodes(c) for c in self.conjuncts) \
            + sum(count_nodes(expr) for _, expr in self.outputs)

    def _count(self, node: Expr, counts: dict[Expr, int]) -> None:
        self.n_nodes += 1
        if _hashable(node):
            counts[node] = counts.get(node, 0) + 1
            if counts[node] > 1:
                return  # the subtree below is shared too
        for child in node.children():
            self._count(child, counts)

    # ------------------------------------------------------------------
    def describe(self) -> str:
        """The EXPLAIN annotation for plans riding this kernel."""
        return f"[fused: {self.n_nodes} nodes, cse: {self.n_cse}]"

    # ------------------------------------------------------------------
    # entry points
    # ------------------------------------------------------------------
    def select(self, batch: Batch, n: int | None = None) -> np.ndarray:
        """Row ids (ascending int64) surviving the predicate."""
        if n is None:
            n = batch_length(batch)
        frame = _Frame(batch, n)
        sel = self._run_predicate(frame)
        TALLY.executions += 1
        TALLY.rows_in += n
        TALLY.rows_out += int(sel.size)
        TALLY.interp_elements += n * self.n_interp_nodes
        return sel

    def mask(self, batch: Batch, n: int | None = None) -> np.ndarray:
        """Boolean survival mask — byte-identical to interpreted eval."""
        if n is None:
            n = batch_length(batch)
        out = np.zeros(n, dtype=bool)
        out[self.select(batch, n)] = True
        return out

    def project_values(
        self, batch: Batch, n: int | None = None
    ) -> list[np.ndarray]:
        """Output values in declaration order, CSE shared across them.

        Each value has exactly ``n`` rows (row-independent expressions
        are broadcast), matching ``Project``'s interpreted contract.
        """
        if n is None:
            n = batch_length(batch)
        frame = _Frame(batch, n)
        TALLY.executions += 1
        TALLY.rows_in += n
        TALLY.interp_elements += n * self.n_interp_nodes
        return self._run_outputs(frame)

    def fused(self, batch: Batch, n: int | None = None) -> list[np.ndarray]:
        """Filter + project in one pass: predicate narrows the selection,
        outputs evaluate only over surviving rows, payload columns are
        gathered once.  Returns ``select(batch)``'s survivors' output
        values — byte-identical to projecting the filtered batch."""
        if n is None:
            n = batch_length(batch)
        frame = _Frame(batch, n)
        sel = self._run_predicate(frame)
        TALLY.executions += 1
        TALLY.rows_in += n
        TALLY.rows_out += int(sel.size)
        TALLY.interp_elements += n * self.n_interp_nodes
        return self._run_outputs(frame)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _run_predicate(self, frame: _Frame) -> np.ndarray:
        sel: np.ndarray | None = None
        for conjunct in self.conjuncts:
            if sel is not None and sel.size == 0:
                break  # nothing survives; later conjuncts are dead
            value = np.asarray(self._evaluate(conjunct, frame), dtype=bool)
            if value.shape != (frame.n,):
                value = np.broadcast_to(value, (frame.n,))
            if value.all():
                continue  # no narrowing, cache stays valid as-is
            sel = np.flatnonzero(value) if sel is None else sel[value]
            frame.narrow(value, sel)
        if sel is None:
            sel = np.arange(frame.n_full, dtype=np.int64)
        return sel

    def _run_outputs(self, frame: _Frame) -> list[np.ndarray]:
        values: list[np.ndarray] = []
        for _, expr in self.outputs:
            value = np.asarray(self._evaluate(expr, frame))
            if value.shape != (frame.n,):
                value = np.broadcast_to(value, (frame.n,)).copy()
            values.append(value)
        return values

    def _evaluate(self, node: Expr, frame: _Frame) -> np.ndarray:
        if frame.cache:
            cached = frame.cache.get(node)
            if cached is not None:
                TALLY.cse_hits += 1
                return cached
        value = self._compute(node, frame)
        if self.shared and node in self.shared:
            frame.cache[node] = value
        return value

    def _compute(self, node: Expr, frame: _Frame) -> np.ndarray:
        TALLY.nodes_evaluated += 1
        TALLY.alloc_elements += frame.n
        if isinstance(node, ColumnRef):
            arr = resolve_column(frame.batch, node.name, node.qualifier)
            if not isinstance(arr, np.ndarray):
                arr = np.asarray(arr)
            return arr if frame.sel is None else arr[frame.sel]
        if isinstance(node, Literal):
            return np.full(frame.n, node.value)
        if isinstance(node, BinaryOp):
            return self._binary(node, frame)
        if isinstance(node, UnaryOp):
            value = self._evaluate(node.operand, frame)
            if node.op == "-":
                return np.negative(value)
            if node.op.upper() == "NOT":
                return ~np.asarray(value, dtype=bool)
            raise SqlPlanError(f"unknown unary operator '{node.op}'")
        if isinstance(node, Between):
            value = self._evaluate(node.value, frame)
            return (value >= self._evaluate(node.low, frame)) \
                & (value <= self._evaluate(node.high, frame))
        if isinstance(node, InList):
            value = np.asarray(self._evaluate(node.value, frame))
            fast = isin_fast(value, node.options)
            if fast is not None:
                return fast
            result = np.zeros(value.shape, dtype=bool)
            for option in node.options:
                result |= value == self._evaluate(option, frame)
            return result
        if isinstance(node, FuncCall):
            lowered = node.name.lower()
            if lowered == "pi":
                return np.full(frame.n, np.pi)
            entry = SCALAR_FUNCTIONS.get(lowered)
            if entry is None:
                raise SqlPlanError(f"unknown function '{node.name}'")
            arity, fn = entry
            if arity >= 0 and len(node.args) != arity:
                raise SqlPlanError(
                    f"function '{node.name}' expects {arity} args, "
                    f"got {len(node.args)}"
                )
            return fn(*[self._evaluate(arg, frame) for arg in node.args])
        # Unknown node type (e.g. the planner's SubqueryPredicate):
        # evaluate interpreted over the narrowed batch — correctness
        # first, fusion where the type set is known.
        return np.asarray(node.eval(self._narrowed(frame)))

    def _binary(self, node: BinaryOp, frame: _Frame) -> np.ndarray:
        op = node.op.upper() if node.op.isalpha() else node.op
        if op == "AND":
            left = np.asarray(self._evaluate(node.left, frame), dtype=bool)
            if not left.any():
                return left
            return left & np.asarray(
                self._evaluate(node.right, frame), dtype=bool
            )
        if op == "OR":
            left = np.asarray(self._evaluate(node.left, frame), dtype=bool)
            if left.all():
                return left
            return left | np.asarray(
                self._evaluate(node.right, frame), dtype=bool
            )
        lhs = self._evaluate(node.left, frame)
        rhs = self._evaluate(node.right, frame)
        if op == "/":
            with np.errstate(divide="ignore", invalid="ignore"):
                return np.divide(
                    np.asarray(lhs, dtype=np.float64),
                    np.asarray(rhs, dtype=np.float64),
                )
        if op in _ARITH:
            return _ARITH[op](lhs, rhs)
        if op in _COMPARE:
            return _COMPARE[op](lhs, rhs)
        raise SqlPlanError(f"unknown binary operator '{node.op}'")

    def _narrowed(self, frame: _Frame) -> Batch:
        if frame.sel is None:
            return frame.batch
        if frame.narrowed is None:
            sel = frame.sel
            frame.narrowed = {
                key: (arr if isinstance(arr, np.ndarray)
                      else np.asarray(arr))[sel]
                for key, arr in frame.batch.items()
            }
        return frame.narrowed


_register_compile_collector()
