"""Execution statistics: the observables of Table 1.

The paper reports, for every MaxBCG task, three numbers taken from SQL
Server's execution statistics: **elapsed seconds**, **CPU seconds** and
**I/O operations**.  This module defines the counters our engine
maintains so the reproduction can report the same three columns:

* :class:`IOCounters` — logical reads (buffer-pool requests), physical
  reads (pool misses) and writes, incremented by the page layer;
* :class:`TaskStats` — one task's (elapsed, cpu, io) triple;
* :class:`TaskTimer` — a context manager that samples wall-clock and
  CPU time around a task and snapshots the I/O counters.

CPU accounting must stay honest when tasks run on worker threads or in
worker processes.  ``time.process_time`` spans *every* thread of the
process, so a timer on one of three concurrent threads would bill each
task roughly 3× its true cost.  :func:`use_cpu_clock` selects, per
thread, the clock :class:`TaskTimer` reads: the thread backend wraps
each partition in ``use_cpu_clock("thread")`` (``time.thread_time``),
while the process backend needs no override — the child's own
``process_time`` covers exactly its work.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable

#: Named CPU clocks selectable with :func:`use_cpu_clock`.
CPU_CLOCKS: dict[str, Callable[[], float]] = {
    "process": time.process_time,
    "thread": time.thread_time,
}

_CLOCK_STATE = threading.local()


def current_cpu_clock() -> Callable[[], float]:
    """The CPU clock new :class:`TaskTimer` instances will read.

    Defaults to ``time.process_time``; overridden per thread by
    :func:`use_cpu_clock`.
    """
    return getattr(_CLOCK_STATE, "clock", time.process_time)


@contextmanager
def use_cpu_clock(clock: str | Callable[[], float]):
    """Select the CPU clock for :class:`TaskTimer` on *this* thread.

    ``clock`` is ``"process"``, ``"thread"`` or any zero-argument
    callable returning CPU seconds.  The previous clock is restored on
    exit, so nested scopes behave.
    """
    if isinstance(clock, str):
        try:
            clock = CPU_CLOCKS[clock]
        except KeyError:
            raise ValueError(
                f"unknown cpu clock '{clock}'; expected one of "
                f"{tuple(CPU_CLOCKS)} or a callable"
            ) from None
    previous = getattr(_CLOCK_STATE, "clock", None)
    _CLOCK_STATE.clock = clock
    try:
        yield clock
    finally:
        if previous is None:
            del _CLOCK_STATE.clock
        else:
            _CLOCK_STATE.clock = previous


@dataclass
class IOCounters:
    """Monotonic I/O counters, shared by a database's buffer pool.

    The buffer pool is shared across worker threads under the thread
    backend, and a plain ``+=`` on an int attribute is a read-modify-
    write that can drop updates when two threads interleave.  All
    mutation therefore goes through the ``add_*`` methods (and
    :meth:`add`), which hold a per-instance lock; :meth:`snapshot`
    takes the same lock so a reader never sees a torn triple.  The lock
    is excluded from pickling — counters cross process boundaries
    inside :class:`TaskStats` as plain values.
    """

    logical_reads: int = 0
    physical_reads: int = 0
    writes: int = 0

    def __post_init__(self) -> None:
        self._lock = threading.Lock()

    def __getstate__(self) -> dict:
        return {
            "logical_reads": self.logical_reads,
            "physical_reads": self.physical_reads,
            "writes": self.writes,
        }

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    def add_logical(self, n: int = 1) -> None:
        with self._lock:
            self.logical_reads += n

    def add_physical(self, n: int = 1) -> None:
        with self._lock:
            self.physical_reads += n

    def add_write(self, n: int = 1) -> None:
        with self._lock:
            self.writes += n

    def snapshot(self) -> "IOCounters":
        with self._lock:
            return IOCounters(
                self.logical_reads, self.physical_reads, self.writes
            )

    def since(self, earlier: "IOCounters") -> "IOCounters":
        """Counter deltas relative to an earlier snapshot."""
        return IOCounters(
            self.logical_reads - earlier.logical_reads,
            self.physical_reads - earlier.physical_reads,
            self.writes - earlier.writes,
        )

    @property
    def total(self) -> int:
        """Total I/O operations — the single "I/O" column of Table 1."""
        return self.logical_reads + self.writes

    def add(self, other: "IOCounters") -> None:
        with self._lock:
            self.logical_reads += other.logical_reads
            self.physical_reads += other.physical_reads
            self.writes += other.writes


@dataclass
class TaskStats:
    """Elapsed/CPU/I/O for one named task (one row of Table 1)."""

    name: str
    elapsed_s: float = 0.0
    cpu_s: float = 0.0
    io: IOCounters = field(default_factory=IOCounters)
    rows: int = 0

    @property
    def io_ops(self) -> int:
        return self.io.total

    def merged_with(self, other: "TaskStats", name: str | None = None) -> "TaskStats":
        """Sum of two task stats (used for 'total' rows)."""
        merged = TaskStats(
            name=name or self.name,
            elapsed_s=self.elapsed_s + other.elapsed_s,
            cpu_s=self.cpu_s + other.cpu_s,
            rows=self.rows + other.rows,
        )
        merged.io.add(self.io)
        merged.io.add(other.io)
        return merged


def sum_stats(name: str, parts: list[TaskStats]) -> TaskStats:
    """Aggregate many task stats into one row."""
    total = TaskStats(name=name)
    for part in parts:
        total.elapsed_s += part.elapsed_s
        total.cpu_s += part.cpu_s
        total.rows += part.rows
        total.io.add(part.io)
    return total


class TaskTimer:
    """Measure one task: ``with TaskTimer("spZone", counters) as t: ...``.

    On exit, ``t.stats`` holds the elapsed wall-clock seconds, the CPU
    seconds consumed (read from :func:`current_cpu_clock`, so worker
    threads bill only their own time), and the I/O counter deltas
    observed on the supplied :class:`IOCounters` during the block.
    """

    def __init__(self, name: str, counters: IOCounters | None = None):
        self.stats = TaskStats(name=name)
        self._counters = counters
        self._io_before: IOCounters | None = None
        self._wall0 = 0.0
        self._cpu0 = 0.0
        self._cpu_clock: Callable[[], float] = time.process_time

    def __enter__(self) -> "TaskTimer":
        if self._counters is not None:
            self._io_before = self._counters.snapshot()
        self._cpu_clock = current_cpu_clock()
        self._wall0 = time.perf_counter()
        self._cpu0 = self._cpu_clock()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stats.elapsed_s = time.perf_counter() - self._wall0
        self.stats.cpu_s = self._cpu_clock() - self._cpu0
        if self._counters is not None and self._io_before is not None:
            self.stats.io = self._counters.since(self._io_before)
