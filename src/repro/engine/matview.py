"""Materialized views: precomputed SELECTs with staleness tracking.

The paper's MyDB is a server-side cache the *user* controls: spool a
query's answer into your personal database once, then correlate against
it locally instead of rescanning terabytes.  ``CREATE MATERIALIZED VIEW``
is that workflow as a first-class DDL object:

* the defining SELECT runs once and its rows land in a regular catalog
  table named after the view (so MyDB quotas, persistence, and ``FROM
  <name>`` queries all just work);
* the definition records the *version* of every source table it read;
  any DML/load on a source flips the view stale (:meth:`is_stale`);
* ``REFRESH MATERIALIZED VIEW`` re-runs the SELECT and re-snapshots the
  versions;
* the planner answers a query whose normalized SQL matches a **fresh**
  view's definition straight from the materialized rows (EXPLAIN shows
  ``[answered from matview <name>]``); stale views are never
  substituted, but remain readable by name — the user asked for a
  snapshot, and gets one until they refresh.

Refresh/staleness counters feed the obs metrics registry.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine.sql.ast import SelectStatement


@dataclass
class MaterializedView:
    """Catalog record of one materialized view.

    ``source_versions`` snapshots each base table's version counter at
    the last (re)materialization; staleness is a pure comparison
    against the live counters, no timestamps involved.
    """

    name: str
    select: SelectStatement
    normalized_sql: str
    source_tables: frozenset[str]
    source_versions: dict[str, int] = field(default_factory=dict)
    refresh_count: int = 0

    def stale_against(self, current_versions: dict[str, int | None]) -> bool:
        """Is the view stale given the live source-table versions?

        A missing source (dropped table) also counts as stale — the
        snapshot can no longer be reproduced, let alone substituted.
        """
        for table in self.source_tables:
            current = current_versions.get(table)
            if current is None or current != self.source_versions.get(table):
                return True
        return False
