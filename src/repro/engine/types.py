"""Column types of the relational engine.

Four storage types cover everything the paper's schema needs: SDSS
``bigint`` object ids (INT64), ``float``/``real`` photometry (FLOAT64 —
we deliberately keep one float width; SQL Server's real-vs-float split
only mattered for 2004 disk budgets), booleans from predicates, and
strings for names/labels in the CasJobs metadata tables.
"""

from __future__ import annotations

from enum import Enum

import numpy as np

from repro.errors import SchemaError


class ColumnType(Enum):
    """Storage type of a column."""

    INT64 = "int64"
    FLOAT64 = "float64"
    BOOL = "bool"
    STRING = "string"

    @property
    def numpy_dtype(self):
        if self is ColumnType.STRING:
            return np.dtype(object)
        return np.dtype(self.value)

    @property
    def byte_width(self) -> int:
        """Bytes per value, for page-size accounting."""
        if self is ColumnType.STRING:
            return 32  # modeled average; strings are metadata-only here
        return int(np.dtype(self.value).itemsize)

    def coerce(self, values) -> np.ndarray:
        """Convert raw values to this type's canonical array form."""
        if self is ColumnType.STRING:
            arr = np.asarray(values, dtype=object)
            return arr
        try:
            return np.asarray(values).astype(self.numpy_dtype, copy=False)
        except (TypeError, ValueError) as exc:
            raise SchemaError(f"cannot coerce values to {self.value}: {exc}") from exc


#: SQL type-name spellings accepted by the parser, mapped to storage types.
SQL_TYPE_NAMES = {
    "bigint": ColumnType.INT64,
    "int": ColumnType.INT64,
    "integer": ColumnType.INT64,
    "float": ColumnType.FLOAT64,
    "real": ColumnType.FLOAT64,
    "double": ColumnType.FLOAT64,
    "bool": ColumnType.BOOL,
    "boolean": ColumnType.BOOL,
    "varchar": ColumnType.STRING,
    "text": ColumnType.STRING,
}


def sql_type(name: str) -> ColumnType:
    """Look up a SQL type name (case-insensitive); raises on unknown names."""
    try:
        return SQL_TYPE_NAMES[name.lower()]
    except KeyError:
        raise SchemaError(f"unknown SQL type '{name}'") from None


def infer_type(values: np.ndarray) -> ColumnType:
    """Infer a :class:`ColumnType` from a numpy array's dtype."""
    arr = np.asarray(values)
    if arr.dtype == np.dtype(object) or arr.dtype.kind in ("U", "S"):
        return ColumnType.STRING
    if arr.dtype.kind == "b":
        return ColumnType.BOOL
    if arr.dtype.kind in ("i", "u"):
        return ColumnType.INT64
    if arr.dtype.kind == "f":
        return ColumnType.FLOAT64
    raise SchemaError(f"cannot infer column type from dtype {arr.dtype}")
