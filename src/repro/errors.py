"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch one base class.  Subsystems raise the more specific
subclasses below; the engine additionally distinguishes user errors
(bad SQL, unknown tables) from internal invariant violations.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigError(ReproError):
    """A configuration object is inconsistent or out of range."""


class RegionError(ReproError):
    """A sky region is malformed (empty, inverted, or out of bounds)."""


class CatalogError(ReproError):
    """A galaxy catalog is missing required columns or is inconsistent."""


class EngineError(ReproError):
    """Base class for relational-engine errors."""


class SchemaError(EngineError):
    """A table schema is invalid, or data does not match its schema."""


class TableNotFoundError(EngineError):
    """A query referenced a table that does not exist in the database."""


class ColumnNotFoundError(EngineError):
    """An expression referenced a column that does not exist."""


class SqlError(EngineError):
    """Base class for SQL front-end errors."""


class SqlSyntaxError(SqlError):
    """The SQL text could not be tokenized or parsed."""

    def __init__(self, message: str, position: int | None = None):
        if position is not None:
            message = f"{message} (at offset {position})"
        super().__init__(message)
        self.position = position


class SqlPlanError(SqlError):
    """The SQL statement parsed but could not be planned or executed."""


class SpatialError(ReproError):
    """A spatial-index operation failed (bad radius, bad level, ...)."""


class GridError(ReproError):
    """A grid-simulation operation failed (no matching node, bad job)."""


class TamError(ReproError):
    """The file-based TAM pipeline hit a malformed field or file."""


class PartitionError(ReproError):
    """Cluster partitioning produced an invalid or non-covering layout."""


class ClusterExecutionError(ReproError):
    """A cluster execution backend could not complete a partition.

    Raised only after every recovery path is exhausted: the configured
    retries failed *and* the sequential in-parent fallback failed too.
    ``server`` identifies the partition; the original worker failure is
    chained as ``__cause__`` when available.
    """

    def __init__(self, message: str, server: int | None = None):
        super().__init__(message)
        self.server = server


class CasJobsError(ReproError):
    """CasJobs job management error (unknown job, permission denied, ...)."""


class QueueFullError(CasJobsError):
    """The service shed the submission: queue depth is past high water.

    Raised at *admission* time, before a job is created — the CasJobs
    answer to overload is to refuse new work early rather than let the
    backlog grow without bound.  Carries ``depth`` and ``high_water``
    so callers can report or back off.
    """

    def __init__(self, message: str, depth: int = 0, high_water: int = 0):
        super().__init__(message)
        self.depth = depth
        self.high_water = high_water


class QuotaExceededError(CasJobsError):
    """A MyDB storage quota would be (or was) exceeded."""


class ObsError(ReproError):
    """Observability-layer error (malformed trace, metric type clash)."""
