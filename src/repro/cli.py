"""Command-line interface: ``repro <subcommand>``.

Gives the reproduction a front door a downstream user can drive without
writing Python:

* ``repro run``        — generate a synthetic sky and run MaxBCG;
* ``repro partition``  — the Section 2.4 cluster run + union invariant;
* ``repro compare``    — the headline TAM-vs-SQL comparison;
* ``repro sql``        — execute a SQL script against a demo database
  with the MaxBCG application installed;
* ``repro analyze``    — EXPLAIN ANALYZE a SELECT on that database;
* ``repro explain``    — show a SELECT's plan with optimizer row
  estimates; ``--analyze`` also executes it and reports per-operator
  est vs actual rows and q-error;
* ``repro workloads``  — list the benchmark workloads;
* ``repro casjobs``    — the multi-user batch service: ``serve`` a
  heavy-traffic demo workload through the scheduler, ``submit`` one
  query end-to-end, ``status`` a mixed workload's job ledger;
* ``repro trace``      — run a MaxBCG job through the full stack
  (CasJobs scheduler -> cluster backend -> engine) with tracing on and
  export the spans as a Chrome ``trace_event`` file (Perfetto), JSONL,
  or a text tree;
* ``repro metrics``    — run the same demo pipeline and dump the
  process-wide metrics registry;
* ``repro memo``       — repeat a SELECT against the demo database with
  the adaptive feedback optimizer on and show the plan-memo decisions,
  learned overrides and q-error trajectory;
* ``repro querystore`` — run a shifted workload with the Query Store
  on, report the recorded plan history and regression verdicts, and
  (``--demo``) walk plan forcing end-to-end with invariant checks.

Every subcommand prints a compact text report; exit code 0 on success,
1 when an invariant or shape check fails.
"""

from __future__ import annotations

import argparse
import sys
import tempfile

import numpy as np

from repro.core.config import MaxBCGConfig
from repro.core.kcorrection import build_kcorrection_table
from repro.core.pipeline import run_maxbcg
from repro.skyserver.generator import SkyConfig, SkySimulator
from repro.skyserver.regions import RegionBox


def _region(text: str) -> RegionBox:
    """Parse 'ra_min,ra_max,dec_min,dec_max'."""
    try:
        ra_min, ra_max, dec_min, dec_max = (float(v) for v in text.split(","))
    except ValueError as exc:
        raise argparse.ArgumentTypeError(
            f"expected ra_min,ra_max,dec_min,dec_max — got '{text}'"
        ) from exc
    return RegionBox(ra_min, ra_max, dec_min, dec_max)


def _engine_flags() -> argparse.ArgumentParser:
    """Shared engine flags (one parent parser, not N copies).

    Used by ``sql``/``explain``/``analyze``/``partition``/``casjobs`` so
    the flags spell and behave identically everywhere.  ``--workers``
    keeps its per-command meaning: intra-query morsel workers for the
    engine commands, scheduler pool workers for ``casjobs serve``
    (defaults differ via ``set_defaults``).
    """
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument("--workers", type=int, default=None, metavar="N",
                        help="worker count (engine commands: intra-query "
                        "morsel workers, default 1; casjobs serve: "
                        "scheduler pool workers, default 4)")
    parent.add_argument("--optimizer", choices=("cost", "syntactic"),
                        default="cost", help="planner mode")
    parent.add_argument("--backend",
                        choices=("sequential", "threads", "processes"),
                        default=None,
                        help="cluster execution backend (partition): "
                        "sequential models the paper's separate machines "
                        "(elapsed = max over servers); threads/processes "
                        "really run concurrently and report measured "
                        "wall-clock")
    parent.add_argument("--cache", action="store_true",
                        help="enable the shared semantic result cache "
                        "(repeated identical queries answered without "
                        "re-execution)")
    parent.add_argument("--rewrites", action=argparse.BooleanOptionalAction,
                        default=True,
                        help="logical query-rewrite pass between parse and "
                        "plan (--no-rewrites restores the unrewritten "
                        "plans; EXPLAIN lists fired rules)")
    parent.add_argument("--feedback", action=argparse.BooleanOptionalAction,
                        default=False,
                        help="adaptive feedback optimizer: memoize chosen "
                        "plans per statement fingerprint and fold executed "
                        "actuals back into the cardinality estimates "
                        "(re-plan when max q-error exceeds the ceiling)")
    parent.add_argument("--qerror-ceiling", type=float, default=None,
                        metavar="Q",
                        help="max q-error tolerated before the feedback "
                        "loop re-analyzes and re-plans (default 8)")
    parent.add_argument("--query-store", action="store_true",
                        help="record per-statement workload history, plan "
                        "changes and runtime stats in the Query Store "
                        "(queryable as sys_query_store_* tables)")
    parent.add_argument("--compiled", action=argparse.BooleanOptionalAction,
                        default=True,
                        help="fused expression kernels (CSE, short-circuit "
                        "conjunction over selection vectors, late "
                        "materialization; --no-compiled restores the "
                        "interpreted expression walk — results are "
                        "byte-identical either way)")
    parent.add_argument("--page-compression",
                        action=argparse.BooleanOptionalAction,
                        default=True,
                        help="per-column page codecs (dictionary / RLE) "
                        "chosen from ANALYZE statistics; packs more rows "
                        "per 8 KiB page so scans cost fewer logical reads")
    return parent


def _engine_config(args):
    """Build the :class:`~repro.engine.config.EngineConfig` the shared
    flags describe."""
    from repro.engine.config import DEFAULT_QERROR_CEILING, EngineConfig

    return EngineConfig(
        optimizer=getattr(args, "optimizer", "cost"),
        intra_query_workers=getattr(args, "workers", None) or 1,
        result_cache=bool(getattr(args, "cache", False)),
        rewrites=bool(getattr(args, "rewrites", True)),
        feedback=bool(getattr(args, "feedback", False)),
        qerror_ceiling=(getattr(args, "qerror_ceiling", None)
                        or DEFAULT_QERROR_CEILING),
        query_store=bool(getattr(args, "query_store", False)),
        compiled_expressions=bool(getattr(args, "compiled", True)),
        page_compression=bool(getattr(args, "page_compression", True)),
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'When Database Systems Meet the Grid' "
        "(CIDR 2005): MaxBCG on a relational engine vs a file-based grid.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    engine_flags = _engine_flags()

    def add_common(p):
        p.add_argument("--target", type=_region,
                       default=RegionBox(180.0, 182.0, 0.0, 2.0),
                       help="target box: ra_min,ra_max,dec_min,dec_max")
        p.add_argument("--density", type=float, default=700.0,
                       help="field galaxies per deg^2")
        p.add_argument("--clusters", type=float, default=10.0,
                       help="injected clusters per deg^2")
        p.add_argument("--seed", type=int, default=2005)
        p.add_argument("--z-step", type=float, default=0.005,
                       help="k-correction grid step (paper SQL: 0.001)")

    run_p = sub.add_parser("run", help="single-node MaxBCG over a synthetic sky")
    add_common(run_p)
    run_p.add_argument("--method", choices=("vectorized", "cursor"),
                       default="vectorized")
    run_p.add_argument("--members", action="store_true",
                       help="also retrieve cluster members")

    part_p = sub.add_parser("partition",
                            help="partitioned cluster run (Section 2.4)",
                            parents=[engine_flags])
    add_common(part_p)
    part_p.add_argument("--servers", type=int, default=3)

    cmp_p = sub.add_parser("compare", help="TAM (file-based) vs SQL pipeline")
    add_common(cmp_p)

    sql_p = sub.add_parser("sql", help="run SQL against a demo database",
                           parents=[engine_flags])
    add_common(sql_p)
    group = sql_p.add_mutually_exclusive_group(required=True)
    group.add_argument("-e", "--execute", help="one SQL statement")
    group.add_argument("--script", help="path to a ;-separated SQL script")

    analyze_p = sub.add_parser(
        "analyze", help="EXPLAIN ANALYZE a SELECT against the demo database",
        parents=[engine_flags],
    )
    add_common(analyze_p)
    analyze_p.add_argument("-e", "--execute", required=True,
                           help="SELECT statement to analyze")

    explain_p = sub.add_parser(
        "explain",
        help="show a SELECT's plan (with row estimates) on the demo database",
        parents=[engine_flags],
    )
    add_common(explain_p)
    explain_p.add_argument("sql", help="SELECT statement to plan")
    explain_p.add_argument("--analyze", action="store_true",
                           help="also execute and report est vs actual rows "
                           "with per-operator q-error")
    explain_p.add_argument("--no-stats", action="store_true",
                           help="skip the ANALYZE pass (plan without "
                           "statistics)")

    sub.add_parser("workloads", help="list the benchmark workloads")

    cas_p = sub.add_parser(
        "casjobs", help="the CasJobs multi-user batch service (demo site)"
    )
    cas_sub = cas_p.add_subparsers(dest="casjobs_command", required=True)

    serve_p = cas_sub.add_parser(
        "serve", help="serve a heavy-traffic workload through the scheduler",
        parents=[engine_flags],
    )
    serve_p.set_defaults(workers=4)  # scheduler pool workers here
    serve_p.add_argument("--users", type=int, default=12)
    serve_p.add_argument("--jobs", type=int, default=150)
    serve_p.add_argument("--quick-frac", type=float, default=0.4,
                         help="share of jobs on the quick queue")
    serve_p.add_argument("--pool", choices=("sequential", "threads"),
                         default="threads",
                         help="worker pool the scheduler drains through")
    serve_p.add_argument("--high-water", type=int, default=None,
                         help="pending depth that sheds new submissions")
    serve_p.add_argument("--zipf", type=int, default=0, metavar="Q",
                         help="draw jobs zipfian from a pool of Q distinct "
                         "queries (0 = fresh random queries, the default)")
    serve_p.add_argument("--seed", type=int, default=2005)

    submit_p = cas_sub.add_parser(
        "submit", help="submit one query end-to-end on a demo site",
        parents=[engine_flags],
    )
    submit_p.add_argument("-e", "--execute", required=True,
                          help="SQL to run against the demo 'dr1' context")
    submit_p.add_argument("--user", default="astronomer")
    submit_p.add_argument("--queue", choices=("quick", "long"), default="long")
    submit_p.add_argument("--into", default=None,
                          help="spool the result into this MyDB table")
    submit_p.add_argument("--seed", type=int, default=2005)

    status_p = cas_sub.add_parser(
        "status", help="run a mixed workload and print the job ledger",
        parents=[engine_flags],
    )
    status_p.add_argument("--jobs", type=int, default=12)
    status_p.add_argument("--seed", type=int, default=2005)

    trace_p = sub.add_parser(
        "trace",
        help="trace one MaxBCG job through CasJobs -> cluster -> engine",
    )
    add_common(trace_p)
    trace_p.add_argument("--demo", action="store_true",
                         help="small fast sky (CI smoke scale)")
    trace_p.add_argument("--servers", type=int, default=2,
                         help="cluster partitions inside the job")
    trace_p.add_argument("--backend",
                         choices=("sequential", "threads", "processes"),
                         default="processes",
                         help="cluster execution backend for the job")
    trace_p.add_argument("--out", default="trace.json",
                         help="output file for chrome/jsonl formats")
    trace_p.add_argument("--format", choices=("chrome", "jsonl", "tree"),
                         default="chrome", dest="fmt")
    trace_p.add_argument("--slow-ms", type=float, default=None,
                         help="slow-query log threshold in milliseconds")

    metrics_p = sub.add_parser(
        "metrics",
        help="run the demo pipeline and dump the metrics registry",
    )
    add_common(metrics_p)
    metrics_p.add_argument("--demo", action="store_true",
                           help="small fast sky (CI smoke scale)")
    metrics_p.add_argument("--servers", type=int, default=2)
    metrics_p.add_argument("--backend",
                           choices=("sequential", "threads", "processes"),
                           default="sequential")

    memo_p = sub.add_parser(
        "memo",
        help="exercise the plan memo + feedback loop on the demo database",
        parents=[engine_flags],
    )
    add_common(memo_p)
    memo_p.add_argument("-e", "--execute", default=None,
                        help="SELECT to repeat (default: a zoned "
                        "neighbour-count join)")
    memo_p.add_argument("--repeat", type=int, default=4,
                        help="how many times to execute the statement")
    memo_p.add_argument("--shift", action="store_true",
                        help="mutate the data between executions so "
                        "statistics go stale and the feedback loop has "
                        "something to correct")

    qs_p = sub.add_parser(
        "querystore",
        help="Query Store: workload history, plan regressions, forcing",
        parents=[engine_flags],
    )
    qs_p.add_argument("action", nargs="?", default="report",
                      choices=("report", "regressions"),
                      help="report: full store dump; regressions: "
                      "classified plan-change verdicts only")
    qs_p.add_argument("--repeat", type=int, default=6,
                      help="executions of the workload statement")
    qs_p.add_argument("--demo", action="store_true",
                      help="full walkthrough with invariant checks: "
                      "feedback re-plan -> improvement verdict -> force "
                      "the old plan -> regression verdict -> unforce "
                      "(exit 1 if any check fails)")
    return parser


def _make_sky(args):
    config = MaxBCGConfig(z_step=args.z_step)
    kcorr = build_kcorrection_table(config)
    simulator = SkySimulator(
        kcorr, config,
        SkyConfig(field_density=args.density, cluster_density=args.clusters,
                  seed=args.seed),
    )
    sky = simulator.generate(args.target.expand(2 * config.buffer_deg))
    return config, kcorr, sky


def _print_stats(stats) -> None:
    print(f"{'task':22s}{'elapsed(s)':>11s}{'cpu(s)':>9s}{'I/O':>9s}{'rows':>9s}")
    for name, s in stats.items():
        print(f"{name:22s}{s.elapsed_s:11.3f}{s.cpu_s:9.3f}"
              f"{s.io.total:9,d}{s.rows:9,d}")


def cmd_run(args) -> int:
    config, kcorr, sky = _make_sky(args)
    print(f"sky: {sky.n_galaxies:,} galaxies, {sky.n_clusters} injected "
          f"clusters; target {args.target.flat_area():.1f} deg^2")
    result = run_maxbcg(sky.catalog, args.target, kcorr, config,
                        method=args.method, compute_members=args.members)
    print(f"candidates: {len(result.candidates):,}  "
          f"clusters: {len(result.clusters):,}"
          + (f"  member links: {len(result.members):,}" if args.members else ""))
    _print_stats(result.stats)
    return 0


def cmd_partition(args) -> int:
    from repro.cluster.executor import run_partitioned
    from repro.cluster.verify import assert_union_equals_sequential
    from repro.errors import PartitionError

    backend = args.backend or "sequential"
    config, kcorr, sky = _make_sky(args)
    sequential = run_maxbcg(sky.catalog, args.target, kcorr, config,
                            compute_members=False)
    partitioned = run_partitioned(sky.catalog, args.target, kcorr, config,
                                  n_servers=args.servers,
                                  compute_members=False,
                                  backend=backend,
                                  engine_config=_engine_config(args))
    try:
        assert_union_equals_sequential(
            partitioned.candidates, partitioned.clusters,
            sequential.candidates, sequential.clusters,
        )
    except PartitionError as exc:
        print(f"INVARIANT VIOLATED: {exc}")
        return 1
    print("invariant OK: union(partitions) == sequential")
    seq_total = sequential.total_stats
    print(f"sequential : {seq_total.elapsed_s:8.3f} s  cpu {seq_total.cpu_s:7.3f}"
          f"  io {seq_total.io.total:,}")
    print(f"{args.servers}-server   : {partitioned.modeled_elapsed_s:8.3f} s  "
          f"cpu {partitioned.cpu_s:7.3f}  io {partitioned.io_ops:,} "
          f"(modeled: max over servers)")
    print(f"speedup {seq_total.elapsed_s / partitioned.modeled_elapsed_s:.2f}x  "
          f"cpu ratio {100 * partitioned.cpu_s / seq_total.cpu_s:.0f}%  "
          f"io ratio {100 * partitioned.io_ops / seq_total.io.total:.0f}%")
    if partitioned.wall_s is not None:
        print(f"measured wall-clock ({partitioned.backend}): "
              f"{partitioned.wall_s:.3f} s "
              f"({seq_total.elapsed_s / partitioned.wall_s:.2f}x real speedup)")
        for worker in partitioned.workers:
            degraded = "  DEGRADED to in-parent" if worker.degraded else ""
            print(f"  server{worker.server}: {worker.worker}  "
                  f"wall {worker.wall_s:.3f} s  cpu {worker.cpu_s:.3f} s  "
                  f"attempts {worker.attempts}{degraded}")
    return 0


def cmd_compare(args) -> int:
    from repro.engine.stats import TaskTimer
    from repro.tam.runner import run_tam

    config, kcorr, sky = _make_sky(args)
    with TaskTimer("tam") as timer:
        tam = run_tam(sky.catalog, args.target, kcorr, config,
                      tempfile.mkdtemp(prefix="repro_cli_"))
    sql = run_maxbcg(sky.catalog, args.target, kcorr, config,
                     compute_members=False)
    print(f"TAM (file-based): {timer.stats.elapsed_s:8.3f} s  "
          f"({len(tam.fields)} fields, "
          f"{tam.file_stats.files_written} files written)")
    print(f"SQL (set-based) : {sql.total_stats.elapsed_s:8.3f} s")
    speedup = timer.stats.elapsed_s / sql.total_stats.elapsed_s
    print(f"speedup: {speedup:.1f}x (same configuration on both sides)")
    return 0 if speedup > 1.0 else 1


def cmd_sql(args) -> int:
    from repro.core.procedures import install_maxbcg
    from repro.engine.database import Database

    config, kcorr, sky = _make_sky(args)
    db = Database("cli", config=_engine_config(args))
    db.create_table("galaxy_source", sky.catalog.as_columns(),
                    primary_key="objid")
    install_maxbcg(db, kcorr, config)
    text = args.execute
    if args.script:
        with open(args.script) as handle:
            text = handle.read()
    for result in db.run_script(text):
        if result.row_count:
            names = result.column_names
            print("  ".join(names))
            for row in result.rows()[:50]:
                print("  ".join(str(row[n]) for n in names))
            if result.row_count > 50:
                print(f"... ({result.row_count:,} rows total)")
        elif result.rows_affected:
            print(f"({result.rows_affected:,} rows affected)")
    return 0


def _demo_database(args):
    """The demo catalog: MaxBCG installed, galaxies imported and zoned."""
    from repro.core.procedures import install_maxbcg
    from repro.engine.database import Database

    config, kcorr, sky = _make_sky(args)
    db = Database("cli", config=_engine_config(args))
    db.create_table("galaxy_source", sky.catalog.as_columns(),
                    primary_key="objid")
    install_maxbcg(db, kcorr, config)
    box = args.target.expand(2 * config.buffer_deg)
    db.sql(f"EXEC spImportGalaxy {box.ra_min}, {box.ra_max}, "
           f"{box.dec_min}, {box.dec_max}")
    db.sql("EXEC spZone")
    return db


def cmd_analyze(args) -> int:
    from repro.engine.instrument import explain_analyze

    db = _demo_database(args)
    report = explain_analyze(db, args.execute)
    print(report.render())
    return 0


def cmd_explain(args) -> int:
    db = _demo_database(args)
    if not args.no_stats:
        db.sql("ANALYZE")
    if not args.analyze:
        print(db.explain(args.sql, optimizer=args.optimizer))
        return 0
    report = db.explain_analyze(args.sql, optimizer=args.optimizer)
    print(report.render())
    print()
    print(report.quality_report().render())
    return 0


def cmd_workloads(_args) -> int:
    from repro.bench.workloads import WORKLOADS

    print(f"{'name':8s}{'target deg^2':>13s}{'density':>9s}{'z-step':>8s}")
    for workload in WORKLOADS.values():
        print(f"{workload.name:8s}{workload.target.flat_area():13.1f}"
              f"{workload.field_density:9.0f}{workload.sql.z_step:8.3f}")
    print("\nselect with REPRO_BENCH_SCALE=<name> for "
          "`pytest benchmarks/ --benchmark-only`")
    return 0


def cmd_casjobs(args) -> int:
    from repro.bench.casjobs_load import (
        LoadSpec,
        build_demo_site,
        check_no_lost_or_duplicated,
        run_load,
    )
    from repro.casjobs.queue import QueueClass
    from repro.errors import CasJobsError

    if args.casjobs_command == "serve":
        spec = LoadSpec(
            n_users=args.users, n_jobs=args.jobs, workers=args.workers,
            quick_fraction=args.quick_frac, pool=args.pool,
            high_water=args.high_water, seed=args.seed,
            result_cache=args.cache, zipf_queries=args.zipf,
        )
        service = build_demo_site(spec)
        report = run_load(spec, service=service)
        print(report.render())
        try:
            check_no_lost_or_duplicated(service, spec.n_jobs - report.shed)
        except CasJobsError as exc:
            print(f"INVARIANT VIOLATED: {exc}")
            return 1
        print("invariant OK: every admitted job terminal exactly once")
        return 0 if report.failed == 0 else 1

    if args.casjobs_command == "submit":
        spec = LoadSpec(n_users=0, seed=args.seed,
                        result_cache=args.cache)
        service = build_demo_site(spec)
        service.register_user(args.user)
        queue_class = (QueueClass.QUICK if args.queue == "quick"
                       else QueueClass.LONG)
        job = service.submit(args.user, args.execute, "dr1",
                             output_table=args.into, queue_class=queue_class)
        service.process_queue()
        job = service.queue.get(job.job_id)
        print(f"job {job.job_id} [{job.queue_class.value}] {job.status.value}"
              f"  wait {1e3 * (job.queue_seconds or 0):.2f} ms"
              f"  run {1e3 * (job.run_seconds or 0):.2f} ms")
        if job.error:
            print(f"error: {job.error}")
            return 1
        result = service.fetch(args.user, job.job_id)
        names = result.column_names
        print("  ".join(names))
        for row in result.rows()[:20]:
            print("  ".join(str(row[n]) for n in names))
        if result.row_count > 20:
            print(f"... ({result.row_count:,} rows total)")
        if args.into:
            print(f"spooled into {args.user}'s MyDB as '{args.into}' "
                  f"({service.mydb(args.user).rows_used():,} rows used)")
        return 0

    # status: run a small mixed workload, then show the ledger
    spec = LoadSpec(n_users=3, n_jobs=args.jobs, workers=2,
                    quick_fraction=0.5, seed=args.seed,
                    result_cache=args.cache)
    service = build_demo_site(spec)
    run_load(spec, service=service)
    print(f"{'id':>4s}  {'owner':8s}{'class':7s}{'status':10s}"
          f"{'wait ms':>9s}{'run ms':>9s}  error")
    for job in service.queue.jobs():
        print(f"{job.job_id:4d}  {job.owner:8s}{job.queue_class.value:7s}"
              f"{job.status.value:10s}"
              f"{1e3 * (job.queue_seconds or 0):9.2f}"
              f"{1e3 * (job.run_seconds or 0):9.2f}  {job.error or ''}")
    for key, value in service.status().items():
        print(f"  {key}: {value}")
    return 0


def _obs_demo_run(args):
    """Run one MaxBCG job through the full stack: a CasJobs scheduler
    dispatches it, the cluster backend fans out partitions, each runs
    the engine pipeline.  The shared workload behind ``repro trace``
    and ``repro metrics``."""
    from repro.casjobs.queue import JobQueue, QueueClass
    from repro.casjobs.scheduler import Scheduler, SchedulerConfig
    from repro.cluster.executor import run_partitioned

    if args.demo:  # CI-smoke scale: seconds, not minutes
        args.density = min(args.density, 150.0)
        args.clusters = min(args.clusters, 3.0)
    config, kcorr, sky = _make_sky(args)

    def executor(job):
        return run_partitioned(
            sky.catalog, args.target, kcorr, config,
            n_servers=args.servers, backend=args.backend,
            compute_members=False,
        )

    queue = JobQueue()
    scheduler = Scheduler(
        queue, executor,
        SchedulerConfig(pool="sequential", max_workers=1),
    )
    job = scheduler.submit("astronomer", "EXEC maxbcg", "dr1",
                           queue_class=QueueClass.LONG)
    scheduler.run_until_idle(timeout_s=600)
    scheduler.close()
    finished = queue.get(job.job_id)
    print(f"job {finished.job_id} {finished.status.value}: "
          f"{sky.n_galaxies:,} galaxies through {args.servers} "
          f"{args.backend} partition(s)")
    return finished


def cmd_trace(args) -> int:
    from repro.errors import ObsError
    from repro.obs import (
        get_slow_log,
        get_tracer,
        render_tree,
        tracing,
        write_chrome_trace,
        write_jsonl,
    )

    if args.slow_ms is not None:
        get_slow_log().set_threshold(args.slow_ms / 1e3)
    with tracing():
        _obs_demo_run(args)
        spans = get_tracer().spans()

    trace_ids = {s.trace_id for s in spans}
    layers = sorted({s.layer for s in spans})
    print(f"{len(spans)} spans, {len(trace_ids)} trace(s), "
          f"layers: {', '.join(layers)}")
    print(render_tree(spans))
    if args.fmt == "chrome":
        from repro.obs import get_metrics

        try:
            path = write_chrome_trace(
                spans, args.out,
                counter_samples=get_metrics().scalars("engine."),
            )
        except ObsError as exc:
            print(f"INVALID TRACE: {exc}")
            return 1
        print(f"chrome trace written to {path} "
              "(load in about:tracing or ui.perfetto.dev)")
    elif args.fmt == "jsonl":
        print(f"spans written to {write_jsonl(spans, args.out)}")
    slow = get_slow_log()
    if args.slow_ms is not None or len(slow):
        print(slow.render())
    return 0


def cmd_metrics(args) -> int:
    from repro.obs import get_metrics

    _obs_demo_run(args)
    print(get_metrics().render())
    return 0


def cmd_memo(args) -> int:
    args.feedback = True  # the command exists to show the feedback loop
    db = _demo_database(args)
    db.sql("ANALYZE")
    sql = args.execute or (
        "SELECT COUNT(*) AS pairs FROM zone z1 JOIN zone z2 "
        "ON z1.zoneid = z2.zoneid WHERE z1.objid < z2.objid"
    )
    for cycle in range(max(args.repeat, 1)):
        if args.shift and cycle == 1:
            # stale the statistics mid-run: duplicate the low zones so
            # the analyzed histograms no longer match the data
            low = int(db.sql("SELECT MIN(zoneid) AS z FROM zone").scalar())
            db.sql(f"INSERT INTO zone SELECT objid + 1000000, zoneid, "
                   f"ra, dec FROM zone WHERE zoneid <= {low + 2}")
            print("-- shifted: low zones duplicated, stats now stale")
        result = db.sql(sql)
        entry = db.feedback.store.get(result.fingerprint)
        max_q = entry.last_max_q if entry is not None else None
        print(f"cycle {cycle}: memo={result.memo_decision:16s} "
              f"rows={result.row_count:,}"
              + (f"  max_q={max_q:.2f}" if max_q is not None else ""))
    print()
    print(db.feedback.render())
    return 0


def _querystore_database(config):
    """A small shifted 3-table chain (bench_feedback at smoke scale).

    Seeded and ANALYZEd, then the join key ``b.k2`` is skewed onto the
    single value ``c`` holds — the planner's containment estimate is
    badly stale, the first execution breaches the q-error ceiling, and
    the feedback loop re-plans: exactly the plan-change event the Query
    Store exists to record."""
    from repro.engine.database import Database

    db = Database("querystore_demo", config=config)
    rng = np.random.default_rng(7)
    n_a = 1200
    db.create_table(
        "a",
        {"k1": np.arange(n_a, dtype=np.int64),
         "grp": (np.arange(n_a) % 4).astype(np.int64)},
        primary_key="k1",
    )
    n_b = 1200
    db.create_table(
        "b",
        {"k1": rng.integers(0, n_a, n_b).astype(np.int64),
         "k2": (np.arange(n_b) % 300 + 1).astype(np.int64)},
    )
    db.create_table(
        "c", {"k2": np.zeros(40, dtype=np.int64), "w": rng.normal(size=40)}
    )
    db.sql("ANALYZE")
    n_hot = 10_000
    db.table("b").insert({
        "k1": rng.integers(0, n_a, n_hot).astype(np.int64),
        "k2": np.zeros(n_hot, dtype=np.int64),
    })
    db.invalidate_indexes("b")
    return db


def cmd_querystore(args) -> int:
    import hashlib

    from repro.obs.querystore import VIEW_PLANS, VIEW_QUERIES

    args.feedback = True     # the regression story needs the re-plan
    args.query_store = True  # the command exists to show the store
    db = _querystore_database(_engine_config(args))
    store, forcer = db.query_store, db.plan_forcer
    sql = ("SELECT COUNT(*) AS n FROM a JOIN b ON a.k1 = b.k1 "
           "JOIN c ON b.k2 = c.k2 WHERE a.grp = 0")
    digests: set[str] = set()

    def run_cycles(n: int, label: str) -> None:
        for cycle in range(n):
            result = db.sql(sql)
            digest = hashlib.sha256(
                np.ascontiguousarray(result.columns["n"]).tobytes()
            ).hexdigest()
            digests.add(digest)
            print(f"  {label} cycle {cycle}: "
                  f"plan={result.plan_origin or '?':16s}  "
                  f"memo={result.memo_decision or '-':16s}  "
                  f"n={int(result.scalar()):,}")

    print(f"-- {max(args.repeat, 4)} executions on shifted data "
          "(stats stale; feedback re-plans on q-error breach)")
    run_cycles(max(args.repeat, 4), "warm")
    fingerprint = db.statement_key(sql)

    if args.action == "regressions" and not args.demo:
        changes = store.plan_changes()
        if not changes:
            print("no plan changes recorded")
            return 0
        for change in changes:
            ratio = change.ratio
            print(f"{change.fingerprint[:12]}  plan {change.old_plan_id} "
                  f"-> {change.new_plan_id} ({change.decision})  "
                  f"verdict={change.verdict or 'pending'}"
                  + (f"  new/old={ratio:.2f}x" if ratio is not None else ""))
        return 0

    if not args.demo:
        print()
        print(store.render(forcer))
        return 0

    # --demo: force the pre-feedback plan back, watch the regression
    checks: list[tuple[str, bool]] = []
    replans = [c for c in store.plan_changes()
               if c.decision in ("replan", "learned-override")]
    checks.append(("feedback re-plan recorded as a plan change",
                   len(replans) == 1))
    improvement = replans[0] if replans else None
    checks.append((
        "re-plan classified as an improvement",
        improvement is not None and improvement.verdict == "improvement",
    ))

    if improvement is not None and fingerprint is not None:
        old_id = improvement.old_plan_id
        print(f"\n-- forcing plan {old_id} (the pre-feedback plan) back")
        db.force_plan(fingerprint, old_id)
        run_cycles(3, "forced")
        forced_changes = [c for c in store.plan_changes()
                          if c.new_plan_id == old_id
                          and c.decision.startswith("forced")]
        checks.append(("forcing recorded as a plan change",
                       len(forced_changes) == 1))
        checks.append((
            "forced old plan classified as a regression",
            any(c.new_plan_id == old_id for c in store.regressions()),
        ))
        view = db.sql(
            f"SELECT fingerprint, executions, forced_plan_id "
            f"FROM {VIEW_QUERIES}"
        )
        row = next((r for r in view.rows()
                    if r["fingerprint"] == fingerprint), None)
        stored = store.query(fingerprint)
        checks.append((
            "SELECT over sys_query_store_queries matches the store",
            row is not None and stored is not None
            and int(row["executions"]) == stored.executions
            and int(row["forced_plan_id"]) == old_id,
        ))
        forced_rows = db.sql(
            f"SELECT plan_id, is_forced FROM {VIEW_PLANS}"
        ).rows()
        checks.append((
            "sys_query_store_plans flags exactly the forced plan",
            [r["plan_id"] for r in forced_rows if r["is_forced"]] == [old_id],
        ))
        print(f"\n-- unforcing {fingerprint[:12]}")
        checks.append(("unforce removes the pin",
                       db.unforce_plan(fingerprint)))
        run_cycles(1, "unforced")
        checks.append((
            "post-unforce execution is not forced",
            not (store.query(fingerprint).current_plan_id == old_id
                 and forcer.get(fingerprint) is not None),
        ))
    checks.append(("every answer byte-identical", len(digests) == 1))

    print()
    print(store.render(forcer))
    print()
    failed = [claim for claim, ok in checks if not ok]
    for claim, ok in checks:
        print(f"  [{'ok' if ok else 'FAIL'}] {claim}")
    if failed:
        print(f"{len(failed)} check(s) failed")
        return 1
    print("all checks passed")
    return 0


COMMANDS = {
    "run": cmd_run,
    "partition": cmd_partition,
    "compare": cmd_compare,
    "sql": cmd_sql,
    "analyze": cmd_analyze,
    "explain": cmd_explain,
    "workloads": cmd_workloads,
    "casjobs": cmd_casjobs,
    "trace": cmd_trace,
    "metrics": cmd_metrics,
    "memo": cmd_memo,
    "querystore": cmd_querystore,
}


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    return COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
