"""The paper's MaxBCG as stored procedures on the engine.

This module is the closest thing in the reproduction to running the
paper's appendix verbatim: :class:`MaxBCGSqlApplication` installs, on a
:class:`~repro.engine.database.Database`,

* the appendix **schema** — ``Kcorr``, ``Galaxy``, ``Candidates``,
  ``Clusters``, ``ClusterGalaxiesMetric`` — as real engine tables;
* the **Zone view** over primary galaxies;
* the table-valued function **fGetNearbyObjEqZd**, callable from SQL
  (``SELECT * FROM fGetNearbyObjEqZd(2.5, 3.0, 0.5) n``);
* the **stored procedures** ``spImportGalaxy``, ``spZone``,
  ``spMakeCandidates``, ``spMakeClusters`` and
  ``spMakeGalaxiesMetric``, invokable with ``EXEC`` exactly as the
  appendix's driver script does.

The procedures' bodies reuse the audited kernels of
:mod:`repro.core` (cursor-style, like the SQL originals), so a run via

    EXEC spImportGalaxy 172, 185, -3, 5
    EXEC spZone
    EXEC spMakeCandidates 172.5, 184.5, -2.5, 4.5
    EXEC spMakeClusters
    EXEC spMakeGalaxiesMetric

produces catalogs identical to :class:`~repro.core.pipeline.MaxBCGPipeline`
(a test asserts this), while every row flows through engine tables with
full page-I/O accounting.
"""

from __future__ import annotations

import numpy as np

from repro.core.candidates import evaluate_galaxy
from repro.core.clusters import make_clusters
from repro.core.config import MaxBCGConfig
from repro.core.kcorrection import KCorrectionTable
from repro.core.members import make_cluster_members
from repro.core.results import CandidateCatalog
from repro.engine.database import Database
from repro.errors import EngineError
from repro.skyserver.catalog import GALAXY_COLUMNS, GalaxyCatalog
from repro.skyserver.regions import RegionBox
from repro.spatial.zones import ZoneIndex, zone_id

#: The appendix schema, lightly adapted to the engine's SQL subset
#: (identity columns and float-width splits are uniform here).
APPENDIX_SCHEMA = """
CREATE TABLE Kcorr (
    zid int PRIMARY KEY NOT NULL,
    z real, i real, ilim real,
    ug real, gr real, ri real, iz real,
    radius float
);
CREATE TABLE Galaxy (
    objid bigint PRIMARY KEY,
    ra float, dec float,
    i real, gr real, ri real,
    sigmagr float, sigmari float
);
CREATE TABLE Candidates (
    objid bigint PRIMARY KEY,
    ra float, dec float, z float, i real,
    ngal int, chi2 float
);
CREATE TABLE Clusters (
    objid bigint PRIMARY KEY,
    ra float, dec float, z float, i real,
    ngal int, chi2 float
);
CREATE TABLE ClusterGalaxiesMetric (
    clusterObjID bigint,
    galaxyObjID bigint,
    distance float
);
"""


class MaxBCGSqlApplication:
    """The deployable MaxBCG SQL application (the paper's ~500 lines).

    One instance binds to one database.  After construction, everything
    is driven through SQL: ``db.sql("EXEC spZone")`` etc.  The galaxy
    *source* (the stand-in for ``MySkyServerDr1.dbo.Galaxy``) is a
    table named ``galaxy_source`` that the caller loads — in the
    federation scenario each site loads its own stripe.
    """

    def __init__(
        self,
        database: Database,
        kcorr: KCorrectionTable,
        config: MaxBCGConfig,
    ):
        self.database = database
        self.kcorr = kcorr
        self.config = config
        self._index: ZoneIndex | None = None
        self._catalog: GalaxyCatalog | None = None
        self._install()

    # ------------------------------------------------------------------
    def _install(self) -> None:
        db = self.database
        db.run_script(APPENDIX_SCHEMA)
        db.table("kcorr").insert(self.kcorr.as_columns())

        db.create_table_function(
            "fGetNearbyObjEqZd", ("objid", "distance"), self._f_get_nearby
        )
        db.create_procedure("spImportGalaxy", self._sp_import_galaxy)
        db.create_procedure("spZone", self._sp_zone)
        db.create_procedure("spMakeCandidates", self._sp_make_candidates)
        db.create_procedure("spMakeClusters", self._sp_make_clusters)
        db.create_procedure("spMakeGalaxiesMetric", self._sp_make_galaxies_metric)

    # ------------------------------------------------------------------
    # state helpers
    # ------------------------------------------------------------------
    def _require_zoned(self) -> tuple[GalaxyCatalog, ZoneIndex]:
        if self._catalog is None or self._index is None:
            raise EngineError(
                "run EXEC spZone before neighbor searches (the paper's "
                "spZone 'arranges the data in Zones so the neighborhood "
                "searches are efficient')"
            )
        return self._catalog, self._index

    def _read_candidates(self) -> CandidateCatalog:
        table = self.database.table("candidates")
        columns = table.scan()
        return CandidateCatalog(**columns)

    # ------------------------------------------------------------------
    # the table-valued function
    # ------------------------------------------------------------------
    def _f_get_nearby(self, ra: float, dec: float, radius: float):
        """``fGetNearbyObjEqZd``: neighbors within a cone, as a batch."""
        catalog, index = self._require_zoned()
        rows, distances = index.query(float(ra), float(dec), float(radius))
        self.database.table("galaxy").touch_rows(rows)
        return {
            "objid": catalog.objid[rows],
            "distance": distances,
        }

    # ------------------------------------------------------------------
    # stored procedures
    # ------------------------------------------------------------------
    def _sp_import_galaxy(self, db: Database, min_ra, max_ra, min_dec, max_dec):
        """``spImportGalaxy``: cut the source catalog into Galaxy."""
        source = db.table("galaxy_source")
        columns = source.scan()
        region = RegionBox(float(min_ra), float(max_ra),
                           float(min_dec), float(max_dec))
        mask = region.contains(columns["ra"], columns["dec"])
        galaxy = db.table("galaxy")
        galaxy.truncate()
        db.invalidate_indexes("galaxy")
        selected = {name: columns[name][mask] for name in GALAXY_COLUMNS}
        if selected["objid"].size:
            galaxy.insert(selected)
        self._catalog = None
        self._index = None
        return int(mask.sum())

    def _sp_zone(self, db: Database):
        """``spZone``: sort Galaxy into zone order, build the clustered
        index, and cache the in-memory zone structure.

        Also materializes the ``Zone`` table — (objid, zoneid, ra, dec)
        clustered on (zoneid, ra) — so declarative zone joins have an
        index-backed access path, exactly the structure the paper's
        set-oriented rewrite exploits.
        """
        galaxy = db.table("galaxy")
        catalog = GalaxyCatalog.from_columns(galaxy.columns_dict())
        index = ZoneIndex(catalog.ra, catalog.dec, self.config.zone_height_deg)
        sorted_catalog = catalog.take(index.source_index)
        # physically re-sort the engine table to match (spZone's rewrite)
        galaxy.reorder(index.source_index)
        self._catalog = sorted_catalog
        self._index = ZoneIndex(
            sorted_catalog.ra, sorted_catalog.dec, self.config.zone_height_deg
        )
        db.drop_table("zone", if_exists=True)
        db.create_table("zone", {
            "objid": sorted_catalog.objid,
            "zoneid": self._index.zone,
            "ra": self._index.ra,
            "dec": self._index.dec,
        }, primary_key="objid")
        db.create_clustered_index("zone", "zoneid", "ra")
        return galaxy.row_count

    def _sp_make_candidates(self, db: Database, min_ra, max_ra, min_dec, max_dec):
        """``spMakeCandidates``: cursor over galaxies in the bounds,
        ``fBCGCandidate`` for each, INSERT the survivors."""
        catalog, index = self._require_zoned()
        db.sql("TRUNCATE TABLE Candidates")
        region = RegionBox(float(min_ra), float(max_ra),
                           float(min_dec), float(max_dec))
        galaxy_table = db.table("galaxy")
        rows = []
        for position in np.flatnonzero(
            region.contains(catalog.ra, catalog.dec)
        ):
            galaxy_table.touch_rows(np.asarray([position]))  # FETCH NEXT
            result = evaluate_galaxy(
                catalog, int(position), index, self.kcorr, self.config
            )
            if result is not None:
                rows.append(result)
        candidates = CandidateCatalog.from_rows(rows)
        if len(candidates):
            db.table("candidates").insert(candidates.as_columns())
        return len(candidates)

    def _sp_make_clusters(self, db: Database):
        """``spMakeClusters``: keep candidates that are cluster centers."""
        candidates = self._read_candidates()
        db.sql("TRUNCATE TABLE Clusters")
        clusters = make_clusters(
            candidates, self.kcorr, self.config, method="cursor",
            on_rivals=db.table("candidates").touch_rows,
        )
        if len(clusters):
            db.table("clusters").insert(clusters.as_columns())
        return len(clusters)

    def _sp_make_galaxies_metric(self, db: Database):
        """``spMakeGalaxiesMetric``: membership links for every cluster."""
        catalog, index = self._require_zoned()
        clusters_columns = db.table("clusters").scan()
        clusters = CandidateCatalog(**clusters_columns)
        db.sql("TRUNCATE TABLE ClusterGalaxiesMetric")
        members = make_cluster_members(
            catalog, clusters, index, self.kcorr, self.config
        )
        if len(members):
            db.table("clustergalaxiesmetric").insert({
                "clusterobjid": members.cluster_objid,
                "galaxyobjid": members.galaxy_objid,
                "distance": members.distance,
            })
        return len(members)


#: The appendix's demo driver, ready for ``db.run_script`` after a
#: MaxBCGSqlApplication is installed and galaxy_source is loaded.
DEMO_SCRIPT = """
EXEC spImportGalaxy 190, 200, 0, 5;
EXEC spZone;
EXEC spMakeCandidates 194, 196, 1.5, 3.5;
EXEC spMakeClusters;
EXEC spMakeGalaxiesMetric;
"""


def install_maxbcg(
    database: Database, kcorr: KCorrectionTable, config: MaxBCGConfig
) -> MaxBCGSqlApplication:
    """Deploy the MaxBCG SQL application onto a database."""
    return MaxBCGSqlApplication(database, kcorr, config)
