"""``fIsCluster`` / ``spMakeClusters``: pick the brightest candidate.

A candidate is the *center* of its cluster when, among all candidates
within the 1 Mpc radius at its redshift whose redshift is within ±0.05,
it holds the maximum weighted likelihood.  The candidate itself is part
of that neighborhood (distance 0), so the max always exists and the
test reduces to "nobody nearby beats me".
"""

from __future__ import annotations

import numpy as np

from repro.core.config import MaxBCGConfig
from repro.core.kcorrection import KCorrectionTable
from repro.core.results import CandidateCatalog, ClusterCatalog
from repro.skyserver.regions import RegionBox
from repro.spatial.zonejoin import zone_join
from repro.spatial.zones import ZoneIndex

#: Float-equality tolerance of the SQL's ``abs(@chi - @chi2) < 0.00001``.
CHI_MATCH_TOLERANCE = 1e-5


def is_cluster_center(
    candidates: CandidateCatalog,
    index: ZoneIndex,
    position: int,
    kcorr: KCorrectionTable,
    config: MaxBCGConfig,
) -> bool:
    """``fIsCluster`` for the candidate at ``position``.

    ``index`` must be a zone index built over the candidate catalog's
    (ra, dec) in the same row order.
    """
    z = float(candidates.z[position])
    radius = kcorr.radius_at(z)
    hits, _ = index.query(
        float(candidates.ra[position]), float(candidates.dec[position]), radius
    )
    z_ok = np.abs(candidates.z[hits] - z) <= config.z_match_window
    rivals = hits[z_ok]
    if rivals.size == 0:
        # Cannot happen when the candidate indexes itself (distance 0),
        # but guard for callers probing foreign candidate sets.
        return False
    best = float(candidates.chi2[rivals].max())
    return abs(best - float(candidates.chi2[position])) < CHI_MATCH_TOLERANCE


def make_clusters(
    candidates: CandidateCatalog,
    kcorr: KCorrectionTable,
    config: MaxBCGConfig,
    target: RegionBox | None = None,
    method: str = "vectorized",
    on_rivals=None,
) -> ClusterCatalog:
    """``spMakeClusters``: all candidates that are their cluster's center.

    ``target`` restricts which candidates are *tested* (the paper's
    Figure 5 select: only candidates inside T become clusters), while
    the competition still sees every candidate in the catalog —
    including the buffer-region ones, which is the whole reason
    candidates were computed on B rather than T.

    ``method`` selects the evaluation strategy: ``"vectorized"``
    resolves every competition with one batched zone join;
    ``"cursor"`` calls :func:`is_cluster_center` per candidate (the SQL
    shape).  Outputs are identical.

    ``on_rivals``, when given, receives the array of candidate-catalog
    row positions that were inspected as rivals — the pipeline uses it
    to account page reads on the engine's Candidates table.
    """
    if len(candidates) == 0:
        return CandidateCatalog.empty()

    if target is None:
        tested = np.arange(len(candidates))
    else:
        tested = np.flatnonzero(target.contains(candidates.ra, candidates.dec))

    if method == "cursor":
        index = ZoneIndex(candidates.ra, candidates.dec, config.zone_height_deg)
        winners = []
        for position in tested:
            if on_rivals is not None:
                z = float(candidates.z[position])
                rivals, _ = index.query(
                    float(candidates.ra[position]),
                    float(candidates.dec[position]),
                    kcorr.radius_at(z),
                )
                on_rivals(rivals)
            if is_cluster_center(candidates, index, int(position), kcorr, config):
                winners.append(int(position))
        return candidates.take(np.asarray(winners, dtype=np.int64))

    index = ZoneIndex(candidates.ra, candidates.dec, config.zone_height_deg)
    radii = kcorr.radius[kcorr.nearest_zids(candidates.z[tested])]
    pairs = zone_join(index, candidates.ra[tested], candidates.dec[tested], radii)

    # Keep rivals inside the +-z_match_window redshift slice.
    keep = (
        np.abs(candidates.z[pairs.catalog_index] - candidates.z[tested][pairs.query_index])
        <= config.z_match_window
    )
    q = pairs.query_index[keep]
    rival_rows = pairs.catalog_index[keep]
    if on_rivals is not None:
        on_rivals(rival_rows)
    rival_chi2 = candidates.chi2[rival_rows]

    best = np.full(tested.size, -np.inf)
    np.maximum.at(best, q, rival_chi2)
    is_center = np.abs(best - candidates.chi2[tested]) < CHI_MATCH_TOLERANCE
    return candidates.take(tested[is_center])
