"""Per-redshift neighbor counting: the ``@counts`` logic of fBCGCandidate.

Given a candidate's friends (retrieved through the coarse search
windows) and the set of redshifts where the candidate passed the
filter, count — for every passing redshift — the friends that fall
inside that redshift's *tight* windows::

    f.distance < k.radius(z)
    f.i  BETWEEN @imag AND k.ilim(z)
    f.gr BETWEEN k.gr(z) - grPopSigma AND k.gr(z) + grPopSigma
    f.ri BETWEEN k.ri(z) - riPopSigma AND k.ri(z) + riPopSigma

This is the CPU-heavy inner kernel of the whole algorithm ("this every
redshift search is required because the color window, the magnitude
window, and the search radius all change with redshift").
"""

from __future__ import annotations

import numpy as np

from repro.core.config import MaxBCGConfig
from repro.core.kcorrection import KCorrectionTable


def count_friends_per_redshift(
    friend_distance: np.ndarray,
    friend_i: np.ndarray,
    friend_gr: np.ndarray,
    friend_ri: np.ndarray,
    candidate_i: float,
    passing_zids: np.ndarray,
    kcorr: KCorrectionTable,
    config: MaxBCGConfig,
) -> np.ndarray:
    """Friend counts per passing redshift (aligned with ``passing_zids``).

    Vectorized as a (n_friends × n_passing) condition matrix — small on
    both axes (friends already window-filtered, typically a handful of
    passing redshifts).
    """
    n_pass = passing_zids.size
    if friend_distance.size == 0 or n_pass == 0:
        return np.zeros(n_pass, dtype=np.int64)

    radius = kcorr.radius[passing_zids][None, :]
    ilim = kcorr.ilim[passing_zids][None, :]
    gr_center = kcorr.gr[passing_zids][None, :]
    ri_center = kcorr.ri[passing_zids][None, :]

    distance_ok = friend_distance[:, None] < radius
    mag_ok = (friend_i[:, None] >= candidate_i) & (friend_i[:, None] <= ilim)
    gr_ok = np.abs(friend_gr[:, None] - gr_center) <= config.gr_pop_sigma
    ri_ok = np.abs(friend_ri[:, None] - ri_center) <= config.ri_pop_sigma

    return (distance_ok & mag_ok & gr_ok & ri_ok).sum(axis=0).astype(np.int64)


def best_weighted_redshift(
    counts: np.ndarray,
    chisq_at_passing: np.ndarray,
    passing_zids: np.ndarray,
) -> tuple[int, int, float] | None:
    """Pick the redshift maximizing ``log(ngal+1) - chisq``.

    Only redshifts with at least one neighbor compete ("It must have at
    least one neighbor").  Returns ``(zid, ngal, weighted)`` or None when
    every passing redshift has zero neighbors — the candidate is dropped.
    Ties resolve to the lowest redshift, matching the SQL's selection of
    rows within 1e-8 of the max (which keeps the first in zid order).
    """
    eligible = counts > 0
    if not eligible.any():
        return None
    weighted = np.log(counts + 1.0) - chisq_at_passing
    weighted = np.where(eligible, weighted, -np.inf)
    best = int(np.argmax(weighted))
    return int(passing_zids[best]), int(counts[best]), float(weighted[best])
