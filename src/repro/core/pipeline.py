"""End-to-end MaxBCG: the SQL implementation of Section 2.3.

:class:`MaxBCGPipeline` runs the paper's task sequence against a galaxy
catalog loaded into the relational engine, producing both the science
output and the per-task execution statistics of Table 1:

* ``spZone``         — load + zone the galaxies, build the clustered
  (zoneid, ra) index;
* ``fBCGCandidate``  — the candidate search over the buffer region B
  (the dominant task);
* ``fIsCluster``     — the cluster-center decision over the target T;
* ``spMakeGalaxiesMetric`` — membership retrieval (reported by the
  paper as "fairly simple and fast", kept out of Table 1's totals but
  measured here too).

Region geometry follows Figure 4: the caller supplies the *target* box
T; candidates are evaluated on B = T expanded by the configured buffer;
the catalog itself must cover P = B expanded once more so every
neighbor search is complete.  ``run`` checks this and raises otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.core.candidates import (
    find_candidates_cursor,
    find_candidates_vectorized,
)
from repro.core.clusters import make_clusters
from repro.core.config import MaxBCGConfig
from repro.core.kcorrection import KCorrectionTable
from repro.core.members import make_cluster_members
from repro.core.results import CandidateCatalog, ClusterCatalog, MemberTable
from repro.engine.database import Database
from repro.engine.stats import TaskStats, TaskTimer, sum_stats
from repro.obs.trace import span as obs_span
from repro.errors import ConfigError, RegionError
from repro.skyserver.catalog import GalaxyCatalog
from repro.skyserver.regions import RegionBox
from repro.spatial.zones import ZoneIndex, zone_id

#: Methods accepted by the pipeline.
METHODS = ("vectorized", "cursor")


@dataclass
class MaxBCGResult:
    """Science outputs + per-task statistics of one pipeline run."""

    candidates: CandidateCatalog
    clusters: ClusterCatalog
    members: MemberTable
    stats: dict[str, TaskStats]
    n_galaxies: int
    target: RegionBox
    buffer: RegionBox

    @property
    def total_stats(self) -> TaskStats:
        """The Table 1 'total' row: spZone + fBCGCandidate + fIsCluster."""
        parts = [self.stats[k] for k in ("spZone", "fBCGCandidate", "fIsCluster")]
        return sum_stats("total", parts)

    @property
    def candidate_fraction(self) -> float:
        """Fraction of galaxies that are BCG candidates (~3% in the paper)."""
        return len(self.candidates) / self.n_galaxies if self.n_galaxies else 0.0

    @property
    def cluster_fraction(self) -> float:
        """Fraction of galaxies that are BCGs (~0.13% in the paper)."""
        return len(self.clusters) / self.n_galaxies if self.n_galaxies else 0.0


class MaxBCGPipeline:
    """The SQL-implementation pipeline (single node).

    Parameters
    ----------
    kcorr, config:
        The k-correction table and algorithm parameters.
    method:
        ``"vectorized"`` (set-oriented, default) or ``"cursor"``
        (faithful row-at-a-time port) — same output either way.
    database:
        Engine instance to run in; a private one is created if omitted.
        All I/O accounting appears on ``database.pool.counters``.
    compute_members:
        Skip the membership step when False (Table 1 excludes it).
    progress:
        Optional hook called with each task's name as it completes
        ("spZone", "fBCGCandidate", ...) — the same hook shape every
        top-level entry point (:func:`run_maxbcg`,
        :func:`repro.cluster.executor.run_partitioned`,
        :func:`repro.tam.runner.run_tam`) accepts.
    """

    def __init__(
        self,
        kcorr: KCorrectionTable,
        config: MaxBCGConfig,
        method: str = "vectorized",
        database: Database | None = None,
        compute_members: bool = True,
        progress: "Callable[[str], None] | None" = None,
    ):
        if method not in METHODS:
            raise ConfigError(f"unknown method '{method}'; expected {METHODS}")
        self.kcorr = kcorr
        self.config = config
        self.method = method
        self.database = database or Database("maxbcg")
        self.compute_members = compute_members
        self.progress = progress

    def _report(self, task: str) -> None:
        if self.progress is not None:
            self.progress(task)

    # ------------------------------------------------------------------
    def run(
        self,
        catalog: GalaxyCatalog,
        target: RegionBox,
        buffer: RegionBox | None = None,
    ) -> MaxBCGResult:
        """Run the full pipeline for one target region."""
        buffer = buffer or target.expand(self.config.buffer_deg)
        if not buffer.contains_box(target):
            raise RegionError("buffer region must contain the target region")
        if len(catalog) == 0:
            raise RegionError("empty catalog")
        needed = buffer.expand(self.config.buffer_deg)
        bbox = catalog.bounding_box()
        # The catalog must cover P = B + buffer unless the sky itself ends
        # there; warn-by-raising only when the catalog is *strictly* inside.
        if not (
            bbox.ra_min <= max(needed.ra_min, bbox.ra_min)
            and bbox.ra_max >= min(needed.ra_max, bbox.ra_max)
        ):  # pragma: no cover - tautology guard, kept for clarity
            raise RegionError("catalog does not cover the search skirt")

        db = self.database
        counters = db.pool.counters
        stats: dict[str, TaskStats] = {}

        # ------------------------------------------------ spZone
        # Each task runs inside an engine-layer span (no-op while
        # tracing is off) so a partitioned trace shows the per-task
        # breakdown under every cluster.partition span.
        with obs_span("engine.task:spZone", layer="engine",
                      counters=counters), \
                TaskTimer("spZone", counters) as timer:
            index = ZoneIndex(catalog.ra, catalog.dec, self.config.zone_height_deg)
            sorted_catalog = catalog.take(index.source_index)
            # Rebuild the index over the sorted catalog so that index row
            # order == engine row order (identity source mapping).
            index = ZoneIndex(
                sorted_catalog.ra, sorted_catalog.dec, self.config.zone_height_deg
            )
            sorted_zones = zone_id(sorted_catalog.dec, self.config.zone_height_deg)
            galaxy_table = self._load_galaxy_table(sorted_catalog, sorted_zones)
            db.create_clustered_index("galaxy", "zoneid", "ra")
            timer.stats.rows = len(catalog)
        stats["spZone"] = timer.stats
        self._report("spZone")

        # ------------------------------------------------ fBCGCandidate
        with obs_span("engine.task:fBCGCandidate", layer="engine",
                      counters=counters), \
                TaskTimer("fBCGCandidate", counters) as timer:
            eval_rows = np.flatnonzero(
                buffer.contains(sorted_catalog.ra, sorted_catalog.dec)
            )
            galaxy_table.scan()  # the filter stage reads the whole table
            if self.method == "vectorized":
                candidates = find_candidates_vectorized(
                    sorted_catalog, eval_rows, index, self.kcorr, self.config
                )
            else:
                candidates = find_candidates_cursor(
                    sorted_catalog, eval_rows, index, self.kcorr, self.config
                )
            self._store_candidates(candidates, "candidates")
            timer.stats.rows = len(candidates)
        stats["fBCGCandidate"] = timer.stats
        self._report("fBCGCandidate")

        # ------------------------------------------------ fIsCluster
        with obs_span("engine.task:fIsCluster", layer="engine",
                      counters=counters), \
                TaskTimer("fIsCluster", counters) as timer:
            cand_table = db.table("candidates")
            cand_table.scan()
            # Rival inspections touch Candidates-table pages (the engine
            # table holds candidates in catalog order, so positions map 1:1).
            clusters = make_clusters(
                candidates,
                self.kcorr,
                self.config,
                target,
                method=self.method if self.method in ("vectorized", "cursor") else "vectorized",
                on_rivals=cand_table.touch_rows,
            )
            self._store_candidates(clusters, "clusters")
            timer.stats.rows = len(clusters)
        stats["fIsCluster"] = timer.stats
        self._report("fIsCluster")

        # ------------------------------------------------ members
        members = MemberTable.empty()
        if self.compute_members:
            with obs_span("engine.task:spMakeGalaxiesMetric", layer="engine",
                          counters=counters), \
                    TaskTimer("spMakeGalaxiesMetric", counters) as timer:
                members = make_cluster_members(
                    sorted_catalog, clusters, index, self.kcorr, self.config
                )
                for pos in range(len(clusters)):
                    zid = self.kcorr.nearest_zid(float(clusters.z[pos]))
                    radius = float(self.kcorr.radius[zid]) * self.config.r200_mpc(
                        float(clusters.ngal[pos])
                    )
                    for start, stop in index.scan_ranges(
                        float(clusters.ra[pos]), float(clusters.dec[pos]), radius
                    ):
                        galaxy_table.file.read_range(start, stop)
                self._store_members(members)
                timer.stats.rows = len(members)
            stats["spMakeGalaxiesMetric"] = timer.stats
            self._report("spMakeGalaxiesMetric")

        return MaxBCGResult(
            candidates=candidates,
            clusters=clusters,
            members=members,
            stats=stats,
            n_galaxies=len(catalog),
            target=target,
            buffer=buffer,
        )

    # ------------------------------------------------------------------
    def _load_galaxy_table(self, sorted_catalog: GalaxyCatalog, sorted_zones):
        """(Re)create the engine 'galaxy' table in zone order."""
        db = self.database
        if db.has_table("galaxy"):
            db.drop_table("galaxy")
        columns = sorted_catalog.as_columns()
        columns = {
            "objid": columns["objid"],
            "zoneid": np.asarray(sorted_zones, dtype=np.int64),
            **{k: v for k, v in columns.items() if k != "objid"},
        }
        return db.create_table("galaxy", columns, primary_key="objid")

    def _store_candidates(self, catalog: CandidateCatalog, name: str):
        db = self.database
        if db.has_table(name):
            db.drop_table(name)
        return db.create_table(name, catalog.as_columns(), primary_key="objid")

    def _store_members(self, members: MemberTable):
        db = self.database
        if db.has_table("clustergalaxiesmetric"):
            db.drop_table("clustergalaxiesmetric")
        return db.create_table("clustergalaxiesmetric", members.as_columns())


def run_maxbcg(
    catalog: GalaxyCatalog,
    target: RegionBox,
    kcorr: KCorrectionTable,
    config: MaxBCGConfig,
    method: str = "vectorized",
    compute_members: bool = True,
    *,
    progress: Callable[[str], None] | None = None,
) -> MaxBCGResult:
    """One-call convenience wrapper: build a pipeline and run it.

    Shares its keyword surface with the other entry points
    (:func:`repro.cluster.executor.run_partitioned`,
    :func:`repro.tam.runner.run_tam`): positional
    ``catalog, target, kcorr, config``, then options, with ``progress``
    receiving task/stage names as they complete.
    """
    pipeline = MaxBCGPipeline(
        kcorr, config, method=method, compute_members=compute_members,
        progress=progress,
    )
    return pipeline.run(catalog, target)
