"""The main task: ``fBCGCandidate`` / ``spMakeCandidates``.

Two implementations produce identical candidate catalogs:

* :func:`find_candidates_cursor` — a faithful port of the paper's SQL:
  a cursor over galaxies, each calling the per-object ``fBCGCandidate``
  body (chi² profile → windows → neighbor search → per-redshift counts
  → weighted max).  This is the shape the paper says "uses SQL cursors
  which are very slow ... there was no easy way to avoid them".
* :func:`find_candidates_vectorized` — the set-oriented rewrite: one
  chunked chi² filter over the whole region, one batched zone join for
  all surviving candidates' friend lists, then the per-candidate count
  kernel.  Same answers, different evaluation strategy — the ablation
  benchmark measures the gap.

Both evaluate galaxies in the *buffer* region B (candidates are needed
slightly outside the target so ``fIsCluster`` competitions near the
edge are fair — Figure 4) while searching neighbors in the full
imported catalog P.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import MaxBCGConfig
from repro.core.kcorrection import KCorrectionTable
from repro.core.likelihood import (
    chisq_profile,
    filter_catalog,
    windows_for,
)
from repro.core.neighbors import (
    best_weighted_redshift,
    count_friends_per_redshift,
)
from repro.core.results import CandidateCatalog
from repro.errors import CatalogError
from repro.skyserver.catalog import GalaxyCatalog
from repro.spatial.zonejoin import zone_join
from repro.spatial.zones import ZoneIndex


def _candidate_row(
    catalog: GalaxyCatalog, row: int, zid: int, ngal: int, weighted: float,
    kcorr: KCorrectionTable,
) -> dict:
    return {
        "objid": int(catalog.objid[row]),
        "ra": float(catalog.ra[row]),
        "dec": float(catalog.dec[row]),
        "z": float(kcorr.z[zid]),
        "i": float(catalog.i[row]),
        "ngal": ngal + 1,  # the SQL's "ngal+1 AS ngal" (count + the BCG)
        "chi2": weighted,
    }


def _check_eval_rows(catalog: GalaxyCatalog, eval_rows: np.ndarray) -> np.ndarray:
    eval_rows = np.asarray(eval_rows, dtype=np.int64)
    if eval_rows.size and (
        eval_rows.min() < 0 or eval_rows.max() >= len(catalog)
    ):
        raise CatalogError("eval_rows out of catalog range")
    return eval_rows


# ----------------------------------------------------------------------
# cursor-style (the SQL port)
# ----------------------------------------------------------------------
def evaluate_galaxy(
    catalog: GalaxyCatalog,
    row: int,
    index,
    kcorr: KCorrectionTable,
    config: MaxBCGConfig,
) -> dict | None:
    """``fBCGCandidate`` for one galaxy; None when it is not a candidate.

    ``index`` is any cone-search index over the full catalog (zone, HTM
    or brute force) — the strategy ablation swaps it.
    """
    chisq = chisq_profile(
        float(catalog.i[row]),
        float(catalog.gr[row]),
        float(catalog.ri[row]),
        float(catalog.sigmagr[row]),
        float(catalog.sigmari[row]),
        kcorr,
        config,
    )
    passing = np.flatnonzero(chisq < config.chi2_threshold)
    if passing.size == 0:
        return None

    windows = windows_for(float(catalog.i[row]), passing, kcorr, config)
    hits, distances = index.query(
        float(catalog.ra[row]), float(catalog.dec[row]), windows.radius
    )
    not_self = hits != row
    hits, distances = hits[not_self], distances[not_self]

    friend_i = catalog.i[hits]
    friend_gr = catalog.gr[hits]
    friend_ri = catalog.ri[hits]
    in_window = (
        (friend_i >= windows.i_min)
        & (friend_i <= windows.i_max)
        & (friend_gr >= windows.gr_min)
        & (friend_gr <= windows.gr_max)
        & (friend_ri >= windows.ri_min)
        & (friend_ri <= windows.ri_max)
    )
    counts = count_friends_per_redshift(
        distances[in_window],
        friend_i[in_window],
        friend_gr[in_window],
        friend_ri[in_window],
        float(catalog.i[row]),
        passing,
        kcorr,
        config,
    )
    best = best_weighted_redshift(counts, chisq[passing], passing)
    if best is None:
        return None
    zid, ngal, weighted = best
    return _candidate_row(catalog, row, zid, ngal, weighted, kcorr)


def find_candidates_cursor(
    catalog: GalaxyCatalog,
    eval_rows: np.ndarray,
    index,
    kcorr: KCorrectionTable,
    config: MaxBCGConfig,
) -> CandidateCatalog:
    """``spMakeCandidates``: cursor over ``eval_rows``, one call each."""
    eval_rows = _check_eval_rows(catalog, eval_rows)
    rows = []
    for row in eval_rows:
        result = evaluate_galaxy(catalog, int(row), index, kcorr, config)
        if result is not None:
            rows.append(result)
    return CandidateCatalog.from_rows(rows)


# ----------------------------------------------------------------------
# set-oriented (the fast path)
# ----------------------------------------------------------------------
def find_candidates_vectorized(
    catalog: GalaxyCatalog,
    eval_rows: np.ndarray,
    index: ZoneIndex,
    kcorr: KCorrectionTable,
    config: MaxBCGConfig,
) -> CandidateCatalog:
    """Set-oriented candidates: identical output to the cursor version.

    Stage 1 — chunked chi² filter of all evaluated galaxies (early
    filtering: ~97% never reach a neighbor search).
    Stage 2 — one batched zone join retrieves every surviving galaxy's
    friends through its coarse windows.
    Stage 3 — the per-redshift count kernel and weighted max per
    candidate.
    """
    eval_rows = _check_eval_rows(catalog, eval_rows)
    if eval_rows.size == 0:
        return CandidateCatalog.empty()

    filtered = filter_catalog(
        catalog.i[eval_rows],
        catalog.gr[eval_rows],
        catalog.ri[eval_rows],
        catalog.sigmagr[eval_rows],
        catalog.sigmari[eval_rows],
        kcorr,
        config,
    )
    if filtered.n_passed == 0:
        return CandidateCatalog.empty()

    cand_rows = eval_rows[filtered.passed_rows]  # catalog positions
    pass_matrix = filtered.pass_matrix
    chisq = filtered.chisq

    # Vectorized window computation over the pass matrix.
    neg_inf = -np.inf
    pos_inf = np.inf
    radius = np.where(pass_matrix, kcorr.radius[None, :], neg_inf).max(axis=1)
    i_max = np.where(pass_matrix, kcorr.ilim[None, :], neg_inf).max(axis=1)
    pad_gr = config.color_window_sigmas * config.gr_pop_sigma
    pad_ri = config.color_window_sigmas * config.ri_pop_sigma
    gr_min = np.where(pass_matrix, kcorr.gr[None, :], pos_inf).min(axis=1) - pad_gr
    gr_max = np.where(pass_matrix, kcorr.gr[None, :], neg_inf).max(axis=1) + pad_gr
    ri_min = np.where(pass_matrix, kcorr.ri[None, :], pos_inf).min(axis=1) - pad_ri
    ri_max = np.where(pass_matrix, kcorr.ri[None, :], neg_inf).max(axis=1) + pad_ri
    i_min = catalog.i[cand_rows]

    pairs = zone_join(
        index, catalog.ra[cand_rows], catalog.dec[cand_rows], radius
    )

    # Window-filter all pairs at once (and drop self matches).
    q = pairs.query_index
    friend_rows = pairs.catalog_index
    keep = friend_rows != cand_rows[q]
    fi = catalog.i[friend_rows]
    fgr = catalog.gr[friend_rows]
    fri = catalog.ri[friend_rows]
    keep &= (
        (fi >= i_min[q]) & (fi <= i_max[q])
        & (fgr >= gr_min[q]) & (fgr <= gr_max[q])
        & (fri >= ri_min[q]) & (fri <= ri_max[q])
    )
    q = q[keep]
    friend_dist = pairs.distance_deg[keep]
    fi, fgr, fri = fi[keep], fgr[keep], fri[keep]

    n_cand = cand_rows.size
    if _kcorr_monotone(kcorr):
        best = _best_by_interval_counts(
            q, friend_dist, fi, fgr, fri, n_cand, pass_matrix, chisq,
            kcorr, config,
        )
    else:  # pragma: no cover - exercised only with exotic custom tables
        best = _best_by_matrix_counts(
            q, friend_dist, fi, fgr, fri, i_min, n_cand, pass_matrix, chisq,
            kcorr, config,
        )

    rows = []
    for c, zid, ngal, weighted in best:
        rows.append(
            _candidate_row(catalog, int(cand_rows[c]), zid, ngal, weighted, kcorr)
        )
    return CandidateCatalog.from_rows(rows)


def _kcorr_monotone(kcorr: KCorrectionTable) -> bool:
    """The fast counting kernel needs the standard monotone shapes."""
    return bool(
        np.all(np.diff(kcorr.radius) < 0)
        and np.all(np.diff(kcorr.ilim) >= 0)
        and np.all(np.diff(kcorr.gr) > 0)
        and np.all(np.diff(kcorr.ri) > 0)
    )


def _best_by_matrix_counts(
    q, friend_dist, fi, fgr, fri, i_min, n_cand, pass_matrix, chisq,
    kcorr, config,
):
    """Reference stage 3: the per-candidate condition-matrix kernel."""
    order = np.argsort(q, kind="stable")
    q = q[order]
    friend_dist = friend_dist[order]
    fi, fgr, fri = fi[order], fgr[order], fri[order]
    starts = np.searchsorted(q, np.arange(n_cand), side="left")
    stops = np.searchsorted(q, np.arange(n_cand), side="right")
    results = []
    for c in range(n_cand):
        passing = np.flatnonzero(pass_matrix[c])
        sl = slice(starts[c], stops[c])
        counts = count_friends_per_redshift(
            friend_dist[sl], fi[sl], fgr[sl], fri[sl],
            float(i_min[c]), passing, kcorr, config,
        )
        best = best_weighted_redshift(counts, chisq[c, passing], passing)
        if best is not None:
            results.append((c, *best))
    return results


def _best_by_interval_counts(
    q, friend_dist, fi, fgr, fri, n_cand, pass_matrix, chisq, kcorr, config,
):
    """Fast stage 3: per-pair z-intervals + difference-array counting.

    Every per-redshift window is monotone in z (the 1 Mpc radius
    shrinks, ``ilim`` deepens, the ridge colors redden), so the set of
    redshifts where a friend satisfies all four windows is one
    contiguous ``[lo, hi)`` interval computed with searchsorted — no
    (friends × redshifts) condition matrix at all.  Counts per redshift
    are then difference-array sums per candidate.  Boundary semantics
    match :func:`~repro.core.neighbors.count_friends_per_redshift`
    exactly: strict ``<`` on distance, inclusive color and magnitude
    windows (the cursor/vectorized parity tests pin this).
    """
    n_z = len(kcorr)
    # distance < radius(z): radius strictly decreasing => z in [0, k)
    ascending_radius = kcorr.radius[::-1]
    k_dist = n_z - np.searchsorted(ascending_radius, friend_dist, side="right")
    # i <= ilim(z): ilim non-decreasing => z in [m, n_z)
    m_ilim = np.searchsorted(kcorr.ilim, fi, side="left")
    # |gr - gr(z)| <= sigma: gr strictly increasing => one interval
    a_gr = np.searchsorted(kcorr.gr, fgr - config.gr_pop_sigma, side="left")
    b_gr = np.searchsorted(kcorr.gr, fgr + config.gr_pop_sigma, side="right")
    a_ri = np.searchsorted(kcorr.ri, fri - config.ri_pop_sigma, side="left")
    b_ri = np.searchsorted(kcorr.ri, fri + config.ri_pop_sigma, side="right")

    lo = np.maximum.reduce([m_ilim, a_gr, a_ri])
    hi = np.minimum.reduce([k_dist, b_gr, b_ri])
    valid = hi > lo
    q, lo, hi = q[valid], lo[valid], hi[valid]

    results = []
    chunk = max(1, 4_000_000 // (n_z + 1))
    order = np.argsort(q, kind="stable")
    q, lo, hi = q[order], lo[order], hi[order]
    for start in range(0, n_cand, chunk):
        stop = min(start + chunk, n_cand)
        pair_lo = np.searchsorted(q, start, side="left")
        pair_hi = np.searchsorted(q, stop, side="left")
        local_q = q[pair_lo:pair_hi] - start
        diff = np.zeros(((stop - start), n_z + 1), dtype=np.int64)
        flat_lo = local_q * (n_z + 1) + lo[pair_lo:pair_hi]
        flat_hi = local_q * (n_z + 1) + hi[pair_lo:pair_hi]
        np.add.at(diff.reshape(-1), flat_lo, 1)
        np.add.at(diff.reshape(-1), flat_hi, -1)
        counts = np.cumsum(diff[:, :-1], axis=1)

        weighted = np.where(
            pass_matrix[start:stop] & (counts > 0),
            np.log(counts + 1.0) - chisq[start:stop],
            -np.inf,
        )
        best_zid = np.argmax(weighted, axis=1)
        best_value = weighted[np.arange(stop - start), best_zid]
        for local in np.flatnonzero(np.isfinite(best_value)):
            zid = int(best_zid[local])
            results.append((
                start + int(local), zid, int(counts[local, zid]),
                float(best_value[local]),
            ))
    return results
