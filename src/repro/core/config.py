"""Configuration for the MaxBCG algorithm.

Two canonical configurations appear in the paper (Table 2):

* :func:`tam_config` — the TAM/Chimera compromise: 0.25 deg buffer and a
  coarse k-correction grid with z-steps of 0.01 (100 redshifts), forced
  by the 1 GB nodes of the Terabyte Analysis Machine.
* :func:`sql_config` — the SQL implementation: 0.5 deg buffer and z-steps
  of 0.001 (a 1000-row Kcorr table).

All the magic numbers of the paper's SQL appendix live here with their
provenance: the chi² acceptance threshold (< 7), the BCG magnitude
population dispersion (0.57), the color population sigmas (0.05, 0.06),
the 30-arcsec zone height, the ±0.05 redshift window of ``fIsCluster``
and the R200 law ``0.17 * ngal^0.51``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigError

#: Zone height used by the SDSS Zone table: 30 arcsec, in degrees.
DEFAULT_ZONE_HEIGHT_DEG = 30.0 / 3600.0


@dataclass(frozen=True)
class MaxBCGConfig:
    """Tunable parameters of the MaxBCG pipeline.

    Attributes
    ----------
    z_min, z_max, z_step:
        Redshift grid of the k-correction table.  The paper's SQL table
        has 1000 rows; TAM used 100 rows with ``z_step = 0.01``.
    buffer_deg:
        Neighborhood search radius guaranteed around every target object
        (0.5 deg for SQL, 0.25 deg for TAM).
    chi2_threshold:
        Unweighted likelihood cut of the Filter step (``< 7``).
    i_pop_sigma:
        Population dispersion of BCG i magnitudes (``0.57``).
    gr_pop_sigma, ri_pop_sigma:
        Intrinsic red-sequence color scatter (``0.05``, ``0.06``).
    color_window_sigmas:
        Half-width of the friend color window in units of the population
        sigma (the ``±2 * popSigma`` of the window computation).
    z_match_window:
        Redshift window within which candidates compete in ``fIsCluster``
        (``±0.05``).
    r200_coeff, r200_exponent:
        ``fBCGr200``: R200 in Mpc is ``coeff * ngal^exponent``
        (``0.17 * ngal^0.51``).
    zone_height_deg:
        Height of the declination zones used for neighbor searches.
    member_mag_epsilon:
        Bright-side slack when collecting cluster members
        (``i BETWEEN @imag - 0.001 AND @ilim``).
    """

    z_min: float = 0.05
    z_max: float = 0.349
    z_step: float = 0.001
    buffer_deg: float = 0.5
    chi2_threshold: float = 7.0
    i_pop_sigma: float = 0.57
    gr_pop_sigma: float = 0.05
    ri_pop_sigma: float = 0.06
    color_window_sigmas: float = 2.0
    z_match_window: float = 0.05
    r200_coeff: float = 0.17
    r200_exponent: float = 0.51
    zone_height_deg: float = DEFAULT_ZONE_HEIGHT_DEG
    member_mag_epsilon: float = 0.001

    def __post_init__(self) -> None:
        if not (0.0 < self.z_min < self.z_max):
            raise ConfigError(
                f"need 0 < z_min < z_max, got ({self.z_min}, {self.z_max})"
            )
        if self.z_step <= 0:
            raise ConfigError(f"z_step must be positive, got {self.z_step}")
        if self.z_step > (self.z_max - self.z_min):
            raise ConfigError("z_step larger than the whole redshift range")
        if self.buffer_deg <= 0:
            raise ConfigError(f"buffer_deg must be positive, got {self.buffer_deg}")
        if self.chi2_threshold <= 0:
            raise ConfigError("chi2_threshold must be positive")
        for name in ("i_pop_sigma", "gr_pop_sigma", "ri_pop_sigma"):
            if getattr(self, name) <= 0:
                raise ConfigError(f"{name} must be positive")
        if self.zone_height_deg <= 0:
            raise ConfigError("zone_height_deg must be positive")
        if self.z_match_window <= 0:
            raise ConfigError("z_match_window must be positive")

    @property
    def n_redshifts(self) -> int:
        """Number of rows in the k-correction table for this grid."""
        return int(round((self.z_max - self.z_min) / self.z_step)) + 1

    def with_(self, **changes) -> "MaxBCGConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)

    def r200_mpc(self, ngal: float) -> float:
        """``fBCGr200``: radius (Mpc) enclosing 200× the mean density."""
        if ngal < 0:
            raise ConfigError(f"ngal must be non-negative, got {ngal}")
        return self.r200_coeff * ngal**self.r200_exponent


def sql_config() -> MaxBCGConfig:
    """The SQL-implementation configuration (0.5 deg buffer, z-step 0.001)."""
    return MaxBCGConfig()


def tam_config() -> MaxBCGConfig:
    """The TAM configuration (0.25 deg buffer, z-step 0.01, 100 redshifts)."""
    return MaxBCGConfig(z_step=0.01, z_max=0.349, buffer_deg=0.25)


def fast_config() -> MaxBCGConfig:
    """A coarse grid (z-step 0.005) for fast unit tests and examples."""
    return MaxBCGConfig(z_step=0.005)
