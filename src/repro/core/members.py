"""Cluster membership: ``fBCGr200`` / ``fGetClusterGalaxiesMetric``.

The last pipeline step collects the galaxies belonging to each detected
cluster: everything within ``radius(z) × r200(ngal)`` degrees of the
BCG whose magnitude lies in ``[BCG_i - ε, ilim(z)]`` and whose colors
sit within one population sigma of the redshift's ridge colors.  The
BCG itself is inserted first with distance 0, exactly as the SQL does.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import MaxBCGConfig
from repro.core.kcorrection import KCorrectionTable
from repro.core.results import ClusterCatalog, MemberTable
from repro.skyserver.catalog import GalaxyCatalog
from repro.spatial.zones import ZoneIndex


def cluster_members(
    catalog: GalaxyCatalog,
    index: ZoneIndex,
    cluster_objid: int,
    ra: float,
    dec: float,
    z: float,
    i_mag: float,
    ngal: float,
    kcorr: KCorrectionTable,
    config: MaxBCGConfig,
) -> MemberTable:
    """``fGetClusterGalaxiesMetric`` for one cluster."""
    zid = kcorr.nearest_zid(z)
    radius = float(kcorr.radius[zid]) * config.r200_mpc(float(ngal))
    ilim = float(kcorr.ilim[zid])
    gr_center = float(kcorr.gr[zid])
    ri_center = float(kcorr.ri[zid])

    hits, distances = index.query(ra, dec, radius)
    friend_i = catalog.i[hits]
    friend_gr = catalog.gr[hits]
    friend_ri = catalog.ri[hits]
    keep = (
        (catalog.objid[hits] != cluster_objid)
        & (distances < radius)
        & (friend_i >= i_mag - config.member_mag_epsilon)
        & (friend_i <= ilim)
        & (np.abs(friend_gr - gr_center) <= config.gr_pop_sigma)
        & (np.abs(friend_ri - ri_center) <= config.ri_pop_sigma)
    )
    member_ids = catalog.objid[hits[keep]]
    member_dist = distances[keep]
    return MemberTable(
        cluster_objid=np.concatenate(
            [[cluster_objid], np.full(member_ids.size, cluster_objid)]
        ),
        galaxy_objid=np.concatenate([[cluster_objid], member_ids]),
        distance=np.concatenate([[0.0], member_dist]),
    )


def make_cluster_members(
    catalog: GalaxyCatalog,
    clusters: ClusterCatalog,
    index: ZoneIndex,
    kcorr: KCorrectionTable,
    config: MaxBCGConfig,
) -> MemberTable:
    """``spMakeGalaxiesMetric``: membership links for every cluster."""
    result = MemberTable.empty()
    for position in range(len(clusters)):
        result = result.concat(
            cluster_members(
                catalog,
                index,
                int(clusters.objid[position]),
                float(clusters.ra[position]),
                float(clusters.dec[position]),
                float(clusters.z[position]),
                float(clusters.i[position]),
                float(clusters.ngal[position]),
                kcorr,
                config,
            )
        )
    return result


def cluster_richness(members: MemberTable) -> dict[int, int]:
    """Member count per cluster (center included), for reports."""
    unique, counts = np.unique(members.cluster_objid, return_counts=True)
    return {int(objid): int(count) for objid, count in zip(unique, counts)}
