"""The k-correction lookup table (the paper's ``Kcorr`` table).

``Kcorr`` is the heart of MaxBCG: one row per redshift on a regular grid,
giving the *expected* appearance of a brightest cluster galaxy at that
redshift — apparent i magnitude, red-sequence colors — plus the survey
depth (``ilim``) and the angular radius of a 1 Mpc physical aperture
(``radius``).  The Filter step is a JOIN of every galaxy against this
table; everything downstream (neighbor windows, R200 apertures,
``fIsCluster`` radii) is a lookup into it.

The paper imported the table from the SDSS pipeline.  We synthesize it
from a flat ΛCDM cosmology plus an empirical red-sequence model whose
exact functional form does not matter: the synthetic sky generator draws
cluster BCGs *from this same table*, so algorithm and data agree by
construction — exactly the property the real SDSS table has with respect
to real BCGs ("remarkably similar luminosities and colors").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import MaxBCGConfig
from repro.errors import ConfigError
from repro.skyserver.cosmology import DEFAULT_COSMOLOGY, Cosmology

#: Canonical BCG absolute magnitude in the i band (passive ellipticals).
BCG_ABSOLUTE_I = -22.7

#: Depth, in magnitudes below the BCG, to which cluster members are counted.
MEMBER_DEPTH_MAG = 2.0

#: Survey faint limit: nothing fainter than this is ever a friend.
SURVEY_I_LIMIT = 21.0


def red_sequence_gr(z):
    """Expected g-r color of a BCG at redshift z (monotone increasing)."""
    z = np.asarray(z, dtype=np.float64)
    return 0.55 + 2.6 * z

def red_sequence_ri(z):
    """Expected r-i color of a BCG at redshift z (monotone increasing)."""
    z = np.asarray(z, dtype=np.float64)
    return 0.32 + 0.8 * z

def red_sequence_ug(z):
    """Expected u-g color (carried for schema fidelity; unused by MaxBCG)."""
    z = np.asarray(z, dtype=np.float64)
    return 1.50 + 1.0 * z

def red_sequence_iz(z):
    """Expected i-z color (carried for schema fidelity; unused by MaxBCG)."""
    z = np.asarray(z, dtype=np.float64)
    return 0.25 + 0.5 * z

def kcorrection_i(z):
    """Small i-band k-correction term added to the distance modulus."""
    z = np.asarray(z, dtype=np.float64)
    return 1.0 * z


@dataclass(frozen=True)
class KCorrectionTable:
    """Column arrays of the Kcorr table, indexed by ``zid`` (0-based here).

    The paper's SQL uses a 1-based identity ``zid``; internally we use
    0-based positions and expose :meth:`zid_of` / :meth:`nearest_zid` for
    the float-equality lookups (``ABS(z - @z) < 1e-7``) the SQL performs.

    Attributes mirror the paper's schema: ``z``, ``i`` (BCG apparent
    magnitude), ``ilim`` (faint member limit), ``ug/gr/ri/iz`` colors and
    ``radius`` (degrees subtended by 1 Mpc).
    """

    z: np.ndarray
    i: np.ndarray
    ilim: np.ndarray
    ug: np.ndarray
    gr: np.ndarray
    ri: np.ndarray
    iz: np.ndarray
    radius: np.ndarray

    def __post_init__(self) -> None:
        n = self.z.size
        for name in ("i", "ilim", "ug", "gr", "ri", "iz", "radius"):
            if getattr(self, name).size != n:
                raise ConfigError(f"Kcorr column '{name}' length mismatch")
        if n < 2:
            raise ConfigError("Kcorr table needs at least two redshift rows")
        if np.any(np.diff(self.z) <= 0):
            raise ConfigError("Kcorr z grid must be strictly increasing")

    def __len__(self) -> int:
        return int(self.z.size)

    @property
    def z_step(self) -> float:
        """Grid spacing (the table is built on a regular grid)."""
        return float(self.z[1] - self.z[0])

    def nearest_zid(self, z: float) -> int:
        """Index of the grid row closest to ``z``.

        The SQL code looks rows up with ``ABS(z - @z) < 1e-7`` because the
        candidate's z was itself read from the table; nearest-row lookup
        is the robust equivalent.
        """
        pos = int(np.clip(np.searchsorted(self.z, z), 1, len(self) - 1))
        if abs(self.z[pos - 1] - z) <= abs(self.z[pos] - z):
            return pos - 1
        return pos

    def nearest_zids(self, z) -> np.ndarray:
        """Vectorized :meth:`nearest_zid` for arrays of redshifts."""
        z = np.asarray(z, dtype=np.float64)
        pos = np.clip(np.searchsorted(self.z, z), 1, len(self) - 1)
        left_closer = np.abs(self.z[pos - 1] - z) <= np.abs(self.z[pos] - z)
        return np.where(left_closer, pos - 1, pos).astype(np.int64)

    def radius_at(self, z: float) -> float:
        """1 Mpc angular radius (deg) at the grid row nearest ``z``."""
        return float(self.radius[self.nearest_zid(z)])

    def row(self, zid: int) -> dict[str, float]:
        """One Kcorr row as a plain dict (for reports and debugging)."""
        if not (0 <= zid < len(self)):
            raise ConfigError(f"zid {zid} out of range [0, {len(self)})")
        return {
            "zid": zid,
            "z": float(self.z[zid]),
            "i": float(self.i[zid]),
            "ilim": float(self.ilim[zid]),
            "ug": float(self.ug[zid]),
            "gr": float(self.gr[zid]),
            "ri": float(self.ri[zid]),
            "iz": float(self.iz[zid]),
            "radius": float(self.radius[zid]),
        }

    def as_columns(self) -> dict[str, np.ndarray]:
        """Column dict (zid included) for loading into the engine."""
        return {
            "zid": np.arange(len(self), dtype=np.int64),
            "z": self.z,
            "i": self.i,
            "ilim": self.ilim,
            "ug": self.ug,
            "gr": self.gr,
            "ri": self.ri,
            "iz": self.iz,
            "radius": self.radius,
        }


def build_kcorrection_table(
    config: MaxBCGConfig,
    cosmology: Cosmology = DEFAULT_COSMOLOGY,
) -> KCorrectionTable:
    """Build the Kcorr table for a configuration's redshift grid.

    ``i(z)`` is the canonical BCG absolute magnitude carried to apparent
    magnitude through the luminosity distance plus a small k-correction;
    ``ilim(z)`` is ``i(z) + MEMBER_DEPTH_MAG`` clipped to the survey
    limit; ``radius(z)`` is the 1 Mpc angular scale from the cosmology.
    """
    n = config.n_redshifts
    z = config.z_min + config.z_step * np.arange(n, dtype=np.float64)
    if z[-1] > cosmology.z_max:
        raise ConfigError(
            f"config z_max {z[-1]:.3f} exceeds cosmology grid ({cosmology.z_max})"
        )
    i_mag = BCG_ABSOLUTE_I + cosmology.distance_modulus(z) + kcorrection_i(z)
    ilim = np.minimum(i_mag + MEMBER_DEPTH_MAG, SURVEY_I_LIMIT)
    return KCorrectionTable(
        z=z,
        i=i_mag.astype(np.float64),
        ilim=ilim.astype(np.float64),
        ug=red_sequence_ug(z),
        gr=red_sequence_gr(z),
        ri=red_sequence_ri(z),
        iz=red_sequence_iz(z),
        radius=cosmology.arcdeg_per_mpc(z),
    )
