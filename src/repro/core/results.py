"""Result catalogs of the MaxBCG pipeline.

Mirrors the paper's output tables: ``Candidates`` (BCG candidates with
their best redshift, neighbor count and weighted likelihood),
``Clusters`` (the candidates that survived ``fIsCluster``), and
``ClusterGalaxiesMetric`` (cluster membership links).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import CatalogError

CANDIDATE_COLUMNS = ("objid", "ra", "dec", "z", "i", "ngal", "chi2")


@dataclass
class CandidateCatalog:
    """The ``Candidates`` table: one row per plausible BCG.

    ``ngal`` follows the paper's convention: neighbor count **plus one**
    (the candidate itself), i.e. the SQL's ``ngal+1 AS ngal``.  ``chi2``
    is the *weighted* likelihood ``max(log(ngal+1) - chisq)`` — larger
    is more cluster-like (the name chi2 is the paper's, kept verbatim).
    """

    objid: np.ndarray
    ra: np.ndarray
    dec: np.ndarray
    z: np.ndarray
    i: np.ndarray
    ngal: np.ndarray
    chi2: np.ndarray

    def __post_init__(self) -> None:
        self.objid = np.asarray(self.objid, dtype=np.int64)
        self.ngal = np.asarray(self.ngal, dtype=np.int64)
        for name in ("ra", "dec", "z", "i", "chi2"):
            setattr(self, name, np.asarray(getattr(self, name), dtype=np.float64))
        n = self.objid.size
        for name in CANDIDATE_COLUMNS[1:]:
            if getattr(self, name).size != n:
                raise CatalogError(f"candidate column '{name}' length mismatch")

    def __len__(self) -> int:
        return int(self.objid.size)

    @classmethod
    def empty(cls) -> "CandidateCatalog":
        return cls(*[np.empty(0)] * len(CANDIDATE_COLUMNS))

    @classmethod
    def from_rows(cls, rows: list[dict]) -> "CandidateCatalog":
        if not rows:
            return cls.empty()
        return cls(
            *[np.asarray([r[c] for r in rows]) for c in CANDIDATE_COLUMNS]
        )

    def as_columns(self) -> dict[str, np.ndarray]:
        return {c: getattr(self, c) for c in CANDIDATE_COLUMNS}

    def take(self, selector) -> "CandidateCatalog":
        return CandidateCatalog(
            *[getattr(self, c)[selector] for c in CANDIDATE_COLUMNS]
        )

    def sort_by_objid(self) -> "CandidateCatalog":
        return self.take(np.argsort(self.objid, kind="stable"))

    def concat(self, other: "CandidateCatalog") -> "CandidateCatalog":
        return CandidateCatalog(
            *[np.concatenate([getattr(self, c), getattr(other, c)])
              for c in CANDIDATE_COLUMNS]
        )

    def dedup_by_objid(self) -> "CandidateCatalog":
        """Keep one row per objid (used when partition outputs overlap)."""
        _, first = np.unique(self.objid, return_index=True)
        return self.take(np.sort(first))

    def row(self, index: int) -> dict:
        return {c: getattr(self, c)[index].item() for c in CANDIDATE_COLUMNS}


#: The Clusters table has exactly the Candidates shape; give it its own
#: name for readable signatures.
ClusterCatalog = CandidateCatalog


@dataclass
class MemberTable:
    """``ClusterGalaxiesMetric``: (cluster BCG, member galaxy, distance)."""

    cluster_objid: np.ndarray
    galaxy_objid: np.ndarray
    distance: np.ndarray

    def __post_init__(self) -> None:
        self.cluster_objid = np.asarray(self.cluster_objid, dtype=np.int64)
        self.galaxy_objid = np.asarray(self.galaxy_objid, dtype=np.int64)
        self.distance = np.asarray(self.distance, dtype=np.float64)
        if not (
            self.cluster_objid.size == self.galaxy_objid.size == self.distance.size
        ):
            raise CatalogError("member table column length mismatch")

    def __len__(self) -> int:
        return int(self.cluster_objid.size)

    @classmethod
    def empty(cls) -> "MemberTable":
        return cls(np.empty(0), np.empty(0), np.empty(0))

    def members_of(self, cluster_objid: int) -> np.ndarray:
        """Galaxy objids belonging to one cluster (center included)."""
        return self.galaxy_objid[self.cluster_objid == cluster_objid]

    def as_columns(self) -> dict[str, np.ndarray]:
        return {
            "clusterobjid": self.cluster_objid,
            "galaxyobjid": self.galaxy_objid,
            "distance": self.distance,
        }

    def concat(self, other: "MemberTable") -> "MemberTable":
        return MemberTable(
            np.concatenate([self.cluster_objid, other.cluster_objid]),
            np.concatenate([self.galaxy_objid, other.galaxy_objid]),
            np.concatenate([self.distance, other.distance]),
        )
