"""The Filter step: unweighted BCG chi² likelihood against Kcorr.

For a galaxy ``g`` and Kcorr row ``k`` the paper's statistic is::

    chisq = (g.i  - k.i )² / 0.57²
          + (g.gr - k.gr)² / (g.sigmagr² + 0.05²)
          + (g.ri - k.ri)² / (g.sigmari² + 0.06²)

A galaxy survives the Filter when ``chisq < 7`` at *any* redshift —
"if, at any redshift, a galaxy has even a remote chance of being the
right color and brightness to be a BCG, it is passed to the next
stage."  This is the early-filtering JOIN the paper credits with much
of the SQL speedup: it drops ~97% of galaxies before any neighbor
search happens.

Two evaluation shapes are provided:

* :func:`chisq_profile` — one galaxy against all redshifts (the
  cursor-style ``fBCGCandidate`` body);
* :func:`filter_catalog` — all galaxies against all redshifts in
  chunked vectorized passes (the set-oriented pipeline's stage 1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import MaxBCGConfig
from repro.core.kcorrection import KCorrectionTable


def chisq_profile(
    i_mag: float,
    gr: float,
    ri: float,
    sigmagr: float,
    sigmari: float,
    kcorr: KCorrectionTable,
    config: MaxBCGConfig,
) -> np.ndarray:
    """Chi² of one galaxy at every Kcorr redshift (vector over zid)."""
    mag_term = (i_mag - kcorr.i) ** 2 / config.i_pop_sigma**2
    gr_term = (gr - kcorr.gr) ** 2 / (sigmagr**2 + config.gr_pop_sigma**2)
    ri_term = (ri - kcorr.ri) ** 2 / (sigmari**2 + config.ri_pop_sigma**2)
    return mag_term + gr_term + ri_term


@dataclass(frozen=True)
class SearchWindows:
    """Per-candidate friend-search windows (the SQL's @rad/@imin/... block).

    Derived from the Kcorr rows where the candidate passed the filter:
    the search radius is the *largest* 1 Mpc radius among passing
    redshifts, the magnitude window runs from the candidate's own i to
    the deepest passing ``ilim``, and the color windows span the passing
    ridge colors padded by ``2 × popSigma``.
    """

    radius: float
    i_min: float
    i_max: float
    gr_min: float
    gr_max: float
    ri_min: float
    ri_max: float


def windows_for(
    i_mag: float,
    passing_zids: np.ndarray,
    kcorr: KCorrectionTable,
    config: MaxBCGConfig,
) -> SearchWindows:
    """Friend-search windows for one filtered galaxy."""
    pad_gr = config.color_window_sigmas * config.gr_pop_sigma
    pad_ri = config.color_window_sigmas * config.ri_pop_sigma
    return SearchWindows(
        radius=float(kcorr.radius[passing_zids].max()),
        i_min=float(i_mag),
        i_max=float(kcorr.ilim[passing_zids].max()),
        gr_min=float(kcorr.gr[passing_zids].min() - pad_gr),
        gr_max=float(kcorr.gr[passing_zids].max() + pad_gr),
        ri_min=float(kcorr.ri[passing_zids].min() - pad_ri),
        ri_max=float(kcorr.ri[passing_zids].max() + pad_ri),
    )


@dataclass
class FilterResult:
    """Vectorized Filter output for a batch of galaxies.

    ``passed`` marks galaxies with chi² < threshold at some redshift.
    ``chisq`` is the full (n_galaxies × n_redshifts) matrix for the
    passed galaxies only (dense but small: ~3% of rows), with the row
    order of ``passed_rows``.
    """

    passed: np.ndarray          # bool, length n_galaxies
    passed_rows: np.ndarray     # int positions of passed galaxies
    chisq: np.ndarray           # (n_passed, n_z) float
    pass_matrix: np.ndarray     # (n_passed, n_z) bool, chisq < threshold

    @property
    def n_passed(self) -> int:
        return int(self.passed_rows.size)


def filter_catalog(
    i_mag: np.ndarray,
    gr: np.ndarray,
    ri: np.ndarray,
    sigmagr: np.ndarray,
    sigmari: np.ndarray,
    kcorr: KCorrectionTable,
    config: MaxBCGConfig,
    chunk_rows: int = 16_384,
) -> FilterResult:
    """Set-oriented Filter: all galaxies × all redshifts, chunked.

    The full chi² matrix of a survey region would be huge (the paper
    notes 1.2M galaxies × 1000 Kcorr rows "would require at least
    80 GB"); chunking keeps the working set bounded while retaining
    vectorized math — the same resolution the paper describes, applied
    in-engine.
    """
    n = i_mag.size
    threshold = config.chi2_threshold
    passed = np.zeros(n, dtype=bool)
    kept_chisq: list[np.ndarray] = []
    kept_rows: list[np.ndarray] = []

    gr_denominator = None  # computed per chunk
    for start in range(0, n, chunk_rows):
        stop = min(start + chunk_rows, n)
        sl = slice(start, stop)
        mag_term = (
            (i_mag[sl, None] - kcorr.i[None, :]) ** 2 / config.i_pop_sigma**2
        )
        gr_term = (gr[sl, None] - kcorr.gr[None, :]) ** 2 / (
            sigmagr[sl, None] ** 2 + config.gr_pop_sigma**2
        )
        ri_term = (ri[sl, None] - kcorr.ri[None, :]) ** 2 / (
            sigmari[sl, None] ** 2 + config.ri_pop_sigma**2
        )
        chisq = mag_term + gr_term + ri_term
        chunk_pass = (chisq < threshold).any(axis=1)
        passed[sl] = chunk_pass
        if chunk_pass.any():
            rows = np.flatnonzero(chunk_pass)
            kept_rows.append(rows + start)
            kept_chisq.append(chisq[rows])

    if kept_rows:
        passed_rows = np.concatenate(kept_rows)
        chisq_matrix = np.concatenate(kept_chisq, axis=0)
    else:
        passed_rows = np.empty(0, dtype=np.int64)
        chisq_matrix = np.empty((0, len(kcorr)), dtype=np.float64)

    return FilterResult(
        passed=passed,
        passed_rows=passed_rows,
        chisq=chisq_matrix,
        pass_matrix=chisq_matrix < threshold,
    )


def weighted_likelihood(chisq: np.ndarray, ngal: np.ndarray) -> np.ndarray:
    """The weighted statistic ``log(ngal + 1) - chisq`` per redshift.

    ``ngal`` counts friends only (the +1 is the paper's own-galaxy
    convention, applied here exactly as in the SQL).
    """
    return np.log(ngal + 1.0) - chisq
