"""Science scoring: completeness, purity, centering, redshift accuracy.

The paper validates its reimplementation by identity with the original
("the union of the answers ... is identical"); against *synthetic* data
we can do better and score detections against injected ground truth.
This module is the standard matcher used by the tests, the examples and
the quality report:

* a truth cluster is **recovered** when some detected center lies within
  its 1 Mpc aperture with a compatible redshift (|Δz| ≤ the fIsCluster
  window) — detected centers may sit on a bright member rather than the
  true BCG, the algorithm's known miscentering mode;
* a detection is **pure** when some truth cluster satisfies the same
  test around it (with a doubled radius, since the detected center may
  be offset).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.config import MaxBCGConfig
from repro.core.kcorrection import KCorrectionTable
from repro.core.results import ClusterCatalog
from repro.skyserver.generator import ClusterTruth


@dataclass(frozen=True)
class ClusterMatch:
    """One truth cluster's match outcome."""

    truth: ClusterTruth
    detected_objid: int | None
    offset_deg: float | None
    delta_z: float | None
    exact_bcg: bool

    @property
    def recovered(self) -> bool:
        return self.detected_objid is not None


@dataclass
class MatchReport:
    """Aggregate matching of a detection catalog against truth."""

    matches: list[ClusterMatch]
    n_detected: int
    n_pure: int

    @property
    def n_truth(self) -> int:
        return len(self.matches)

    @property
    def n_recovered(self) -> int:
        return sum(1 for m in self.matches if m.recovered)

    @property
    def completeness(self) -> float:
        """Fraction of truth clusters recovered (positionally)."""
        return self.n_recovered / self.n_truth if self.n_truth else 0.0

    @property
    def purity(self) -> float:
        """Fraction of detections near some truth cluster."""
        return self.n_pure / self.n_detected if self.n_detected else 0.0

    @property
    def exact_bcg_fraction(self) -> float:
        """Recovered clusters whose center is the true BCG itself."""
        if self.n_recovered == 0:
            return 0.0
        return (
            sum(1 for m in self.matches if m.exact_bcg) / self.n_recovered
        )

    def median_offset_deg(self) -> float:
        offsets = [m.offset_deg for m in self.matches if m.offset_deg is not None]
        return float(np.median(offsets)) if offsets else float("nan")

    def median_delta_z(self) -> float:
        deltas = [abs(m.delta_z) for m in self.matches if m.delta_z is not None]
        return float(np.median(deltas)) if deltas else float("nan")

    def summary(self) -> str:
        return (
            f"completeness {100 * self.completeness:.0f}% "
            f"({self.n_recovered}/{self.n_truth}), "
            f"purity {100 * self.purity:.0f}% "
            f"({self.n_pure}/{self.n_detected}), "
            f"exact-BCG centers {100 * self.exact_bcg_fraction:.0f}%, "
            f"median offset {self.median_offset_deg() * 60:.2f} arcmin, "
            f"median |dz| {self.median_delta_z():.3f}"
        )


def _sky_offsets(ra0: float, dec0: float, ra, dec) -> np.ndarray:
    """Small-angle flat-sky offsets in degrees (adequate at Mpc scales)."""
    return np.hypot(
        (np.asarray(ra) - ra0) * np.cos(np.deg2rad(dec0)),
        np.asarray(dec) - dec0,
    )


def match_clusters(
    detected: ClusterCatalog,
    truth: list[ClusterTruth],
    kcorr: KCorrectionTable,
    config: MaxBCGConfig,
    purity_radius_factor: float = 2.0,
) -> MatchReport:
    """Match detections to injected truth and score both directions."""
    matches: list[ClusterMatch] = []
    for cluster in truth:
        radius = kcorr.radius_at(cluster.z)
        if len(detected) == 0:
            matches.append(ClusterMatch(cluster, None, None, None, False))
            continue
        offsets = _sky_offsets(cluster.ra, cluster.dec,
                               detected.ra, detected.dec)
        ok = (offsets < radius) & (
            np.abs(detected.z - cluster.z) <= config.z_match_window
        )
        if not ok.any():
            matches.append(ClusterMatch(cluster, None, None, None, False))
            continue
        best = int(np.flatnonzero(ok)[np.argmin(offsets[ok])])
        objid = int(detected.objid[best])
        matches.append(ClusterMatch(
            truth=cluster,
            detected_objid=objid,
            offset_deg=float(offsets[best]),
            delta_z=float(detected.z[best] - cluster.z),
            exact_bcg=objid == cluster.bcg_objid,
        ))

    # purity: each detection near some truth cluster?
    truth_ra = np.array([c.ra for c in truth])
    truth_dec = np.array([c.dec for c in truth])
    truth_z = np.array([c.z for c in truth])
    n_pure = 0
    for k in range(len(detected)):
        if truth_ra.size == 0:
            break
        radius = kcorr.radius_at(float(detected.z[k])) * purity_radius_factor
        offsets = _sky_offsets(float(detected.ra[k]), float(detected.dec[k]),
                               truth_ra, truth_dec)
        near = (offsets < radius) & (
            np.abs(truth_z - float(detected.z[k]))
            <= config.z_match_window + kcorr.z_step
        )
        if near.any():
            n_pure += 1
    return MatchReport(matches=matches, n_detected=len(detected),
                       n_pure=n_pure)
