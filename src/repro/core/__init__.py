"""MaxBCG: the paper's algorithm (Section 2.1 and the SQL appendix)."""

from repro.core.config import (
    MaxBCGConfig,
    fast_config,
    sql_config,
    tam_config,
)
from repro.core.kcorrection import KCorrectionTable, build_kcorrection_table
from repro.core.candidates import (
    evaluate_galaxy,
    find_candidates_cursor,
    find_candidates_vectorized,
)
from repro.core.clusters import is_cluster_center, make_clusters
from repro.core.members import cluster_members, make_cluster_members
from repro.core.pipeline import MaxBCGPipeline, MaxBCGResult, run_maxbcg
from repro.core.procedures import MaxBCGSqlApplication, install_maxbcg
from repro.core.results import CandidateCatalog, ClusterCatalog, MemberTable
from repro.core.scoring import MatchReport, match_clusters

__all__ = [
    "CandidateCatalog",
    "ClusterCatalog",
    "KCorrectionTable",
    "MaxBCGConfig",
    "MaxBCGPipeline",
    "MaxBCGSqlApplication",
    "MaxBCGResult",
    "MemberTable",
    "build_kcorrection_table",
    "cluster_members",
    "evaluate_galaxy",
    "fast_config",
    "find_candidates_cursor",
    "find_candidates_vectorized",
    "install_maxbcg",
    "is_cluster_center",
    "make_cluster_members",
    "make_clusters",
    "match_clusters",
    "MatchReport",
    "run_maxbcg",
    "sql_config",
    "tam_config",
]
