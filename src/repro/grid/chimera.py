"""Chimera-style virtual data: derivations, provenance, lazy replay.

The paper's baseline ran under "the Chimera Virtual Data System created
by the Grid Physics Network (GriPhyN) project".  Chimera's idea: files
are *derived data* — each is described by the transformation and inputs
that produce it, so any file can be (re)materialized on demand and its
provenance queried.  :class:`VirtualDataCatalog` implements that model
over the TAM field pipeline: Target/Buffer files derive from the
archive, Candidates files derive from (target, buffer), cluster files
from candidate sets — a DAG the MaxBCG example walks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.errors import GridError


@dataclass(frozen=True)
class Transformation:
    """A named, versioned executable (Chimera's TR)."""

    name: str
    version: str = "1.0"

    @property
    def key(self) -> str:
        return f"{self.name}:{self.version}"


@dataclass
class Derivation:
    """A call of a transformation producing logical files (Chimera's DV)."""

    transformation: Transformation
    inputs: tuple[str, ...]
    outputs: tuple[str, ...]
    parameters: dict = field(default_factory=dict)


class VirtualDataCatalog:
    """Logical-file DAG with provenance queries and lazy materialization."""

    def __init__(self):
        self._derivations: dict[str, Derivation] = {}  # output -> derivation
        self._materialized: dict[str, object] = {}
        self._executors: dict[str, Callable] = {}

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def register_executor(self, transformation: Transformation, fn: Callable) -> None:
        """Bind a Python callable to a transformation.

        ``fn(inputs: dict[str, object], parameters: dict) ->
        dict[str, object]`` mapping output logical names to values.
        """
        self._executors[transformation.key] = fn

    def add_derivation(self, derivation: Derivation) -> None:
        for output in derivation.outputs:
            if output in self._derivations:
                raise GridError(f"logical file '{output}' already has a derivation")
            self._derivations[output] = derivation

    def add_input_file(self, name: str, value: object) -> None:
        """Register a raw (non-derived) file, e.g. the survey archive."""
        self._materialized[name] = value

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def provenance(self, name: str) -> list[Derivation]:
        """The derivation chain that produces a logical file (leaf first)."""
        chain: list[Derivation] = []
        seen: set[str] = set()

        def visit(target: str) -> None:
            derivation = self._derivations.get(target)
            if derivation is None:
                return  # raw input
            key = ",".join(derivation.outputs)
            if key in seen:
                return
            seen.add(key)
            for upstream in derivation.inputs:
                visit(upstream)
            chain.append(derivation)

        if name not in self._derivations and name not in self._materialized:
            raise GridError(f"unknown logical file '{name}'")
        visit(name)
        return chain

    def is_materialized(self, name: str) -> bool:
        return name in self._materialized

    def get(self, name: str) -> object:
        if name not in self._materialized:
            raise GridError(f"logical file '{name}' is not materialized")
        return self._materialized[name]

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def materialize(self, name: str) -> object:
        """Produce a logical file, recursively materializing inputs.

        Already-materialized files are reused (Chimera's caching), so a
        second request for any derived product is free — the virtual
        data selling point.
        """
        if name in self._materialized:
            return self._materialized[name]
        derivation = self._derivations.get(name)
        if derivation is None:
            raise GridError(f"no derivation produces '{name}'")
        executor = self._executors.get(derivation.transformation.key)
        if executor is None:
            raise GridError(
                f"no executor for transformation "
                f"'{derivation.transformation.key}'"
            )
        inputs = {
            upstream: self.materialize(upstream) for upstream in derivation.inputs
        }
        outputs = executor(inputs, derivation.parameters)
        missing = [o for o in derivation.outputs if o not in outputs]
        if missing:
            raise GridError(
                f"transformation '{derivation.transformation.key}' did not "
                f"produce {missing}"
            )
        for output in derivation.outputs:
            self._materialized[output] = outputs[output]
        return self._materialized[name]

    def materialized_count(self) -> int:
        return len(self._materialized)
