"""Grid replay: run a measured TAM workload on simulated 2004 hardware.

Connects the pieces: take the *measured* per-field costs of a real
:class:`~repro.tam.runner.TamRunner` execution on this machine, convert
them to reference-CPU job demands, and schedule them on any
:class:`~repro.grid.resources.ClusterSpec` through the Condor
simulation.  This is how Table 3's TAM rows are produced: the paper's
own extrapolation rule (per-field cost × number of fields, linear) plus
its hardware normalization (Table 2's CPU-speed factor), applied to
workloads we actually ran.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import GridError
from repro.grid.jobs import Job, field_job
from repro.grid.resources import ClusterSpec
from repro.grid.scheduler import CondorScheduler, ScheduleResult
from repro.grid.transfer import TransferModel
from repro.tam.fields import ROW_BYTES
from repro.tam.runner import TamRunResult


@dataclass(frozen=True)
class GridRunReport:
    """Simulated grid execution of a TAM workload."""

    schedule: ScheduleResult
    n_fields: int
    cluster_name: str

    @property
    def makespan_s(self) -> float:
        return self.schedule.makespan_s

    @property
    def transfer_fraction(self) -> float:
        total = self.schedule.transfer_s_total + self.schedule.compute_s_total
        if total <= 0:
            return 0.0
        return self.schedule.transfer_s_total / total


def jobs_from_tam_run(
    result: TamRunResult,
    reference_cpu_mhz: float,
    host_cpu_mhz: float,
) -> list[Job]:
    """Convert measured field timings into reference-CPU grid jobs.

    ``host_cpu_mhz`` is the effective speed of the machine the timings
    were measured on; demands are rescaled so that a node of
    ``reference_cpu_mhz`` would reproduce the measured times.
    """
    if host_cpu_mhz <= 0:
        raise GridError("host CPU speed must be positive")
    scale = host_cpu_mhz / reference_cpu_mhz
    jobs = []
    for timing, one_field in zip(result.timings, result.fields):
        compute = (timing.process_s + timing.coalesce_s) * scale
        jobs.append(
            field_job(
                job_id=timing.field_id,
                field_name=one_field.name,
                cpu_seconds=compute,
                target_bytes=timing.n_target * ROW_BYTES,
                buffer_bytes=timing.n_buffer * ROW_BYTES,
                candidate_bytes=timing.n_candidates * ROW_BYTES,
            )
        )
    return jobs


def simulate_tam_on_grid(
    result: TamRunResult,
    cluster: ClusterSpec,
    transfer: TransferModel | None = None,
    reference_cpu_mhz: float = 2600.0,
    host_cpu_mhz: float = 2600.0,
    serialize_transfers: bool = True,
) -> GridRunReport:
    """Replay a measured TAM run on a simulated cluster.

    ``serialize_transfers=True`` models the single shared archive link
    (all nodes fetch from the same DAS), which is what throttles
    file-based grids as clusters grow.
    """
    jobs = jobs_from_tam_run(result, reference_cpu_mhz, host_cpu_mhz)
    scheduler = CondorScheduler(
        cluster,
        transfer or TransferModel(),
        reference_cpu_mhz=reference_cpu_mhz,
        serialize_transfers=serialize_transfers,
    )
    schedule = scheduler.run(jobs)
    return GridRunReport(
        schedule=schedule,
        n_fields=len(result.fields),
        cluster_name=cluster.name,
    )
