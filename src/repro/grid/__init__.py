"""Grid substrate: Condor-like scheduling, transfers, virtual data."""

from repro.grid.chimera import Derivation, Transformation, VirtualDataCatalog
from repro.grid.chimera_maxbcg import build_maxbcg_dag, run_via_chimera
from repro.grid.jobs import Job, JobState, field_job
from repro.grid.resources import ClusterSpec, Node, sql_cluster, tam_cluster
from repro.grid.scheduler import CondorScheduler, ScheduleResult
from repro.grid.simulation import GridRunReport, simulate_tam_on_grid
from repro.grid.transfer import TransferModel, wan_model

__all__ = [
    "ClusterSpec",
    "CondorScheduler",
    "Derivation",
    "GridRunReport",
    "Job",
    "JobState",
    "Node",
    "ScheduleResult",
    "Transformation",
    "TransferModel",
    "VirtualDataCatalog",
    "build_maxbcg_dag",
    "run_via_chimera",
    "field_job",
    "simulate_tam_on_grid",
    "sql_cluster",
    "tam_cluster",
    "wan_model",
]
