"""MaxBCG as a Chimera virtual-data workflow.

The baseline the paper benchmarked was "the same application code ...
integrated with the Chimera Virtual Data System" — MaxBCG expressed as
derivations over logical files.  This module builds that DAG for any
target region:

* ``archive``                      — the raw survey catalog;
* ``<field>.target / .buffer``    — per-field cuts (TR ``cutField``);
* ``<field>.candidates``          — per-field candidate files
  (TR ``maxBCG``);
* ``<field>.clusters``            — per-field cluster picks, which
  consume the *neighbor fields'* candidate files too — the BufferC
  dependency of Figure 2 appears as DAG edges (TR ``pickClusters``);
* ``clusters.all``                — the final concatenated catalog
  (TR ``mergeClusters``).

Materializing ``clusters.all`` lazily executes exactly the file-based
pipeline; asking twice is free (virtual-data caching); provenance of
any cluster file names the transformation chain that produced it.
"""

from __future__ import annotations

from repro.core.config import MaxBCGConfig
from repro.core.kcorrection import KCorrectionTable
from repro.core.results import CandidateCatalog
from repro.grid.chimera import Derivation, Transformation, VirtualDataCatalog
from repro.skyserver.catalog import GalaxyCatalog
from repro.skyserver.regions import RegionBox
from repro.tam.astrotools import pick_field_clusters, process_field
from repro.tam.fields import Field, neighbor_fields, tile_fields

CUT = Transformation("cutField", "1.0")
FIND = Transformation("maxBCG", "1.0")
PICK = Transformation("pickClusters", "1.0")
MERGE = Transformation("mergeClusters", "1.0")


def build_maxbcg_dag(
    catalog: GalaxyCatalog,
    target: RegionBox,
    kcorr: KCorrectionTable,
    config: MaxBCGConfig,
    field_size: float = 0.5,
) -> tuple[VirtualDataCatalog, list[Field]]:
    """Construct the full virtual-data DAG for a target region.

    Returns the catalog and the field list; nothing executes until a
    logical file is materialized.
    """
    vdc = VirtualDataCatalog()
    vdc.add_input_file("archive", catalog)
    fields = tile_fields(target, field_size, buffer_margin=config.buffer_deg)

    def cut_executor(inputs, params):
        archive: GalaxyCatalog = inputs["archive"]
        target_box = RegionBox(*params["target"])
        buffer_box = RegionBox(*params["buffer"])
        return {
            params["target_name"]: archive.select_region(target_box),
            params["buffer_name"]: archive.select_region(buffer_box),
        }

    def find_executor(inputs, params):
        return {
            params["out"]: process_field(
                inputs[params["target_name"]],
                inputs[params["buffer_name"]],
                kcorr, config,
            )
        }

    def pick_executor(inputs, params):
        own: CandidateCatalog = inputs[params["own"]]
        rivals = own
        for name in params["rivals"]:
            rivals = rivals.concat(inputs[name])
        return {
            params["out"]: pick_field_clusters(
                own, rivals, RegionBox(*params["target"]), kcorr, config
            )
        }

    def merge_executor(inputs, params):
        merged = CandidateCatalog.empty()
        for name in params["parts"]:
            merged = merged.concat(inputs[name])
        return {"clusters.all": merged.sort_by_objid()}

    vdc.register_executor(CUT, cut_executor)
    vdc.register_executor(FIND, find_executor)
    vdc.register_executor(PICK, pick_executor)
    vdc.register_executor(MERGE, merge_executor)

    def box(region: RegionBox) -> tuple[float, float, float, float]:
        return (region.ra_min, region.ra_max, region.dec_min, region.dec_max)

    for one_field in fields:
        stem = one_field.name
        vdc.add_derivation(Derivation(
            CUT, ("archive",), (f"{stem}.target", f"{stem}.buffer"),
            parameters={
                "target": box(one_field.target),
                "buffer": box(one_field.buffer),
                "target_name": f"{stem}.target",
                "buffer_name": f"{stem}.buffer",
            },
        ))
        vdc.add_derivation(Derivation(
            FIND, (f"{stem}.target", f"{stem}.buffer"),
            (f"{stem}.candidates",),
            parameters={
                "target_name": f"{stem}.target",
                "buffer_name": f"{stem}.buffer",
                "out": f"{stem}.candidates",
            },
        ))

    for one_field in fields:
        stem = one_field.name
        rival_names = tuple(
            f"{neighbor.name}.candidates"
            for neighbor in neighbor_fields(fields, one_field)
        )
        vdc.add_derivation(Derivation(
            PICK,
            (f"{stem}.candidates", *rival_names),
            (f"{stem}.clusters",),
            parameters={
                "own": f"{stem}.candidates",
                "rivals": rival_names,
                "target": box(one_field.target),
                "out": f"{stem}.clusters",
            },
        ))

    vdc.add_derivation(Derivation(
        MERGE,
        tuple(f"{f.name}.clusters" for f in fields),
        ("clusters.all",),
        parameters={"parts": tuple(f"{f.name}.clusters" for f in fields)},
    ))
    return vdc, fields


def run_via_chimera(
    catalog: GalaxyCatalog,
    target: RegionBox,
    kcorr: KCorrectionTable,
    config: MaxBCGConfig,
) -> CandidateCatalog:
    """Materialize the final cluster catalog through the virtual-data DAG."""
    vdc, _ = build_maxbcg_dag(catalog, target, kcorr, config)
    return vdc.materialize("clusters.all")  # type: ignore[return-value]
