"""Grid resources: nodes and clusters with 2004-era knobs.

The hardware in the paper:

* **TAM** — "5 nodes, each one a dual-600-MHz PIII processor nodes each
  with 1 GB of RAM" → :func:`tam_cluster`;
* **SQL** — "a Microsoft SQL Server 2000 cluster composed of 3 nodes,
  each one a dual 2.6 GHz Xeon with 2 GB of RAM" → :func:`sql_cluster`.

CPU speed enters the simulation as a scaling factor on measured task
times (Table 2's "the TAM CPU is about 4 times slower"), RAM as a hard
capacity check that reproduces the buffer-size compromise of Figure 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import GridError


@dataclass(frozen=True)
class Node:
    """One grid compute node."""

    name: str
    cpu_mhz: float
    n_cpus: int = 1
    ram_mb: float = 1024.0
    disk_gb: float = 100.0

    def __post_init__(self) -> None:
        if self.cpu_mhz <= 0 or self.n_cpus <= 0 or self.ram_mb <= 0:
            raise GridError(f"node '{self.name}' has non-positive resources")

    @property
    def slots(self) -> int:
        """Schedulable job slots (one per CPU, the Condor convention)."""
        return self.n_cpus

    def cpu_scale(self, reference_mhz: float) -> float:
        """Runtime multiplier vs. a reference CPU (slower -> larger)."""
        if reference_mhz <= 0:
            raise GridError("reference CPU speed must be positive")
        return reference_mhz / self.cpu_mhz

    def fits_in_ram(self, bytes_needed: float) -> bool:
        """Would a working set fit in this node's memory?"""
        return bytes_needed <= self.ram_mb * 1024.0 * 1024.0


@dataclass(frozen=True)
class ClusterSpec:
    """A named collection of nodes."""

    name: str
    nodes: tuple[Node, ...]

    def __post_init__(self) -> None:
        if not self.nodes:
            raise GridError(f"cluster '{self.name}' has no nodes")

    @property
    def total_slots(self) -> int:
        return sum(node.slots for node in self.nodes)

    @property
    def total_ram_mb(self) -> float:
        return sum(node.ram_mb for node in self.nodes)


def tam_cluster() -> ClusterSpec:
    """The Terabyte Analysis Machine: 5 x dual-600MHz PIII, 1 GB each.

    "The TAM cluster could process ten target fields in parallel."
    """
    return ClusterSpec(
        name="TAM",
        nodes=tuple(
            Node(f"tam{k}", cpu_mhz=600.0, n_cpus=2, ram_mb=1024.0)
            for k in range(5)
        ),
    )


def sql_cluster(n_nodes: int = 3) -> ClusterSpec:
    """The SQL Server cluster: dual 2.6 GHz Xeons with 2 GB RAM."""
    return ClusterSpec(
        name="SQL",
        nodes=tuple(
            Node(f"sql{k}", cpu_mhz=2600.0, n_cpus=2, ram_mb=2048.0)
            for k in range(n_nodes)
        ),
    )
