"""Grid jobs: units of schedulable work with file dependencies."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import GridError


class JobState(enum.Enum):
    """Condor-style job lifecycle."""

    IDLE = "idle"            # queued, waiting for a slot
    TRANSFERRING = "transferring"  # input files in flight
    RUNNING = "running"
    COMPLETED = "completed"
    FAILED = "failed"


@dataclass
class Job:
    """One grid job: compute demand plus input/output file traffic.

    ``cpu_seconds`` is the job's cost on a *reference* CPU; the
    scheduler scales it by the executing node's speed.  ``input_bytes``
    are fetched from the archive before the job can start (the DAS
    pattern), ``output_bytes`` shipped back after.
    """

    job_id: int
    name: str
    cpu_seconds: float
    input_bytes: float = 0.0
    output_bytes: float = 0.0
    input_files: int = 0
    ram_bytes: float = 0.0
    state: JobState = JobState.IDLE
    node: str | None = None
    start_time: float | None = None
    end_time: float | None = None
    attempts: int = 0

    def __post_init__(self) -> None:
        if self.cpu_seconds < 0 or self.input_bytes < 0 or self.output_bytes < 0:
            raise GridError(f"job '{self.name}' has negative demands")

    @property
    def runtime_s(self) -> float | None:
        if self.start_time is None or self.end_time is None:
            return None
        return self.end_time - self.start_time


def field_job(
    job_id: int,
    field_name: str,
    cpu_seconds: float,
    target_bytes: float,
    buffer_bytes: float,
    candidate_bytes: float = 0.0,
) -> Job:
    """A MaxBCG field task: two input files, one candidates output."""
    return Job(
        job_id=job_id,
        name=f"maxbcg-{field_name}",
        cpu_seconds=cpu_seconds,
        input_bytes=target_bytes + buffer_bytes,
        output_bytes=candidate_bytes,
        input_files=2,
        ram_bytes=target_bytes + buffer_bytes,
    )
