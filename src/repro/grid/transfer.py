"""File-transfer cost model: the DAS-to-node traffic of a data grid.

The paper's criticism of the status quo: "most of the data-intensive
applications that run on the Grid today focus on moving hundreds of
thousands of files from the storage archives to the thousands of
computing nodes."  :class:`TransferModel` prices that traffic with the
standard latency + bandwidth model, including a per-file overhead term
that makes many-small-files strictly worse than one big stream — the
quantitative backbone of the "move the query to the data" argument.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import GridError

#: 100 Mbit/s switched Ethernet, the TAM-era LAN.
LAN_BANDWIDTH_BPS = 100e6 / 8.0

#: Per-file protocol overhead (open/auth/metadata round-trips), seconds.
PER_FILE_OVERHEAD_S = 0.25


@dataclass(frozen=True)
class TransferModel:
    """Latency + bandwidth + per-file-overhead transfer pricing."""

    bandwidth_bytes_per_s: float = LAN_BANDWIDTH_BPS
    latency_s: float = 0.001
    per_file_overhead_s: float = PER_FILE_OVERHEAD_S

    def __post_init__(self) -> None:
        if self.bandwidth_bytes_per_s <= 0:
            raise GridError("bandwidth must be positive")
        if self.latency_s < 0 or self.per_file_overhead_s < 0:
            raise GridError("latency/overhead must be non-negative")

    def seconds(self, total_bytes: float, n_files: int = 1) -> float:
        """Time to move ``n_files`` totalling ``total_bytes``."""
        if total_bytes < 0 or n_files < 0:
            raise GridError("bytes and file counts must be non-negative")
        if n_files == 0:
            return 0.0
        return (
            n_files * (self.latency_s + self.per_file_overhead_s)
            + total_bytes / self.bandwidth_bytes_per_s
        )

    def seconds_saved_by_batching(self, total_bytes: float, n_files: int) -> float:
        """How much the per-file overhead costs vs one bulk stream."""
        return self.seconds(total_bytes, n_files) - self.seconds(total_bytes, 1)


def wan_model() -> TransferModel:
    """A 2004 WAN path (archive at another lab): ~20 Mbit/s, 30 ms RTT."""
    return TransferModel(
        bandwidth_bytes_per_s=20e6 / 8.0,
        latency_s=0.030,
        per_file_overhead_s=0.5,
    )
