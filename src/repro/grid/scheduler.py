"""A Condor-like scheduler: FIFO matchmaking over node slots.

The TAM ran MaxBCG under Condor; Chimera submitted the same jobs to
Grid sites.  For reproducing the paper's numbers we need the part of
Condor that matters here — embarrassingly parallel jobs matched to free
slots, with input transfer before execution — simulated as a
discrete-event loop.  RAM matchmaking is enforced: a job whose working
set exceeds every node's memory is *unschedulable*, which is exactly
the Figure 1 story (the ideal 1.5 × 1.5 deg² buffer files did not fit).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np

from repro.errors import GridError
from repro.grid.jobs import Job, JobState
from repro.grid.resources import ClusterSpec, Node
from repro.grid.transfer import TransferModel
from repro.obs.metrics import get_metrics
from repro.obs.trace import span


@dataclass
class ScheduleResult:
    """Outcome of one simulated run."""

    makespan_s: float
    jobs: list[Job]
    transfer_s_total: float
    compute_s_total: float
    unschedulable: list[Job]
    wasted_s_total: float = 0.0  # compute burned by failed attempts

    @property
    def retries(self) -> int:
        """Extra attempts beyond the first, across all jobs."""
        return sum(max(0, j.attempts - 1) for j in self.jobs)

    @property
    def completed(self) -> int:
        return sum(1 for j in self.jobs if j.state is JobState.COMPLETED)

    def node_utilization(self) -> dict[str, float]:
        """Busy seconds per node divided by the makespan."""
        busy: dict[str, float] = {}
        for job in self.jobs:
            if job.state is JobState.COMPLETED and job.node is not None:
                busy[job.node] = busy.get(job.node, 0.0) + (job.runtime_s or 0.0)
        if self.makespan_s <= 0:
            return {name: 0.0 for name in busy}
        return {name: seconds / self.makespan_s for name, seconds in busy.items()}


@dataclass(frozen=True)
class _Slot:
    node: Node
    slot_index: int

    @property
    def name(self) -> str:
        return f"{self.node.name}/{self.slot_index}"


class CondorScheduler:
    """FIFO matchmaking simulation.

    Jobs run for ``transfer_time + cpu_seconds * node.cpu_scale(reference)``
    on the first free slot whose node satisfies the RAM requirement.
    Shared-archive contention is modeled optionally by serializing
    transfers through a single archive link.

    **Failure injection**: with ``failure_rate > 0`` each execution
    attempt fails independently with that probability, at a uniform
    point of its compute phase — the slot time up to the failure is
    wasted, and the job re-queues (Condor's defining feature is exactly
    this retry-until-done behaviour).  After ``max_retries`` extra
    attempts the job is marked FAILED.  Deterministic given ``seed``.
    """

    def __init__(
        self,
        cluster: ClusterSpec,
        transfer: TransferModel,
        reference_cpu_mhz: float = 2600.0,
        serialize_transfers: bool = False,
        failure_rate: float = 0.0,
        max_retries: int = 3,
        seed: int = 0,
    ):
        if not (0.0 <= failure_rate <= 1.0):
            raise GridError("failure_rate must be in [0, 1]")
        if max_retries < 0:
            raise GridError("max_retries must be non-negative")
        self.cluster = cluster
        self.transfer = transfer
        self.reference_cpu_mhz = reference_cpu_mhz
        self.serialize_transfers = serialize_transfers
        self.failure_rate = failure_rate
        self.max_retries = max_retries
        self.seed = seed

    def run(self, jobs: list[Job]) -> ScheduleResult:
        """Simulate a queue of jobs to completion; returns the timeline."""
        with span("grid.schedule", layer="grid",
                  attrs={"jobs": len(jobs),
                         "nodes": len(self.cluster.nodes)}):
            result = self._run(jobs)
        self._record_metrics(result)
        return result

    def _record_metrics(self, result: ScheduleResult) -> None:
        """Mirror the simulated timeline into the metrics registry."""
        metrics = get_metrics()
        metrics.counter("grid.jobs.completed").inc(result.completed)
        unschedulable_ids = {id(j) for j in result.unschedulable}
        failed = sum(
            1 for j in result.jobs
            if j.state is JobState.FAILED and id(j) not in unschedulable_ids
        )
        metrics.counter("grid.jobs.failed").inc(failed)
        metrics.counter("grid.jobs.unschedulable").inc(
            len(result.unschedulable)
        )
        metrics.counter("grid.retries").inc(result.retries)
        metrics.gauge("grid.makespan_s").set(result.makespan_s)
        metrics.counter("grid.transfer.seconds").inc(result.transfer_s_total)
        metrics.counter("grid.compute.seconds").inc(result.compute_s_total)
        metrics.counter("grid.wasted.seconds").inc(result.wasted_s_total)
        metrics.counter("grid.transfer.bytes").inc(sum(
            j.input_bytes + j.output_bytes
            for j in result.jobs
            if j.state is JobState.COMPLETED
        ))

    def _run(self, jobs: list[Job]) -> ScheduleResult:
        slots: list[_Slot] = [
            _Slot(node, index)
            for node in self.cluster.nodes
            for index in range(node.slots)
        ]
        if not slots:
            raise GridError("cluster has no slots")

        # (free_time, tiebreak, slot)
        free_at: list[tuple[float, int, _Slot]] = [
            (0.0, k, slot) for k, slot in enumerate(slots)
        ]
        heapq.heapify(free_at)
        archive_free_at = 0.0
        tiebreak = len(slots)

        transfer_total = 0.0
        compute_total = 0.0
        wasted_total = 0.0
        unschedulable: list[Job] = []
        makespan = 0.0
        rng = np.random.default_rng(self.seed)

        def pop_feasible(job: Job) -> tuple[float, _Slot]:
            nonlocal tiebreak
            parked: list[tuple[float, int, _Slot]] = []
            while True:
                free_time, _, slot = heapq.heappop(free_at)
                if slot.node.fits_in_ram(job.ram_bytes):
                    break
                parked.append((free_time, tiebreak, slot))
                tiebreak += 1
            for entry in parked:
                heapq.heappush(free_at, entry)
            return free_time, slot

        for job in jobs:
            if not any(slot.node.fits_in_ram(job.ram_bytes) for slot in slots):
                job.state = JobState.FAILED
                unschedulable.append(job)
                continue

            attempts_left = 1 + self.max_retries
            while attempts_left > 0:
                attempts_left -= 1
                job.attempts += 1
                free_time, slot = pop_feasible(job)

                transfer_s = self.transfer.seconds(
                    job.input_bytes, job.input_files
                )
                output_s = self.transfer.seconds(
                    job.output_bytes, 1 if job.output_bytes > 0 else 0
                )
                start = free_time
                if self.serialize_transfers:
                    start = max(start, archive_free_at)
                    archive_free_at = start + transfer_s
                compute_s = job.cpu_seconds * slot.node.cpu_scale(
                    self.reference_cpu_mhz
                )

                fails = (
                    self.failure_rate > 0.0
                    and rng.random() < self.failure_rate
                )
                if fails and attempts_left > 0:
                    # dies partway through compute; slot time is wasted
                    burned = compute_s * float(rng.random())
                    end = start + transfer_s + burned
                    transfer_total += transfer_s
                    wasted_total += burned
                    makespan = max(makespan, end)
                    heapq.heappush(free_at, (end, tiebreak, slot))
                    tiebreak += 1
                    continue
                if fails:
                    # out of retries
                    burned = compute_s * float(rng.random())
                    end = start + transfer_s + burned
                    wasted_total += burned
                    job.state = JobState.FAILED
                    job.node = slot.name
                    makespan = max(makespan, end)
                    heapq.heappush(free_at, (end, tiebreak, slot))
                    tiebreak += 1
                    break

                end = start + transfer_s + compute_s + output_s
                job.state = JobState.COMPLETED
                job.node = slot.name
                job.start_time = start
                job.end_time = end
                transfer_total += transfer_s + output_s
                compute_total += compute_s
                makespan = max(makespan, end)
                heapq.heappush(free_at, (end, tiebreak, slot))
                tiebreak += 1
                break

        return ScheduleResult(
            makespan_s=makespan,
            jobs=jobs,
            transfer_s_total=transfer_total,
            compute_s_total=compute_total,
            unschedulable=unschedulable,
            wasted_s_total=wasted_total,
        )
