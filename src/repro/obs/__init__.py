"""Unified observability: tracing, metrics, exporters, slow-query log.

One subsystem connects the reproduction's islands of measurement —
``engine/instrument.py`` (one query), ``engine/stats.py`` (one task),
the CasJobs scheduler's counters, the cluster backends' per-worker
reports, and the grid simulator — into a single diagnostic surface:

* :func:`span` / :class:`Tracer` — hierarchical tracing with
  trace/span/parent ids, wall + CPU + I/O per span, propagated across
  threads via contextvars and across process boundaries inside cluster
  work units;
* :func:`get_metrics` — a process-wide registry of named counters,
  gauges and fixed-bucket histograms every layer feeds;
* :mod:`repro.obs.export` — JSONL, Chrome ``trace_event`` JSON (loads
  in ``about:tracing`` / Perfetto) and a plain-text tree;
* :func:`get_slow_log` — statements over their latency budget, with
  SQL text, chosen plan and worst q-error;
* :class:`QueryStore` — persisted per-fingerprint workload history,
  plan-regression detection and plan forcing, materialized as
  ``sys_query_store_*`` catalog tables.

Tracing is **off by default** and the disabled path is near-free (one
module-global check per ``span()``); metrics are always on but only
touched on coarse events or pulled at snapshot time.  Drive it from
the shell with ``repro trace`` and ``repro metrics``.
"""

from repro.obs.export import (
    render_tree,
    to_chrome_trace,
    to_jsonl,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_metrics,
)
from repro.obs.querystore import (
    QUERY_STORE_VIEWS,
    IntervalStats,
    PlanChange,
    QueryStore,
    StoredPlan,
    StoredQuery,
    attribution,
    current_user,
)
from repro.obs.slowlog import SlowQuery, SlowQueryLog, get_slow_log
from repro.obs.trace import (
    Span,
    TraceContext,
    Tracer,
    activate,
    current_context,
    disable,
    enable,
    enabled,
    finish_span,
    get_tracer,
    set_enabled,
    span,
    start_span,
    tracing,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "IntervalStats",
    "MetricsRegistry",
    "PlanChange",
    "QUERY_STORE_VIEWS",
    "QueryStore",
    "SlowQuery",
    "SlowQueryLog",
    "Span",
    "StoredPlan",
    "StoredQuery",
    "TraceContext",
    "Tracer",
    "activate",
    "attribution",
    "current_context",
    "current_user",
    "disable",
    "enable",
    "enabled",
    "finish_span",
    "get_metrics",
    "get_slow_log",
    "get_tracer",
    "render_tree",
    "set_enabled",
    "span",
    "start_span",
    "to_chrome_trace",
    "to_jsonl",
    "tracing",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
]
