"""Hierarchical tracing: one trace across CasJobs, cluster, grid, engine.

The paper's whole argument rests on observables — Table 1's
elapsed/CPU/I/O triples came straight from SQL Server's execution
statistics.  This module is how the reproduction connects its islands
of measurement into one picture: a submitted CasJobs job, the scheduler
attempts that served it, the cluster partitions those fanned out to,
and the engine tasks each partition ran all land in a *single* trace
with parent/child links intact.

Design points:

* **Near-zero disabled path.**  Tracing is off by default; a disabled
  :func:`span` is one module-global check and yields a shared no-op
  span — no allocation, no id generation, no clock reads.
* **Propagation across threads** is explicit: a :class:`TraceContext`
  is a tiny picklable value; workers call :func:`activate` with the
  context their dispatcher captured (contextvars do not flow into pool
  threads on their own).
* **Propagation across processes** rides inside
  :class:`~repro.cluster.workunit.PartitionWorkUnit`: the parent stamps
  its context on the unit, the child re-parents its spans under it and
  ships them back in the outcome, and the parent absorbs them into the
  global tracer — so `about:tracing` shows one tree spanning pids.
* **Honest clocks.**  Span CPU time is read from
  :func:`repro.engine.stats.current_cpu_clock`, so the thread backend's
  ``use_cpu_clock("thread")`` discipline applies to spans exactly as it
  does to :class:`~repro.engine.stats.TaskTimer`.
"""

from __future__ import annotations

import contextvars
import os
import threading
import time
import uuid
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.engine.stats import IOCounters, current_cpu_clock

#: Module-global master switch.  Read on every span() call; kept a plain
#: bool so the disabled path costs one attribute load.
_ENABLED = False

#: The active span's context on *this* logical context (task/thread).
_CURRENT: contextvars.ContextVar["TraceContext | None"] = contextvars.ContextVar(
    "repro_obs_current_span", default=None
)


def _new_id() -> str:
    return uuid.uuid4().hex[:16]


@dataclass(frozen=True)
class TraceContext:
    """What crosses a thread or process boundary: ids + origin pid.

    ``pid`` records where the context was captured, so a worker can
    tell whether its spans already live in the dispatcher's tracer
    (same process) or must be shipped back (child process).
    """

    trace_id: str
    span_id: str
    pid: int = field(default_factory=os.getpid)


@dataclass
class Span:
    """One measured region: ids, wall + CPU + I/O, free-form attrs.

    Plain data, pickles cleanly — finished spans cross process
    boundaries inside work-unit outcomes.
    """

    name: str
    trace_id: str
    span_id: str
    parent_id: str | None = None
    layer: str = "app"  # "casjobs" | "cluster" | "grid" | "engine" | ...
    start_wall: float = 0.0  # epoch seconds (Chrome trace timestamps)
    wall_s: float = 0.0
    cpu_s: float = 0.0
    io_ops: int = 0
    pid: int = 0
    thread: str = ""
    attrs: dict = field(default_factory=dict)

    def context(self) -> TraceContext:
        return TraceContext(self.trace_id, self.span_id)

    def set(self, key: str, value) -> None:
        """Attach an attribute to the span (no-op on the disabled span)."""
        self.attrs[key] = value


class _NoopSpan:
    """The shared span yielded when tracing is disabled."""

    __slots__ = ()

    def set(self, key: str, value) -> None:
        pass

    def context(self) -> None:
        return None


_NOOP_SPAN = _NoopSpan()


class Tracer:
    """Thread-safe sink for finished spans."""

    def __init__(self) -> None:
        self._spans: list[Span] = []
        self._lock = threading.Lock()

    def record(self, span: Span) -> None:
        with self._lock:
            self._spans.append(span)

    def absorb(self, spans: Iterable[Span]) -> None:
        """Merge spans shipped back from another process."""
        with self._lock:
            self._spans.extend(spans)

    def spans(self) -> list[Span]:
        with self._lock:
            return list(self._spans)

    def drain(self) -> list[Span]:
        """Return everything recorded so far and clear the buffer."""
        with self._lock:
            drained, self._spans = self._spans, []
            return drained

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)


_TRACER = Tracer()


def get_tracer() -> Tracer:
    return _TRACER


def enabled() -> bool:
    return _ENABLED


def set_enabled(on: bool) -> None:
    """Flip the master switch (idempotent; spans in the tracer persist)."""
    global _ENABLED
    _ENABLED = bool(on)


def enable() -> None:
    set_enabled(True)


def disable() -> None:
    set_enabled(False)


@contextmanager
def tracing(on: bool = True, clear: bool = True):
    """Scoped enable/disable; yields the tracer.  Test/bench helper."""
    previous = _ENABLED
    if clear:
        _TRACER.clear()
    set_enabled(on)
    try:
        yield _TRACER
    finally:
        set_enabled(previous)


def current_context() -> TraceContext | None:
    """The active span's context, for handing to another thread/process."""
    if not _ENABLED:
        return None
    return _CURRENT.get()


@contextmanager
def activate(ctx: TraceContext | None):
    """Adopt a context captured elsewhere as this thread's parent."""
    if ctx is None:
        yield
        return
    token = _CURRENT.set(ctx)
    try:
        yield
    finally:
        _CURRENT.reset(token)


def start_span(
    name: str,
    *,
    layer: str = "app",
    counters: IOCounters | None = None,
    parent: TraceContext | None = None,
    attrs: dict | None = None,
) -> Span:
    """Open a span explicitly (caller must :func:`finish_span` it).

    Used where a span's lifetime does not fit a ``with`` block — e.g.
    the CasJobs job span that opens at submission and closes whenever
    the job reaches a terminal state.  Does *not* set the current
    context; use :func:`span` or :func:`activate` for that.
    """
    ctx = parent if parent is not None else _CURRENT.get()
    thread = threading.current_thread()
    sp = Span(
        name=name,
        trace_id=ctx.trace_id if ctx is not None else _new_id(),
        span_id=_new_id(),
        parent_id=ctx.span_id if ctx is not None else None,
        layer=layer,
        start_wall=time.time(),
        pid=os.getpid(),
        thread=thread.name,
        attrs=dict(attrs or {}),
    )
    # live measurement state: instance attributes, not dataclass fields,
    # so asdict()/export never see them; finish_span deletes them.
    sp._t0 = time.perf_counter()  # type: ignore[attr-defined]
    sp._cpu_clock = current_cpu_clock()  # type: ignore[attr-defined]
    sp._cpu0 = sp._cpu_clock()  # type: ignore[attr-defined]
    sp._counters = counters  # type: ignore[attr-defined]
    sp._io0 = counters.snapshot() if counters is not None else None  # type: ignore[attr-defined]
    return sp


def finish_span(sp: Span) -> None:
    """Close an explicitly opened span and record it."""
    sp.wall_s = time.perf_counter() - sp._t0  # type: ignore[attr-defined]
    sp.cpu_s = sp._cpu_clock() - sp._cpu0  # type: ignore[attr-defined]
    if sp._counters is not None and sp._io0 is not None:  # type: ignore[attr-defined]
        sp.io_ops = sp._counters.since(sp._io0).total  # type: ignore[attr-defined]
    del sp._t0, sp._cpu_clock, sp._cpu0, sp._counters, sp._io0  # type: ignore[attr-defined]
    _TRACER.record(sp)


@contextmanager
def span(
    name: str,
    *,
    layer: str = "app",
    counters: IOCounters | None = None,
    parent: TraceContext | None = None,
    attrs: dict | None = None,
):
    """Measure a region as a child of the active (or given) context.

    Disabled tracing yields a shared no-op span: one flag check, no
    allocation.  Enabled, the span measures wall clock, CPU (via the
    per-thread clock discipline) and, when ``counters`` is supplied,
    the I/O delta observed during the block; the span becomes the
    current context for anything opened inside it.
    """
    if not _ENABLED:
        yield _NOOP_SPAN
        return
    sp = start_span(
        name, layer=layer, counters=counters, parent=parent, attrs=attrs
    )
    token = _CURRENT.set(sp.context())
    try:
        yield sp
    finally:
        _CURRENT.reset(token)
        finish_span(sp)


def wrap(name: str, fn: Callable, *, layer: str = "app") -> Callable:
    """Decorate a callable so each invocation runs inside a span."""

    def traced(*args, **kwargs):
        with span(name, layer=layer):
            return fn(*args, **kwargs)

    traced.__name__ = getattr(fn, "__name__", name)
    return traced
