"""The slow-query log: statements that blew their latency budget.

Production CasJobs lived on per-job history and accounting; the part a
DBA reaches for first is the slow-query log.  Any statement the engine
executes above the threshold is recorded with its SQL text (re-rendered
through the one true printer where parseable), the plan that ran, and —
when the statement was executed with instrumentation — the worst
per-operator q-error, so "slow because the optimizer was wrong" is
distinguishable from "slow because the work is big".
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field

from repro.obs.metrics import get_metrics

#: Default latency budget before a statement is logged, seconds.
DEFAULT_THRESHOLD_S = 0.25


@dataclass(frozen=True)
class SlowQuery:
    """One over-budget statement."""

    sql: str
    elapsed_s: float
    plan: str | None = None
    max_q_error: float | None = None
    database: str | None = None
    #: Normalized-statement fingerprint (feedback optimizer on): the
    #: join key against the FeedbackStore and the plan memo.
    fingerprint: str | None = None
    #: How the plan was obtained: hit / miss / replan / learned-override.
    memo: str | None = None
    #: The EngineConfig plan signature the statement ran under — with
    #: ``fingerprint`` this joins a slow entry against the Query Store
    #: plan history (``sys_query_store_plans``).
    plan_signature: str | None = None
    #: The decision that produced the plan that ran (plan origin:
    #: miss / replan / learned-override / forced / cost / ...).
    decision: str | None = None
    recorded_at: float = field(default_factory=time.time)

    @property
    def line(self) -> str:
        parts = [f"{self.elapsed_s * 1e3:9.2f} ms"]
        if self.max_q_error is not None:
            parts.append(f"q={self.max_q_error:.2f}")
        if self.database:
            parts.append(f"db={self.database}")
        if self.fingerprint:
            parts.append(f"fp={self.fingerprint[:12]}")
        if self.memo:
            parts.append(f"memo={self.memo}")
        if self.decision and self.decision != self.memo:
            parts.append(f"plan={self.decision}")
        if self.plan_signature:
            parts.append(f"sig=[{self.plan_signature}]")
        parts.append(self.sql if len(self.sql) <= 120 else self.sql[:117] + "...")
        return "  ".join(parts)


class SlowQueryLog:
    """Bounded, thread-safe ring of :class:`SlowQuery` records."""

    def __init__(
        self,
        threshold_s: float = DEFAULT_THRESHOLD_S,
        capacity: int = 200,
    ):
        self.threshold_s = threshold_s
        self._entries: deque[SlowQuery] = deque(maxlen=capacity)
        self._lock = threading.Lock()

    def set_threshold(self, threshold_s: float) -> None:
        self.threshold_s = threshold_s

    def is_slow(self, elapsed_s: float) -> bool:
        return elapsed_s >= self.threshold_s

    def record(
        self,
        sql: str,
        elapsed_s: float,
        plan: str | None = None,
        max_q_error: float | None = None,
        database: str | None = None,
        fingerprint: str | None = None,
        memo: str | None = None,
        plan_signature: str | None = None,
        decision: str | None = None,
    ) -> SlowQuery | None:
        """Log the statement if it is over threshold; returns the entry."""
        if not self.is_slow(elapsed_s):
            return None
        entry = SlowQuery(
            sql=sql,
            elapsed_s=elapsed_s,
            plan=plan,
            max_q_error=max_q_error,
            database=database,
            fingerprint=fingerprint,
            memo=memo,
            plan_signature=plan_signature,
            decision=decision,
        )
        with self._lock:
            self._entries.append(entry)
        get_metrics().counter("engine.slow_queries").inc()
        return entry

    def entries(self) -> list[SlowQuery]:
        with self._lock:
            return list(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def render(self) -> str:
        """The log as text, slowest first; plans inline when captured."""
        entries = sorted(
            self.entries(), key=lambda e: e.elapsed_s, reverse=True
        )
        if not entries:
            return "slow-query log: empty"
        lines = [f"slow-query log ({len(entries)} over "
                 f"{self.threshold_s * 1e3:g} ms):"]
        for entry in entries:
            lines.append(f"  {entry.line}")
            if entry.plan:
                lines.extend(f"    | {plan_line}"
                             for plan_line in entry.plan.splitlines())
        return "\n".join(lines)


_SLOW_LOG = SlowQueryLog()


def get_slow_log() -> SlowQueryLog:
    """The process-wide slow-query log the engine feeds."""
    return _SLOW_LOG
