"""The metrics registry: named counters, gauges and histograms.

Every layer's existing island of accounting feeds one process-wide
registry so a single snapshot answers "where did time, CPU and I/O
go": buffer-pool hits/misses/evictions from the page layer, per-query
elapsed and q-error from the engine, queue waits / retries / timeouts /
dead-letters / shed jobs from the CasJobs scheduler, per-partition
wall/CPU/I/O from the cluster backends, transfer seconds and job
states from the grid simulator.

Two feeding styles, chosen by hot-path cost:

* **push** — coarse events (a job finishing, a partition completing)
  call :meth:`Counter.inc` / :meth:`Histogram.observe` directly; these
  are lock-guarded but fire at most a few times per job, never per row;
* **pull** — hot-path sources (the buffer pool, touched on every page
  access) keep their own plain-int counters and register a *collector*
  callback; the registry reads them only at snapshot time, so the hot
  path pays nothing.
"""

from __future__ import annotations

import bisect
import math
import threading
from typing import Callable, Iterable

from repro.errors import ObsError

#: Default histogram bucket upper bounds (seconds-flavored: µs to minutes).
DEFAULT_BUCKETS = (
    0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
    10.0, 30.0, 60.0,
)


class Counter:
    """Monotonic named counter."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, n: float = 1.0) -> None:
        with self._lock:
            self._value += n

    @property
    def value(self) -> float:
        return self._value

    def reset(self) -> None:
        with self._lock:
            self._value = 0.0


class Gauge:
    """Last-write-wins named value."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    @property
    def value(self) -> float:
        return self._value

    def reset(self) -> None:
        self.set(0.0)


class Histogram:
    """Fixed-bucket histogram (cumulative-style buckets + sum + count)."""

    __slots__ = ("name", "uppers", "_counts", "_sum", "_count", "_max",
                 "_lock")

    def __init__(self, name: str, buckets: Iterable[float] = DEFAULT_BUCKETS):
        uppers = tuple(sorted(float(b) for b in buckets))
        if not uppers:
            raise ObsError(f"histogram '{name}' needs at least one bucket")
        self.name = name
        self.uppers = uppers  # +inf overflow bucket is implicit (last slot)
        self._counts = [0] * (len(uppers) + 1)
        self._sum = 0.0
        self._count = 0
        #: Largest value observed — bounds the +inf overflow bucket so
        #: quantiles landing there interpolate instead of reporting inf.
        self._max: float | None = None
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        slot = bisect.bisect_left(self.uppers, value)
        with self._lock:
            self._counts[slot] += 1
            self._sum += value
            self._count += 1
            if self._max is None or value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    def buckets(self) -> dict[str, int]:
        """Bucket label ("le=<upper>") to count, overflow labeled 'le=inf'."""
        with self._lock:
            labels = [f"le={u:g}" for u in self.uppers] + ["le=inf"]
            return dict(zip(labels, list(self._counts)))

    def quantile(self, q: float) -> float:
        """Approximate quantile from the bucket boundaries.

        Finite buckets report their upper bound.  A rank landing in the
        terminal +inf overflow bucket interpolates linearly between the
        last finite bound and the largest observed value — a bucket
        sized badly for its workload degrades to a coarse estimate
        instead of an unusable ``inf``.
        """
        if not 0.0 <= q <= 1.0:
            raise ObsError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            if self._count == 0:
                return 0.0
            rank = q * self._count
            seen = 0
            for upper, n in zip(self.uppers, self._counts):
                seen += n
                if seen >= rank and n:
                    return upper
            overflow = self._counts[-1]
            if overflow == 0 or self._max is None:
                return math.inf  # defensive: nothing actually overflowed
            lower = self.uppers[-1]
            fraction = (rank - (self._count - overflow)) / overflow
            fraction = min(max(fraction, 0.0), 1.0)
            if self._max <= lower:
                return self._max
            return lower + (self._max - lower) * fraction

    def reset(self) -> None:
        with self._lock:
            self._counts = [0] * (len(self.uppers) + 1)
            self._sum = 0.0
            self._count = 0
            self._max = None


#: A collector returns {metric name: value} when the registry snapshots.
Collector = Callable[[], dict[str, float]]


class MetricsRegistry:
    """Process-wide named metrics plus pull-style collectors."""

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}
        self._collectors: list[Collector] = []
        self._lock = threading.Lock()

    def _get_or_create(self, name: str, kind):
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, kind):
                    raise ObsError(
                        f"metric '{name}' is a {type(existing).__name__}, "
                        f"not a {kind.__name__}"
                    )
                return existing
            metric = kind(name)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)

    def histogram(
        self, name: str, buckets: Iterable[float] | None = None
    ) -> Histogram:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, Histogram):
                    raise ObsError(
                        f"metric '{name}' is a {type(existing).__name__}, "
                        "not a Histogram"
                    )
                return existing
            metric = Histogram(name, buckets or DEFAULT_BUCKETS)
            self._metrics[name] = metric
            return metric

    def add_collector(self, collector: Collector) -> None:
        """Register a pull-style source, read only at snapshot time."""
        with self._lock:
            self._collectors.append(collector)

    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, object]:
        """Every metric's current value, collectors included.

        Counters and gauges map to floats; histograms to a dict with
        ``count``, ``sum``, ``mean`` and per-bucket counts.
        """
        with self._lock:
            metrics = dict(self._metrics)
            collectors = list(self._collectors)
        out: dict[str, object] = {}
        for name, metric in metrics.items():
            if isinstance(metric, Histogram):
                out[name] = {
                    "count": metric.count,
                    "sum": metric.sum,
                    "mean": metric.mean,
                    "buckets": metric.buckets(),
                }
            else:
                out[name] = metric.value
        for collector in collectors:
            out.update(collector())
        return out

    def scalars(self, prefix: str = "") -> dict[str, float]:
        """Counter/gauge values as floats (histograms excluded).

        The shape the Chrome-trace exporter wants for counter ("C")
        events; ``prefix`` filters by metric-name prefix.
        """
        return {
            name: float(value)
            for name, value in self.snapshot().items()
            if not isinstance(value, dict)
            and (not prefix or name.startswith(prefix))
        }

    def render(self) -> str:
        """Plain-text dump, one metric per line, sorted by name."""
        lines = []
        for name, value in sorted(self.snapshot().items()):
            if isinstance(value, dict):
                lines.append(
                    f"{name}  count={value['count']} sum={value['sum']:.6g} "
                    f"mean={value['mean']:.6g}"
                )
            else:
                lines.append(f"{name}  {value:g}")
        return "\n".join(lines)

    def reset(self) -> None:
        """Zero every metric; registrations and collectors survive."""
        with self._lock:
            metrics = list(self._metrics.values())
        for metric in metrics:
            metric.reset()


_REGISTRY = MetricsRegistry()


def get_metrics() -> MetricsRegistry:
    """The process-wide registry every layer feeds."""
    return _REGISTRY
