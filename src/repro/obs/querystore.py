"""The Query Store: persisted workload history, queryable from SQL.

CasJobs was tuned by staring at workload logs — this module makes that
history a durable, first-class object, modeled on SQL Server's Query
Store (the production feature that grew out of exactly this workload
class).  A :class:`QueryStore` hangs off each
``EngineConfig(query_store=True)`` database and records, per
normalized-statement fingerprint:

* **queries** — SQL text, first/last seen, execution counts;
* **plans** — the full plan history: every distinct plan *structure*
  that ever ran for the fingerprint, with its EXPLAIN text, the
  :meth:`~repro.engine.config.EngineConfig.plan_signature` it was
  planned under, and which optimizer decision produced it (``cost`` /
  ``syntactic`` / ``miss`` / ``replan`` / ``learned-override`` /
  ``forced`` / ...);
* **runtime stats** — per ``(plan, time interval, user)`` aggregates:
  execution count, rows, wall mean/p50/p95, CPU, logical I/O and
  result-cache / plan-memo hits.  The user dimension comes from the
  CasJobs service via the :func:`attribution` context manager.

Whenever a fingerprint's current plan *changes* (feedback re-plan,
ANALYZE, forcing, config change) a :class:`PlanChange` event is
recorded; once the new plan has enough post-change executions its mean
wall time is compared against the old plan's and the change is
classified **regression** / **improvement** / **neutral** — surfaced by
``repro querystore regressions`` and the
``engine.querystore.regressions`` counter.

The store dogfoods the engine: :meth:`QueryStore.sync_views`
materializes it as three real catalog tables
(``sys_query_store_queries`` / ``sys_query_store_plans`` /
``sys_query_store_runtime_stats``), lazily rebuilt when the store has
moved, so ordinary SELECTs — including joins against user tables —
answer workload questions.  Persistence is one ``querystore.json``
beside the table files, written by
:func:`repro.engine.storage.save_database`.
"""

from __future__ import annotations

import contextvars
import hashlib
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field

import numpy as np

from repro.obs.metrics import get_metrics

#: The three system views the store materializes.
VIEW_QUERIES = "sys_query_store_queries"
VIEW_PLANS = "sys_query_store_plans"
VIEW_RUNTIME = "sys_query_store_runtime_stats"
QUERY_STORE_VIEWS = (VIEW_QUERIES, VIEW_PLANS, VIEW_RUNTIME)

#: Default length of one runtime-stat aggregation interval, seconds.
DEFAULT_INTERVAL_S = 60.0

#: Default LRU bound on tracked fingerprints.
DEFAULT_MAX_QUERIES = 256

#: Wall-time samples kept per (plan, interval, user) for percentiles —
#: a bounded ring; beyond it old samples are overwritten round-robin.
SAMPLE_CAP = 128

#: A plan change is classified once the new plan has this many
#: post-change executions to average over.
MIN_VERDICT_EXECUTIONS = 2

#: new/old mean-wall ratio thresholds for the verdict.
REGRESSION_RATIO = 1.25
IMPROVEMENT_RATIO = 0.80

#: Attribution: which user the current execution belongs to.  Set by
#: the CasJobs service around each job's query; "" = unattributed.
_CURRENT_USER: contextvars.ContextVar[str] = contextvars.ContextVar(
    "querystore_user", default=""
)


def current_user() -> str:
    """The user the current execution is attributed to ("" if none)."""
    return _CURRENT_USER.get()


@contextmanager
def attribution(user: str):
    """Attribute executions inside the block to ``user``.

    Context-local, so concurrent CasJobs workers attribute correctly.
    """
    token = _CURRENT_USER.set(user or "")
    try:
        yield
    finally:
        _CURRENT_USER.reset(token)


# ----------------------------------------------------------------------
# data model
# ----------------------------------------------------------------------
@dataclass
class StoredQuery:
    """One tracked statement fingerprint."""

    fingerprint: str
    sql: str = ""
    first_seen: float = 0.0
    last_seen: float = 0.0
    executions: int = 0
    #: The plan the fingerprint currently runs under (-1 before any
    #: planned execution — e.g. a store enabled mid-workload seeing only
    #: cache hits).
    current_plan_id: int = -1


@dataclass
class StoredPlan:
    """One distinct plan structure in a fingerprint's history."""

    plan_id: int
    fingerprint: str
    #: Structural signature (:func:`plan_structure`) — the dedup key and
    #: what plan forcing re-establishes against after a restart.
    structure: str
    plan_text: str
    plan_signature: str
    #: The optimizer decision that *first produced* this plan.
    decision: str
    created_at: float = 0.0
    executions: int = 0
    wall_total_s: float = 0.0
    #: Live operator tree (not persisted; used for same-process forcing).
    node: object | None = field(default=None, repr=False, compare=False)

    @property
    def mean_wall_s(self) -> float:
        return self.wall_total_s / self.executions if self.executions else 0.0


@dataclass
class IntervalStats:
    """Runtime aggregates for one (fingerprint, plan, interval, user)."""

    fingerprint: str
    plan_id: int
    interval_start: float
    user: str
    executions: int = 0
    rows: int = 0
    wall_sum_s: float = 0.0
    cpu_sum_s: float = 0.0
    logical_reads: int = 0
    cache_hits: int = 0
    memo_hits: int = 0
    #: Bounded ring of wall samples for p50/p95.
    samples: list[float] = field(default_factory=list)

    def observe_wall(self, wall_s: float) -> None:
        if len(self.samples) < SAMPLE_CAP:
            self.samples.append(wall_s)
        else:
            self.samples[self.executions % SAMPLE_CAP] = wall_s

    @property
    def wall_mean_s(self) -> float:
        return self.wall_sum_s / self.executions if self.executions else 0.0

    def wall_quantile(self, q: float) -> float:
        if not self.samples:
            return 0.0
        ordered = sorted(self.samples)
        rank = q * (len(ordered) - 1)
        lo = int(rank)
        hi = min(lo + 1, len(ordered) - 1)
        return ordered[lo] + (ordered[hi] - ordered[lo]) * (rank - lo)


@dataclass
class PlanChange:
    """A fingerprint switched plans; later classified by runtime."""

    fingerprint: str
    old_plan_id: int
    new_plan_id: int
    #: The decision that produced the new plan (replan / forced / ...).
    decision: str
    changed_at: float
    #: Old plan's mean wall at change time (the comparison baseline).
    old_mean_s: float | None
    #: New plan's totals at change time, so the post-change mean is
    #: computed over post-change executions only (matters when forcing
    #: re-activates a plan that already has history).
    new_base_executions: int = 0
    new_base_wall_s: float = 0.0
    verdict: str | None = None  # regression | improvement | neutral
    new_mean_s: float | None = None

    @property
    def ratio(self) -> float | None:
        """new/old mean wall ratio (None until classified)."""
        if self.new_mean_s is None or not self.old_mean_s:
            return None
        return self.new_mean_s / self.old_mean_s


# ----------------------------------------------------------------------
# the store
# ----------------------------------------------------------------------
class QueryStore:
    """Thread-safe per-database workload history."""

    def __init__(
        self,
        interval_s: float = DEFAULT_INTERVAL_S,
        max_queries: int = DEFAULT_MAX_QUERIES,
        metrics_prefix: str = "engine.querystore",
    ):
        self.interval_s = float(interval_s)
        self.max_queries = int(max_queries)
        self._queries: dict[str, StoredQuery] = {}
        self._plans: dict[int, StoredPlan] = {}
        self._plan_ids: dict[tuple[str, str], int] = {}  # (fp, structure)
        self._stats: dict[tuple[str, int, float, str], IntervalStats] = {}
        self._changes: list[PlanChange] = []
        self._next_plan_id = 1
        #: Bumps on every mutation; sync_views compares against it.
        self.generation = 0
        self._synced_generation = -1
        self._synced_forcer_version = -1
        self._syncing = False
        self._lock = threading.Lock()
        metrics = get_metrics()
        self._m_recorded = metrics.counter(f"{metrics_prefix}.recorded")
        self._m_plan_changes = metrics.counter(
            f"{metrics_prefix}.plan_changes"
        )
        self._m_regressions = metrics.counter(f"{metrics_prefix}.regressions")
        self._m_improvements = metrics.counter(
            f"{metrics_prefix}.improvements"
        )

    def __len__(self) -> int:
        with self._lock:
            return len(self._queries)

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def record(
        self,
        *,
        fingerprint: str,
        sql: str,
        elapsed_s: float,
        cpu_s: float = 0.0,
        rows: int = 0,
        logical_reads: int = 0,
        plan_text: str = "",
        plan_signature: str = "",
        decision: str | None = None,
        plan_origin: str | None = None,
        plan_node: object | None = None,
        cache_hit: bool = False,
        memo_hit: bool = False,
        user: str | None = None,
        now: float | None = None,
    ) -> None:
        """Fold one execution into the store.

        ``decision`` is how this execution obtained its plan;
        ``plan_origin`` is the decision that *first produced* the plan
        (differs on memo hits, which reuse a plan produced earlier).
        Cache hits carry no plan — they attach to the fingerprint's
        current plan.
        """
        if now is None:
            now = time.time()
        if user is None:
            user = current_user()
        with self._lock:
            query = self._queries.get(fingerprint)
            if query is None:
                query = StoredQuery(
                    fingerprint=fingerprint, sql=sql,
                    first_seen=now, last_seen=now,
                )
                self._queries[fingerprint] = query
                self._evict_locked()
            if sql:
                query.sql = sql
            query.executions += 1
            query.last_seen = now

            if cache_hit:
                plan_id = query.current_plan_id
            else:
                plan = self._plan_for_locked(
                    query, plan_text, plan_signature,
                    plan_origin or decision or "unknown", plan_node, now,
                )
                plan_id = plan.plan_id
                if query.current_plan_id != plan_id:
                    self._plan_changed_locked(
                        query, plan, decision or "unknown", now
                    )
                plan.executions += 1
                plan.wall_total_s += elapsed_s
                if plan_node is not None:
                    plan.node = plan_node

            if plan_id >= 0:
                stats = self._interval_locked(fingerprint, plan_id, now, user)
                stats.observe_wall(elapsed_s)
                stats.executions += 1
                stats.rows += int(rows)
                stats.wall_sum_s += elapsed_s
                stats.cpu_sum_s += max(cpu_s, 0.0)
                stats.logical_reads += max(int(logical_reads), 0)
                if cache_hit:
                    stats.cache_hits += 1
                if memo_hit:
                    stats.memo_hits += 1

            self._classify_locked(fingerprint)
            self.generation += 1
        self._m_recorded.inc()

    def _plan_for_locked(
        self, query: StoredQuery, plan_text: str, plan_signature: str,
        origin: str, plan_node, now: float,
    ) -> StoredPlan:
        from repro.engine.optimizer.planforce import plan_structure

        if plan_node is not None:
            structure = plan_structure(plan_node)
        else:
            # no live tree (e.g. a restored plan replayed): key on text
            structure = hashlib.sha256(
                plan_text.encode()
            ).hexdigest()[:32]
        key = (query.fingerprint, structure)
        plan_id = self._plan_ids.get(key)
        if plan_id is not None:
            return self._plans[plan_id]
        plan = StoredPlan(
            plan_id=self._next_plan_id,
            fingerprint=query.fingerprint,
            structure=structure,
            plan_text=plan_text,
            plan_signature=plan_signature,
            decision=origin,
            created_at=now,
        )
        self._next_plan_id += 1
        self._plans[plan.plan_id] = plan
        self._plan_ids[key] = plan.plan_id
        return plan

    def _plan_changed_locked(
        self, query: StoredQuery, new_plan: StoredPlan, decision: str,
        now: float,
    ) -> None:
        old_id = query.current_plan_id
        if old_id >= 0:
            old_plan = self._plans.get(old_id)
            self._changes.append(PlanChange(
                fingerprint=query.fingerprint,
                old_plan_id=old_id,
                new_plan_id=new_plan.plan_id,
                decision=decision,
                changed_at=now,
                old_mean_s=(
                    old_plan.mean_wall_s
                    if old_plan is not None and old_plan.executions
                    else None
                ),
                new_base_executions=new_plan.executions,
                new_base_wall_s=new_plan.wall_total_s,
            ))
            self._m_plan_changes.inc()
        query.current_plan_id = new_plan.plan_id

    def _classify_locked(self, fingerprint: str) -> None:
        """Settle verdicts for pending changes of one fingerprint."""
        for change in self._changes:
            if change.fingerprint != fingerprint or change.verdict is not None:
                continue
            plan = self._plans.get(change.new_plan_id)
            if plan is None:
                change.verdict = "neutral"
                continue
            delta_n = plan.executions - change.new_base_executions
            if delta_n < MIN_VERDICT_EXECUTIONS:
                continue
            new_mean = (
                (plan.wall_total_s - change.new_base_wall_s) / delta_n
            )
            change.new_mean_s = new_mean
            if not change.old_mean_s:
                change.verdict = "neutral"
                continue
            ratio = new_mean / change.old_mean_s
            if ratio >= REGRESSION_RATIO:
                change.verdict = "regression"
                self._m_regressions.inc()
            elif ratio <= IMPROVEMENT_RATIO:
                change.verdict = "improvement"
                self._m_improvements.inc()
            else:
                change.verdict = "neutral"

    def _interval_locked(
        self, fingerprint: str, plan_id: int, now: float, user: str
    ) -> IntervalStats:
        start = (now // self.interval_s) * self.interval_s
        key = (fingerprint, plan_id, start, user)
        stats = self._stats.get(key)
        if stats is None:
            stats = IntervalStats(
                fingerprint=fingerprint, plan_id=plan_id,
                interval_start=start, user=user,
            )
            self._stats[key] = stats
        return stats

    def _evict_locked(self) -> None:
        """Cap tracked fingerprints; cascade to plans/stats/changes."""
        while len(self._queries) > self.max_queries:
            victim = min(
                self._queries.values(), key=lambda q: q.last_seen
            ).fingerprint
            del self._queries[victim]
            doomed = [
                pid for pid, plan in self._plans.items()
                if plan.fingerprint == victim
            ]
            for pid in doomed:
                plan = self._plans.pop(pid)
                self._plan_ids.pop((victim, plan.structure), None)
            self._stats = {
                k: v for k, v in self._stats.items() if k[0] != victim
            }
            self._changes = [
                c for c in self._changes if c.fingerprint != victim
            ]

    def touch(self) -> None:
        """Force a view refresh on next access (e.g. after forcing)."""
        with self._lock:
            self.generation += 1

    # ------------------------------------------------------------------
    # read API
    # ------------------------------------------------------------------
    def queries(self) -> list[StoredQuery]:
        with self._lock:
            return sorted(self._queries.values(),
                          key=lambda q: q.fingerprint)

    def query(self, fingerprint: str) -> StoredQuery | None:
        with self._lock:
            return self._queries.get(fingerprint)

    def plans(self, fingerprint: str | None = None) -> list[StoredPlan]:
        with self._lock:
            plans = sorted(self._plans.values(), key=lambda p: p.plan_id)
        if fingerprint is not None:
            plans = [p for p in plans if p.fingerprint == fingerprint]
        return plans

    def plan(self, plan_id: int) -> StoredPlan | None:
        with self._lock:
            return self._plans.get(plan_id)

    def runtime_stats(self) -> list[IntervalStats]:
        with self._lock:
            return sorted(
                self._stats.values(),
                key=lambda s: (s.fingerprint, s.plan_id,
                               s.interval_start, s.user),
            )

    def plan_changes(self) -> list[PlanChange]:
        with self._lock:
            return list(self._changes)

    def regressions(self) -> list[PlanChange]:
        """Classified plan changes that made the query slower."""
        return [c for c in self.plan_changes() if c.verdict == "regression"]

    def improvements(self) -> list[PlanChange]:
        return [c for c in self.plan_changes() if c.verdict == "improvement"]

    def summary(self) -> dict[str, int]:
        with self._lock:
            return {
                "queries": len(self._queries),
                "plans": len(self._plans),
                "intervals": len(self._stats),
                "plan_changes": len(self._changes),
                "regressions": sum(
                    1 for c in self._changes if c.verdict == "regression"
                ),
                "improvements": sum(
                    1 for c in self._changes if c.verdict == "improvement"
                ),
            }

    # ------------------------------------------------------------------
    # system views
    # ------------------------------------------------------------------
    def view_batches(self, forcer=None) -> dict[str, dict[str, np.ndarray]]:
        """The three system views as column batches, deterministic order."""
        queries = self.queries()
        plans = self.plans()
        stats = self.runtime_stats()
        forced_by_fp = {
            e.fingerprint: e for e in (forcer.entries() if forcer else [])
        }
        obj = np.asarray
        q_batch = {
            "fingerprint": obj([q.fingerprint for q in queries], dtype=object),
            "sql": obj([q.sql for q in queries], dtype=object),
            "executions": obj([q.executions for q in queries],
                              dtype=np.int64),
            "plan_count": obj(
                [sum(1 for p in plans if p.fingerprint == q.fingerprint)
                 for q in queries], dtype=np.int64,
            ),
            "current_plan_id": obj([q.current_plan_id for q in queries],
                                   dtype=np.int64),
            "forced_plan_id": obj(
                [forced_by_fp[q.fingerprint].plan_id
                 if q.fingerprint in forced_by_fp else -1
                 for q in queries], dtype=np.int64,
            ),
            "first_seen": obj([q.first_seen for q in queries],
                              dtype=np.float64),
            "last_seen": obj([q.last_seen for q in queries],
                             dtype=np.float64),
        }
        p_batch = {
            "plan_id": obj([p.plan_id for p in plans], dtype=np.int64),
            "fingerprint": obj([p.fingerprint for p in plans], dtype=object),
            "decision": obj([p.decision for p in plans], dtype=object),
            "plan_signature": obj([p.plan_signature for p in plans],
                                  dtype=object),
            "structure": obj([p.structure for p in plans], dtype=object),
            "is_forced": obj(
                [p.fingerprint in forced_by_fp
                 and forced_by_fp[p.fingerprint].plan_id == p.plan_id
                 for p in plans], dtype=bool,
            ),
            "force_failures": obj(
                [forced_by_fp[p.fingerprint].failures
                 if p.fingerprint in forced_by_fp
                 and forced_by_fp[p.fingerprint].plan_id == p.plan_id
                 else 0
                 for p in plans], dtype=np.int64,
            ),
            "executions": obj([p.executions for p in plans], dtype=np.int64),
            "wall_ms_mean": obj([p.mean_wall_s * 1e3 for p in plans],
                                dtype=np.float64),
            "created_at": obj([p.created_at for p in plans],
                              dtype=np.float64),
            "plan_text": obj([p.plan_text for p in plans], dtype=object),
        }
        s_batch = {
            "fingerprint": obj([s.fingerprint for s in stats], dtype=object),
            "plan_id": obj([s.plan_id for s in stats], dtype=np.int64),
            "interval_start": obj([s.interval_start for s in stats],
                                  dtype=np.float64),
            "user_name": obj([s.user for s in stats], dtype=object),
            "executions": obj([s.executions for s in stats], dtype=np.int64),
            "rows": obj([s.rows for s in stats], dtype=np.int64),
            "wall_ms_mean": obj([s.wall_mean_s * 1e3 for s in stats],
                                dtype=np.float64),
            "wall_ms_p50": obj([s.wall_quantile(0.5) * 1e3 for s in stats],
                               dtype=np.float64),
            "wall_ms_p95": obj([s.wall_quantile(0.95) * 1e3 for s in stats],
                               dtype=np.float64),
            "cpu_ms_total": obj([s.cpu_sum_s * 1e3 for s in stats],
                                dtype=np.float64),
            "logical_reads": obj([s.logical_reads for s in stats],
                                 dtype=np.int64),
            "cache_hits": obj([s.cache_hits for s in stats], dtype=np.int64),
            "memo_hits": obj([s.memo_hits for s in stats], dtype=np.int64),
        }
        return {
            VIEW_QUERIES: q_batch,
            VIEW_PLANS: p_batch,
            VIEW_RUNTIME: s_batch,
        }

    def sync_views(self, database) -> bool:
        """(Re)materialize the system views if the store has moved.

        Called from the database catalog on table lookup; re-entrancy
        (the rebuild itself resolves tables) is guarded.  Returns True
        when a rebuild happened.
        """
        if self._syncing:
            return False
        forcer = getattr(database, "plan_forcer", None)
        forcer_version = forcer.version if forcer is not None else -1
        with self._lock:
            current = (self.generation, forcer_version)
            synced = (self._synced_generation, self._synced_forcer_version)
        if current == synced and all(
            name in database._tables for name in QUERY_STORE_VIEWS
        ):
            return False
        self._syncing = True
        try:
            from repro.engine.schema import Column, TableSchema

            batches = self.view_batches(forcer)
            for name, batch in batches.items():
                table = database._tables.get(name)
                if table is None:
                    schema = TableSchema(
                        name=name,
                        columns=tuple(
                            Column(col, _VIEW_COLUMN_TYPES[name][col])
                            for col in batch
                        ),
                        primary_key=None,
                    )
                    table = database.create_table_from_schema(schema)
                else:
                    table.truncate()
                    database.invalidate_indexes(name)
                rows = len(next(iter(batch.values())))
                if rows:
                    table.insert(batch)
            with self._lock:
                self._synced_generation, self._synced_forcer_version = current
        finally:
            self._syncing = False
        return True

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def to_json(self, forcer=None) -> dict:
        """The full store (and any forced pins) as a JSON document."""
        with self._lock:
            queries = [vars(q).copy() for q in self._queries.values()]
            plans = [
                {k: v for k, v in vars(p).items() if k != "node"}
                for p in self._plans.values()
            ]
            stats = [vars(s).copy() for s in self._stats.values()]
            changes = [vars(c).copy() for c in self._changes]
            next_plan_id = self._next_plan_id
        forced = [
            {
                "fingerprint": e.fingerprint,
                "plan_id": e.plan_id,
                "structure": e.structure,
                "plan_text": e.plan_text,
                "plan_signature": e.plan_signature,
            }
            for e in (forcer.entries() if forcer is not None else [])
        ]
        return {
            "version": 1,
            "interval_s": self.interval_s,
            "next_plan_id": next_plan_id,
            "queries": queries,
            "plans": plans,
            "runtime_stats": stats,
            "plan_changes": changes,
            "forced": forced,
        }

    def load_json(self, payload: dict, forcer=None) -> None:
        """Replace the store's contents from :meth:`to_json` output."""
        with self._lock:
            self.interval_s = float(
                payload.get("interval_s", self.interval_s)
            )
            self._queries = {
                q["fingerprint"]: StoredQuery(**q)
                for q in payload.get("queries", ())
            }
            self._plans = {
                p["plan_id"]: StoredPlan(**p)
                for p in payload.get("plans", ())
            }
            self._plan_ids = {
                (p.fingerprint, p.structure): pid
                for pid, p in self._plans.items()
            }
            self._stats = {}
            for s in payload.get("runtime_stats", ()):
                stats = IntervalStats(**s)
                self._stats[(stats.fingerprint, stats.plan_id,
                             stats.interval_start, stats.user)] = stats
            self._changes = [
                PlanChange(**c) for c in payload.get("plan_changes", ())
            ]
            self._next_plan_id = int(payload.get(
                "next_plan_id",
                max(self._plans, default=0) + 1,
            ))
            self.generation += 1
            self._synced_generation = -1
        if forcer is not None:
            for pin in payload.get("forced", ()):
                forcer.force(
                    fingerprint=pin["fingerprint"],
                    plan_id=pin["plan_id"],
                    structure=pin["structure"],
                    plan_text=pin["plan_text"],
                    plan_signature=pin.get("plan_signature", ""),
                    node=None,  # re-established structurally on first run
                )

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def render(self, forcer=None) -> str:
        """Store contents as text (``repro querystore report``)."""
        summary = self.summary()
        lines = [
            "query store: {queries} queries, {plans} plans, "
            "{intervals} stat intervals, {plan_changes} plan changes "
            "({improvements} improved, {regressions} regressed)".format(
                **summary
            )
        ]
        forced_by_fp = {
            e.fingerprint: e for e in (forcer.entries() if forcer else [])
        }
        for query in self.queries():
            sql = (query.sql if len(query.sql) <= 64
                   else query.sql[:61] + "...")
            pin = forced_by_fp.get(query.fingerprint)
            lines.append(
                f"  {query.fingerprint[:12]}  execs={query.executions}  "
                f"current_plan={query.current_plan_id}"
                + (f"  FORCED->plan {pin.plan_id}" if pin else "")
                + f"  {sql}"
            )
            for plan in self.plans(query.fingerprint):
                lines.append(
                    f"    plan {plan.plan_id}: decision={plan.decision}  "
                    f"execs={plan.executions}  "
                    f"mean={plan.mean_wall_s * 1e3:.2f}ms  "
                    f"[{plan.plan_signature}]"
                )
        for change in self.plan_changes():
            ratio = change.ratio
            lines.append(
                f"  change {change.fingerprint[:12]}: plan "
                f"{change.old_plan_id} -> {change.new_plan_id} "
                f"({change.decision})  verdict={change.verdict or 'pending'}"
                + (f"  new/old={ratio:.2f}x" if ratio is not None else "")
            )
        return "\n".join(lines)


#: Declared column types for the system views (STRING columns must not
#: fall back to inference over empty object arrays).
def _view_column_types() -> dict[str, dict[str, object]]:
    from repro.engine.types import ColumnType

    s, i, f, b = (ColumnType.STRING, ColumnType.INT64,
                  ColumnType.FLOAT64, ColumnType.BOOL)
    return {
        VIEW_QUERIES: {
            "fingerprint": s, "sql": s, "executions": i, "plan_count": i,
            "current_plan_id": i, "forced_plan_id": i,
            "first_seen": f, "last_seen": f,
        },
        VIEW_PLANS: {
            "plan_id": i, "fingerprint": s, "decision": s,
            "plan_signature": s, "structure": s, "is_forced": b,
            "force_failures": i, "executions": i, "wall_ms_mean": f,
            "created_at": f, "plan_text": s,
        },
        VIEW_RUNTIME: {
            "fingerprint": s, "plan_id": i, "interval_start": f,
            "user_name": s, "executions": i, "rows": i, "wall_ms_mean": f,
            "wall_ms_p50": f, "wall_ms_p95": f, "cpu_ms_total": f,
            "logical_reads": i, "cache_hits": i, "memo_hits": i,
        },
    }


_VIEW_COLUMN_TYPES = _view_column_types()
