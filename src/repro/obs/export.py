"""Trace exporters: JSONL, Chrome ``trace_event`` JSON, and a text tree.

The Chrome format is the portable one — the file written by
``repro trace`` loads directly in ``about:tracing`` or
https://ui.perfetto.dev, with one track per (process, thread) and the
span attributes (CPU seconds, I/O ops, SQL text, ...) in the event
``args``.  :func:`validate_chrome_trace` is the small schema check the
CI smoke and the round-trip tests run against emitted files.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Iterable

from repro.errors import ObsError
from repro.obs.trace import Span


# ----------------------------------------------------------------------
# JSONL
# ----------------------------------------------------------------------
def span_to_dict(span: Span) -> dict:
    return dataclasses.asdict(span)


def to_jsonl(spans: Iterable[Span]) -> str:
    """One JSON object per line, one line per span."""
    return "\n".join(json.dumps(span_to_dict(s), default=str) for s in spans)


def write_jsonl(spans: Iterable[Span], path: str | Path) -> Path:
    path = Path(path)
    path.write_text(to_jsonl(spans) + "\n")
    return path


# ----------------------------------------------------------------------
# Chrome trace_event
# ----------------------------------------------------------------------
def to_chrome_trace(
    spans: Iterable[Span],
    counter_samples: Iterable[tuple[float, dict[str, float]]]
    | dict[str, float]
    | None = None,
) -> dict:
    """Spans as a Chrome ``trace_event`` document (complete "X" events).

    Thread names are mapped to small integer ``tid``s per process (the
    format wants integers) and surfaced via ``thread_name`` metadata
    events, so Perfetto labels the tracks readably.

    ``counter_samples`` adds counter ("C") events so Perfetto plots
    metric rates (engine.cache / engine.memo / engine.rewrite / ...)
    as tracks alongside the spans: either ``(wall_seconds, {name:
    value})`` samples, or a bare ``{name: value}`` dict, which is
    stamped at the end of the trace as a single closing sample (the
    shape :meth:`~repro.obs.metrics.MetricsRegistry.scalars` returns).
    """
    spans = list(spans)
    tids: dict[tuple[int, str], int] = {}
    events: list[dict] = []
    for span in spans:
        key = (span.pid, span.thread)
        if key not in tids:
            tids[key] = len([k for k in tids if k[0] == span.pid]) + 1
            events.append({
                "name": "thread_name",
                "ph": "M",
                "pid": span.pid,
                "tid": tids[key],
                "args": {"name": span.thread},
            })
        events.append({
            "name": span.name,
            "cat": span.layer,
            "ph": "X",
            "ts": span.start_wall * 1e6,  # microseconds
            "dur": max(span.wall_s, 0.0) * 1e6,
            "pid": span.pid,
            "tid": tids[key],
            "args": {
                "trace_id": span.trace_id,
                "span_id": span.span_id,
                "parent_id": span.parent_id,
                "cpu_s": span.cpu_s,
                "io_ops": span.io_ops,
                **{k: str(v) for k, v in span.attrs.items()},
            },
        })
    if counter_samples is not None:
        if isinstance(counter_samples, dict):
            trace_end = max(
                (s.start_wall + max(s.wall_s, 0.0) for s in spans),
                default=0.0,
            )
            counter_samples = [(trace_end, counter_samples)]
        pid = spans[0].pid if spans else 0
        for wall_s, values in counter_samples:
            for name, value in sorted(values.items()):
                events.append({
                    "name": name,
                    "cat": "metrics",
                    "ph": "C",
                    "ts": max(wall_s, 0.0) * 1e6,
                    "pid": pid,
                    "tid": 0,
                    "args": {"value": float(value)},
                })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def validate_chrome_trace(document: object) -> int:
    """Schema-check a Chrome trace document; returns the event count.

    Raises :class:`~repro.errors.ObsError` describing the first
    violation.  Deliberately small: the shape ``about:tracing`` and
    Perfetto require, nothing more.
    """
    if not isinstance(document, dict):
        raise ObsError(f"trace document must be an object, got "
                       f"{type(document).__name__}")
    events = document.get("traceEvents")
    if not isinstance(events, list) or not events:
        raise ObsError("trace document needs a non-empty 'traceEvents' list")
    for position, event in enumerate(events):
        if not isinstance(event, dict):
            raise ObsError(f"event {position} is not an object")
        for key, types in (("name", str), ("ph", str),
                           ("pid", int), ("tid", int)):
            if not isinstance(event.get(key), types):
                raise ObsError(
                    f"event {position} ('{event.get('name', '?')}') is "
                    f"missing a valid '{key}'"
                )
        if event["ph"] == "X":
            for key in ("ts", "dur"):
                value = event.get(key)
                if not isinstance(value, (int, float)) or value < 0:
                    raise ObsError(
                        f"event {position} ('{event['name']}'): complete "
                        f"events need a non-negative '{key}'"
                    )
        elif event["ph"] == "C":
            ts = event.get("ts")
            if not isinstance(ts, (int, float)) or ts < 0:
                raise ObsError(
                    f"event {position} ('{event['name']}'): counter "
                    "events need a non-negative 'ts'"
                )
            args = event.get("args")
            if not isinstance(args, dict) or not args or not all(
                isinstance(v, (int, float)) for v in args.values()
            ):
                raise ObsError(
                    f"event {position} ('{event['name']}'): counter "
                    "events need numeric series in 'args'"
                )
    if not any(e.get("ph") == "X" for e in events):
        raise ObsError("trace contains no complete ('X') span events")
    return len(events)


def write_chrome_trace(
    spans: Iterable[Span], path: str | Path, counter_samples=None
) -> Path:
    """Export, validate, and write a Chrome trace file."""
    document = to_chrome_trace(spans, counter_samples=counter_samples)
    validate_chrome_trace(document)
    path = Path(path)
    path.write_text(json.dumps(document, indent=1))
    return path


# ----------------------------------------------------------------------
# text tree
# ----------------------------------------------------------------------
def render_tree(spans: Iterable[Span]) -> str:
    """Indented parent/child rendering, one line per span.

    Spans whose parent is unknown (or absent) root their own subtree;
    trees are ordered by start time, children likewise.
    """
    spans = sorted(spans, key=lambda s: s.start_wall)
    by_id = {s.span_id: s for s in spans}
    children: dict[str | None, list[Span]] = {}
    for span in spans:
        parent = span.parent_id if span.parent_id in by_id else None
        children.setdefault(parent, []).append(span)

    lines: list[str] = []

    def emit(span: Span, depth: int) -> None:
        pad = "  " * depth
        extras = ""
        if span.attrs:
            shown = ", ".join(
                f"{k}={v}" for k, v in sorted(span.attrs.items())
            )
            extras = f"  {{{shown}}}"
        lines.append(
            f"{pad}{span.name} [{span.layer}]  "
            f"wall={span.wall_s * 1e3:.2f}ms cpu={span.cpu_s * 1e3:.2f}ms "
            f"io={span.io_ops:,}{extras}"
        )
        for child in children.get(span.span_id, []):
            emit(child, depth + 1)

    for root in children.get(None, []):
        emit(root, 0)
    return "\n".join(lines)
