"""Federated CasJobs: the gridified MaxBCG of Section 4.

The paper's plan: "when the user submits the MaxBCG application, upon
authentication and authorization, the SQL code (about 500 lines) is
deployed on the available Data-Grid nodes hosting the CAS database
system.  Each node will analyze a piece of the sky in parallel and
store the results locally or, depending on the policy, transfer the
final results back to the origin."

:class:`DataGridFederation` implements exactly that flow over multiple
:class:`~repro.casjobs.server.CasJobsService` sites (the paper names
Fermilab, JHU and IUCAA Pune): each site hosts a declination stripe of
the catalog with the duplicated skirt of Figure 6, the *code* — a
:class:`~repro.core.config.MaxBCGConfig`, our 500 lines — travels to
the sites, runs locally, and only the (tiny) result catalogs move.  The
returned report prices the alternative, shipping the galaxies instead,
through the grid transfer model, making "move the query to the data"
quantitative.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.casjobs.queue import JobQueue, JobStatus, QueueClass
from repro.casjobs.scheduler import Scheduler, SchedulerConfig
from repro.casjobs.server import CasJobsService
from repro.cluster.partitioning import Partition, make_partitions
from repro.core.config import MaxBCGConfig
from repro.core.kcorrection import KCorrectionTable
from repro.core.pipeline import MaxBCGPipeline, MaxBCGResult
from repro.core.results import CandidateCatalog, MemberTable
from repro.engine.database import Database
from repro.errors import CasJobsError
from repro.grid.transfer import TransferModel, wan_model
from repro.skyserver.catalog import GalaxyCatalog
from repro.skyserver.regions import RegionBox
from repro.tam.fields import ROW_BYTES

#: Bytes per result row (Candidates/Clusters rows are ~48 bytes).
RESULT_ROW_BYTES = 48


@dataclass
class Site:
    """One federation member: a CasJobs service plus its sky stripe."""

    service: CasJobsService
    partition: Partition
    catalog: GalaxyCatalog


@dataclass
class FederatedRunReport:
    """Outcome of a federated MaxBCG submission."""

    candidates: CandidateCatalog
    clusters: CandidateCatalog
    members: MemberTable
    per_site_elapsed_s: dict[str, float]
    code_bytes_moved: float
    result_bytes_moved: float
    data_bytes_avoided: float
    data_files_avoided: int
    transfer: TransferModel

    @property
    def elapsed_s(self) -> float:
        """Federation wall-clock: sites run concurrently."""
        return max(self.per_site_elapsed_s.values())

    @property
    def code_to_data_seconds(self) -> float:
        """Transfer time actually paid (code out + results back)."""
        return self.transfer.seconds(
            self.code_bytes_moved + self.result_bytes_moved,
            n_files=2 * len(self.per_site_elapsed_s),
        )

    @property
    def data_to_code_seconds(self) -> float:
        """Transfer time the file-based pattern would have paid.

        Priced the way the paper describes the status quo — per-field
        Target/Buffer files fetched from the archive ("hundreds of
        thousands of files"), not one bulk stream.
        """
        return self.transfer.seconds(
            self.data_bytes_avoided, n_files=max(1, self.data_files_avoided)
        )


class DataGridFederation:
    """Autonomous, geographically distributed CasJobs sites."""

    def __init__(
        self,
        kcorr: KCorrectionTable,
        config: MaxBCGConfig,
        transfer: TransferModel | None = None,
    ):
        self.kcorr = kcorr
        self.config = config
        self.transfer = transfer or wan_model()
        self._sites: list[Site] = []

    # ------------------------------------------------------------------
    def deploy_sites(
        self,
        site_names: list[str],
        catalog: GalaxyCatalog,
        target: RegionBox,
    ) -> list[Site]:
        """Stand up one site per name, each hosting its stripe of the sky."""
        if not site_names:
            raise CasJobsError("federation needs at least one site")
        layout = make_partitions(target, self.config.buffer_deg, len(site_names))
        self._sites = []
        for name, partition in zip(site_names, layout.partitions):
            service = CasJobsService(name)
            local = catalog.select_region(partition.imported)
            database = Database(f"cas_{name}")
            database.create_table("galaxy_src", local.as_columns(),
                                  primary_key="objid")
            service.add_context("cas", database)
            self._sites.append(Site(service, partition, local))
        return self._sites

    @property
    def sites(self) -> list[Site]:
        return self._sites

    # ------------------------------------------------------------------
    def _run_site(self, site: Site) -> MaxBCGResult:
        """The deployed 'application': one site's pipeline run."""
        pipeline = MaxBCGPipeline(
            self.kcorr,
            self.config,
            database=Database(f"work_{site.service.site_name}"),
        )
        return pipeline.run(
            site.catalog, site.partition.target, site.partition.buffer
        )

    def submit_maxbcg(
        self,
        username: str = "astronomer",
        scheduler_config: SchedulerConfig | None = None,
    ) -> FederatedRunReport:
        """Run MaxBCG at every site; gather only the result catalogs.

        Submission goes through a federation-level
        :class:`~repro.casjobs.scheduler.Scheduler` — one long-queue job
        per site, drained through a worker pool so autonomous sites run
        concurrently (the paper's "each node will analyze a piece of
        the sky in parallel").  Merging stays in deployment order, so
        the gathered catalogs are identical whatever the pool.
        """
        if not self._sites:
            raise CasJobsError("deploy_sites() first")

        sites_by_name = {s.service.site_name: s for s in self._sites}
        queue = JobQueue()
        scheduler = Scheduler(
            queue,
            executor=lambda job: self._run_site(sites_by_name[job.target]),
            config=scheduler_config
            or SchedulerConfig(pool="threads", max_workers=len(self._sites)),
        )
        jobs = {
            site.service.site_name: scheduler.submit(
                username,
                "EXEC MaxBCG  -- ~500 lines of SQL, deployed to the site",
                site.service.site_name,
                queue_class=QueueClass.LONG,
            )
            for site in self._sites
        }
        try:
            scheduler.run_until_idle()
        finally:
            scheduler.close()

        candidates = CandidateCatalog.empty()
        clusters = CandidateCatalog.empty()
        members = MemberTable.empty()
        per_site: dict[str, float] = {}
        result_bytes = 0.0
        data_bytes = 0.0
        data_files = 0

        for site in self._sites:
            job = jobs[site.service.site_name]
            if job.status is not JobStatus.FINISHED:
                raise CasJobsError(
                    f"site '{site.service.site_name}' job "
                    f"{job.status.value}: {job.error}"
                )
            result: MaxBCGResult = job.result
            candidates = candidates.concat(result.candidates)
            clusters = clusters.concat(result.clusters)
            members = members.concat(result.members)
            per_site[site.service.site_name] = result.total_stats.elapsed_s
            result_bytes += RESULT_ROW_BYTES * (
                len(result.candidates) + len(result.clusters)
            )
            data_bytes += ROW_BYTES * len(site.catalog)
            # the file-based alternative: one Target + one Buffer file
            # per 0.25 deg^2 field of this site's stripe
            n_fields = max(
                1, int(round(site.partition.target.flat_area() / 0.25))
            )
            data_files += 2 * n_fields

        # "about 500 lines" of SQL ship to each site.
        code_bytes = 500 * 60.0 * len(self._sites)
        return FederatedRunReport(
            candidates=candidates.dedup_by_objid().sort_by_objid(),
            clusters=clusters.dedup_by_objid().sort_by_objid(),
            members=members,
            per_site_elapsed_s=per_site,
            code_bytes_moved=code_bytes,
            result_bytes_moved=result_bytes,
            data_bytes_avoided=data_bytes,
            data_files_avoided=data_files,
            transfer=self.transfer,
        )
