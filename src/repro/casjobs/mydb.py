"""MyDB: the per-user server-side database of CasJobs.

"The query output can be stored on the server-side in the user's
personal relational database (MyDB).  Users may upload and download
data to and from their MyDB.  They can correlate data inside MyDB or
with the main database ...  CasJobs allows creating new tables,
indexes, and stored procedures."

A :class:`MyDB` wraps one engine :class:`~repro.engine.database.Database`
with a row quota, upload/download helpers, and cross-database query
support (queries see the user's tables plus read-only views of the
site's shared catalog tables).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.engine.database import Database
from repro.engine.sql.executor import QueryResult
from repro.errors import CasJobsError, QuotaExceededError

#: Default MyDB quota, in rows (the real service used ~500 MB).
DEFAULT_QUOTA_ROWS = 5_000_000


@dataclass
class MyDBInfo:
    owner: str
    tables: list[str]
    rows_used: int
    quota_rows: int


class MyDB:
    """One user's personal database."""

    def __init__(
        self,
        owner: str,
        quota_rows: int = DEFAULT_QUOTA_ROWS,
        engine_config=None,
    ):
        if not owner:
            raise CasJobsError("MyDB owner must be non-empty")
        if quota_rows <= 0:
            raise CasJobsError("quota must be positive")
        self.owner = owner
        self.quota_rows = quota_rows
        self.database = (
            Database(f"mydb_{owner}")
            if engine_config is None
            else Database(f"mydb_{owner}", config=engine_config)
        )

    # ------------------------------------------------------------------
    def rows_used(self) -> int:
        return sum(
            self.database.table(name).row_count
            for name in self.database.table_names()
        )

    def remaining_rows(self) -> int:
        """Quota headroom (never negative)."""
        return max(0, self.quota_rows - self.rows_used())

    def at_quota(self) -> bool:
        return self.rows_used() >= self.quota_rows

    def _check_quota(self, incoming_rows: int, replacing: str | None = None) -> None:
        used = self.rows_used()
        if replacing is not None and self.database.has_table(replacing):
            # replacing a table frees its rows first — a re-spool into
            # the same output table must not be billed twice
            used -= self.database.table(replacing).row_count
        if used + incoming_rows > self.quota_rows:
            raise QuotaExceededError(
                f"MyDB quota exceeded for '{self.owner}': "
                f"{used} + {incoming_rows} > {self.quota_rows}"
            )

    # ------------------------------------------------------------------
    def upload(self, name: str, columns: dict[str, np.ndarray],
               primary_key: str | None = None) -> None:
        """Upload a table into MyDB (quota enforced)."""
        n_rows = int(next(iter(columns.values())).__len__()) if columns else 0
        self._check_quota(n_rows)
        self.database.create_table(name, columns, primary_key=primary_key)

    def download(self, name: str) -> dict[str, np.ndarray]:
        """Download a MyDB table as column arrays."""
        table = self.database.table(name)
        return table.scan()

    def store_result(self, name: str, result: QueryResult) -> None:
        """Persist a query result as a MyDB table (the INTO MyDB path)."""
        self._check_quota(result.row_count, replacing=name)
        if self.database.has_table(name):
            self.database.drop_table(name)
        self.database.create_table(name, dict(result.columns))

    def drop(self, name: str) -> None:
        self.database.drop_table(name)

    def info(self) -> MyDBInfo:
        return MyDBInfo(
            owner=self.owner,
            tables=self.database.table_names(),
            rows_used=self.rows_used(),
            quota_rows=self.quota_rows,
        )
