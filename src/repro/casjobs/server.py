"""The CasJobs service: users, contexts, batch queries, groups, sharing.

Puts the pieces together the way skyserver's CasJobs does: a site hosts
one or more shared *context* databases (the CAS catalogs), every
registered user gets a MyDB, queries are submitted to the batch queue
against a context and can spool their output into MyDB, and users can
form groups to share MyDB tables with each other — "CasJobs provides a
collaborative environment where users can form groups and share data
with others."
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.casjobs.mydb import MyDB
from repro.casjobs.queue import BatchJob, JobQueue, JobStatus, QueueClass
from repro.engine.database import Database
from repro.engine.sql.executor import QueryResult
from repro.errors import CasJobsError


@dataclass
class Group:
    """A sharing group: members can read tables published to the group."""

    name: str
    members: set[str] = field(default_factory=set)
    # (owner, table) pairs published into the group
    shared: set[tuple[str, str]] = field(default_factory=set)


class CasJobsService:
    """One CasJobs site."""

    def __init__(self, site_name: str):
        self.site_name = site_name
        self._contexts: dict[str, Database] = {}
        self._users: dict[str, MyDB] = {}
        self._groups: dict[str, Group] = {}
        self.queue = JobQueue()

    # ------------------------------------------------------------------
    # administration
    # ------------------------------------------------------------------
    def add_context(self, name: str, database: Database) -> None:
        """Host a shared catalog database under a context name."""
        if name.lower() in self._contexts:
            raise CasJobsError(f"context '{name}' already exists")
        self._contexts[name.lower()] = database

    def context(self, name: str) -> Database:
        try:
            return self._contexts[name.lower()]
        except KeyError:
            raise CasJobsError(
                f"site '{self.site_name}' has no context '{name}'"
            ) from None

    def register_user(self, username: str) -> MyDB:
        if username in self._users:
            raise CasJobsError(f"user '{username}' already registered")
        mydb = MyDB(username)
        self._users[username] = mydb
        return mydb

    def mydb(self, username: str) -> MyDB:
        try:
            return self._users[username]
        except KeyError:
            raise CasJobsError(f"unknown user '{username}'") from None

    # ------------------------------------------------------------------
    # query submission
    # ------------------------------------------------------------------
    def submit(
        self,
        username: str,
        query: str,
        context: str = "mydb",
        output_table: str | None = None,
        queue_class: QueueClass = QueueClass.LONG,
    ) -> BatchJob:
        """Queue a query for a user against a context ('mydb' or a catalog)."""
        self.mydb(username)  # authn/z: must be registered
        if context.lower() != "mydb":
            self.context(context)  # must exist
        return self.queue.submit(username, query, context.lower(),
                                 output_table, queue_class)

    def process_queue(self) -> int:
        """Worker loop: execute everything queued (tests call this)."""
        return self.queue.drain(self._execute)

    def _execute(self, job: BatchJob) -> QueryResult:
        database = (
            self.mydb(job.owner).database
            if job.target == "mydb"
            else self.context(job.target)
        )
        result = database.sql(job.query)
        if job.output_table is not None:
            self.mydb(job.owner).store_result(job.output_table, result)
        return result

    def fetch(self, username: str, job_id: int) -> QueryResult:
        """Fetch a finished job's result (owner-only)."""
        job = self.queue.get(job_id)
        if job.owner != username:
            raise CasJobsError("jobs are private to their owner")
        if job.status is not JobStatus.FINISHED:
            raise CasJobsError(
                f"job {job_id} is {job.status.value}"
                + (f": {job.error}" if job.error else "")
            )
        assert isinstance(job.result, QueryResult)
        return job.result

    # ------------------------------------------------------------------
    # groups and sharing
    # ------------------------------------------------------------------
    def create_group(self, name: str, creator: str) -> Group:
        self.mydb(creator)
        if name in self._groups:
            raise CasJobsError(f"group '{name}' already exists")
        group = Group(name=name, members={creator})
        self._groups[name] = group
        return group

    def join_group(self, name: str, username: str) -> None:
        self.mydb(username)
        self._group(name).members.add(username)

    def _group(self, name: str) -> Group:
        try:
            return self._groups[name]
        except KeyError:
            raise CasJobsError(f"unknown group '{name}'") from None

    def share_table(self, owner: str, table: str, group_name: str) -> None:
        """Publish a MyDB table to a group."""
        group = self._group(group_name)
        if owner not in group.members:
            raise CasJobsError(f"'{owner}' is not a member of '{group_name}'")
        self.mydb(owner).database.table(table)  # must exist
        group.shared.add((owner, table.lower()))

    def read_shared(
        self, reader: str, group_name: str, owner: str, table: str
    ) -> dict[str, np.ndarray]:
        """Read a table another member shared with the group."""
        group = self._group(group_name)
        if reader not in group.members:
            raise CasJobsError(f"'{reader}' is not a member of '{group_name}'")
        if (owner, table.lower()) not in group.shared:
            raise CasJobsError(
                f"'{owner}.{table}' is not shared with '{group_name}'"
            )
        return self.mydb(owner).download(table)
