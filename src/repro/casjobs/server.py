"""The CasJobs service: users, contexts, batch queries, groups, sharing.

Puts the pieces together the way skyserver's CasJobs does: a site hosts
one or more shared *context* databases (the CAS catalogs), every
registered user gets a MyDB, queries are submitted to the batch queue
against a context and can spool their output into MyDB, and users can
form groups to share MyDB tables with each other — "CasJobs provides a
collaborative environment where users can form groups and share data
with others."

Execution is owned by a :class:`~repro.casjobs.scheduler.Scheduler`:
quick/long queue classes drain weighted-fair through a worker pool,
each user is capped to ``per_user_limit`` concurrent jobs, and past
``high_water`` pending jobs new submissions are shed.  Queries run on
pool workers; spooling results into MyDB (and any other mutation of
shared service state) happens in the dispatcher thread via the
scheduler's finalizer, so MyDBs are written from exactly one thread.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.casjobs.mydb import MyDB
from repro.casjobs.queue import BatchJob, JobQueue, JobStatus, QueueClass
from repro.casjobs.scheduler import Scheduler, SchedulerConfig
from repro.engine.database import Database
from repro.engine.sql.executor import QueryResult
from repro.errors import CasJobsError, QuotaExceededError


@dataclass
class Group:
    """A sharing group: members can read tables published to the group."""

    name: str
    members: set[str] = field(default_factory=set)
    # (owner, table) pairs published into the group
    shared: set[tuple[str, str]] = field(default_factory=set)


class CasJobsService:
    """One CasJobs site.

    ``scheduler_config`` selects the execution policy; the default is a
    small thread pool with quick-over-long weighting.  Tests that need
    strictly deterministic ordering pass
    ``SchedulerConfig(pool="sequential", max_workers=1)``.
    """

    def __init__(
        self,
        site_name: str,
        scheduler_config: SchedulerConfig | None = None,
        engine_config=None,
    ):
        self.site_name = site_name
        #: :class:`~repro.engine.config.EngineConfig` handed to every
        #: user's MyDB (contexts are built by the caller and keep their
        #: own config).  None = engine defaults.
        self.engine_config = engine_config
        self._contexts: dict[str, Database] = {}
        self._users: dict[str, MyDB] = {}
        self._groups: dict[str, Group] = {}
        self.queue = JobQueue()
        self.scheduler = Scheduler(
            self.queue,
            executor=self._run_query,
            config=scheduler_config,
            finalizer=self._spool,
        )

    # ------------------------------------------------------------------
    # administration
    # ------------------------------------------------------------------
    def add_context(self, name: str, database: Database) -> None:
        """Host a shared catalog database under a context name."""
        if name.lower() in self._contexts:
            raise CasJobsError(f"context '{name}' already exists")
        self._contexts[name.lower()] = database

    def context(self, name: str) -> Database:
        try:
            return self._contexts[name.lower()]
        except KeyError:
            raise CasJobsError(
                f"site '{self.site_name}' has no context '{name}'"
            ) from None

    def register_user(self, username: str, quota_rows: int | None = None) -> MyDB:
        if username in self._users:
            raise CasJobsError(f"user '{username}' already registered")
        mydb = (
            MyDB(username, engine_config=self.engine_config)
            if quota_rows is None
            else MyDB(username, quota_rows, engine_config=self.engine_config)
        )
        self._users[username] = mydb
        return mydb

    def mydb(self, username: str) -> MyDB:
        try:
            return self._users[username]
        except KeyError:
            raise CasJobsError(f"unknown user '{username}'") from None

    # ------------------------------------------------------------------
    # query submission
    # ------------------------------------------------------------------
    def submit(
        self,
        username: str,
        query: str,
        context: str = "mydb",
        output_table: str | None = None,
        queue_class: QueueClass = QueueClass.LONG,
    ) -> BatchJob:
        """Queue a query for a user against a context ('mydb' or a catalog).

        Admission control happens here, before a job exists: the
        scheduler sheds the submission past high water
        (:class:`~repro.errors.QueueFullError`), and a job that wants
        to spool into MyDB is refused while the user's MyDB is already
        at quota (:class:`~repro.errors.QuotaExceededError`) — no point
        queuing work whose output cannot land.
        """
        mydb = self.mydb(username)  # authn/z: must be registered
        if context.lower() != "mydb":
            self.context(context)  # must exist
        if output_table is not None and mydb.at_quota():
            raise QuotaExceededError(
                f"MyDB for '{username}' is at quota "
                f"({mydb.rows_used()}/{mydb.quota_rows} rows); "
                "free space before spooling more results"
            )
        return self.scheduler.submit(
            username, query, context.lower(), output_table, queue_class
        )

    def process_queue(self, timeout_s: float | None = None) -> int:
        """Worker loop: execute everything queued; returns the count.

        Blocks the calling thread, pumping the scheduler until idle —
        jobs still run on the scheduler's pool, so a thread-pool service
        executes them concurrently even through this entry point.
        """
        return self.scheduler.run_until_idle(timeout_s=timeout_s)

    def serve(self) -> None:
        """Start serving in the background (dispatcher thread)."""
        self.scheduler.start()

    def shutdown(self, drain: bool = True, timeout_s: float | None = None) -> None:
        """Stop serving; optionally drain the queue first."""
        if self.scheduler.serving:
            self.scheduler.stop(drain=drain, timeout_s=timeout_s)
        elif drain:
            self.scheduler.run_until_idle(timeout_s=timeout_s)

    def _run_query(self, job: BatchJob) -> QueryResult:
        """Execute the query (pool worker thread; no shared-state writes).

        The execution is attributed to the job's owner so Query Store
        runtime intervals break down per user (context-local, so
        concurrent workers attribute correctly).
        """
        from repro.obs.querystore import attribution

        database = (
            self.mydb(job.owner).database
            if job.target == "mydb"
            else self.context(job.target)
        )
        with attribution(job.owner):
            return database.sql(job.query)

    def _spool(self, job: BatchJob, result: QueryResult) -> QueryResult:
        """Finalize a successful job (dispatcher thread): INTO MyDB."""
        if job.output_table is not None:
            self.mydb(job.owner).store_result(job.output_table, result)
        return result

    def fetch(self, username: str, job_id: int) -> QueryResult:
        """Fetch a finished job's result (owner-only)."""
        job = self.queue.get(job_id)
        if job.owner != username:
            raise CasJobsError("jobs are private to their owner")
        if job.status is not JobStatus.FINISHED:
            raise CasJobsError(
                f"job {job_id} is {job.status.value}"
                + (f": {job.error}" if job.error else "")
            )
        assert isinstance(job.result, QueryResult)
        return job.result

    def status(self) -> dict[str, object]:
        """Site snapshot: scheduler counters plus registered population."""
        return {
            "site": self.site_name,
            "users": len(self._users),
            "contexts": sorted(self._contexts),
            **self.scheduler.status(),
        }

    # ------------------------------------------------------------------
    # groups and sharing
    # ------------------------------------------------------------------
    def create_group(self, name: str, creator: str) -> Group:
        self.mydb(creator)
        if name in self._groups:
            raise CasJobsError(f"group '{name}' already exists")
        group = Group(name=name, members={creator})
        self._groups[name] = group
        return group

    def join_group(self, name: str, username: str) -> None:
        self.mydb(username)
        self._group(name).members.add(username)

    def _group(self, name: str) -> Group:
        try:
            return self._groups[name]
        except KeyError:
            raise CasJobsError(f"unknown group '{name}'") from None

    def share_table(self, owner: str, table: str, group_name: str) -> None:
        """Publish a MyDB table to a group."""
        group = self._group(group_name)
        if owner not in group.members:
            raise CasJobsError(f"'{owner}' is not a member of '{group_name}'")
        self.mydb(owner).database.table(table)  # must exist
        group.shared.add((owner, table.lower()))

    def read_shared(
        self, reader: str, group_name: str, owner: str, table: str
    ) -> dict[str, np.ndarray]:
        """Read a table another member shared with the group."""
        group = self._group(group_name)
        if reader not in group.members:
            raise CasJobsError(f"'{reader}' is not a member of '{group_name}'")
        if (owner, table.lower()) not in group.shared:
            raise CasJobsError(
                f"'{owner}.{table}' is not shared with '{group_name}'"
            )
        return self.mydb(owner).download(table)
