"""The CasJobs batch queue: long-running queries with job lifecycle.

CasJobs "lets users submit long-running SQL queries" — the defining
feature versus the 60-second web portal.  :class:`JobQueue` provides
the lifecycle: submitted → executing → finished/failed, with timestamps,
per-user listing, cancellation of queued jobs, and a drain loop that a
service worker (or a test) pumps.
"""

from __future__ import annotations

import enum
import itertools
import time
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import CasJobsError


class JobStatus(enum.Enum):
    SUBMITTED = "submitted"
    EXECUTING = "executing"
    FINISHED = "finished"
    FAILED = "failed"
    CANCELLED = "cancelled"

    @property
    def is_terminal(self) -> bool:
        return self in (JobStatus.FINISHED, JobStatus.FAILED, JobStatus.CANCELLED)


class QueueClass(enum.Enum):
    """CasJobs queue classes: interactive-grade vs long-running.

    The real service routes sub-minute queries through a "quick" queue
    with a hard time budget and everything else through the long queue —
    "CasJobs ... lets users submit long-running SQL queries" precisely
    because the web portal's quick path cannot.
    """

    QUICK = "quick"
    LONG = "long"

    @property
    def budget_seconds(self) -> float:
        return 60.0 if self is QueueClass.QUICK else 8.0 * 3600.0


@dataclass
class BatchJob:
    """One queued query."""

    job_id: int
    owner: str
    query: str
    target: str  # context database, e.g. "dr1" or "mydb"
    output_table: str | None = None
    queue_class: QueueClass = QueueClass.LONG
    status: JobStatus = JobStatus.SUBMITTED
    submitted_at: float = field(default_factory=time.time)
    started_at: float | None = None
    finished_at: float | None = None
    error: str | None = None
    result: object | None = None

    @property
    def queue_seconds(self) -> float | None:
        if self.started_at is None:
            return None
        return self.started_at - self.submitted_at

    @property
    def run_seconds(self) -> float | None:
        if self.started_at is None or self.finished_at is None:
            return None
        return self.finished_at - self.started_at


class JobQueue:
    """FIFO batch queue with per-user views."""

    def __init__(self):
        self._jobs: dict[int, BatchJob] = {}
        self._pending: list[int] = []
        self._ids = itertools.count(1)

    # ------------------------------------------------------------------
    def submit(self, owner: str, query: str, target: str,
               output_table: str | None = None,
               queue_class: QueueClass = QueueClass.LONG) -> BatchJob:
        job = BatchJob(
            job_id=next(self._ids),
            owner=owner,
            query=query,
            target=target,
            output_table=output_table,
            queue_class=queue_class,
        )
        self._jobs[job.job_id] = job
        self._pending.append(job.job_id)
        return job

    def get(self, job_id: int) -> BatchJob:
        try:
            return self._jobs[job_id]
        except KeyError:
            raise CasJobsError(f"unknown job {job_id}") from None

    def jobs_of(self, owner: str) -> list[BatchJob]:
        return [j for j in self._jobs.values() if j.owner == owner]

    def pending_count(self) -> int:
        return len(self._pending)

    def cancel(self, job_id: int) -> BatchJob:
        """Cancel a job that has not started executing."""
        job = self.get(job_id)
        if job.status is not JobStatus.SUBMITTED:
            raise CasJobsError(
                f"job {job_id} is {job.status.value}; only queued jobs cancel"
            )
        job.status = JobStatus.CANCELLED
        job.finished_at = time.time()
        self._pending.remove(job_id)
        return job

    # ------------------------------------------------------------------
    def run_next(self, executor: Callable[[BatchJob], object]) -> BatchJob | None:
        """Execute the oldest queued job; returns it, or None if idle.

        ``executor`` receives the job and returns its result; exceptions
        mark the job FAILED with the message preserved.
        """
        while self._pending:
            job_id = self._pending.pop(0)
            job = self._jobs[job_id]
            if job.status is not JobStatus.SUBMITTED:
                continue
            job.status = JobStatus.EXECUTING
            job.started_at = time.time()
            try:
                job.result = executor(job)
                job.status = JobStatus.FINISHED
            except Exception as exc:  # noqa: BLE001 - job isolation boundary
                job.status = JobStatus.FAILED
                job.error = f"{type(exc).__name__}: {exc}"
            job.finished_at = time.time()
            if (
                job.status is JobStatus.FINISHED
                and job.run_seconds is not None
                and job.run_seconds > job.queue_class.budget_seconds
            ):
                # the quick queue kills over-budget queries; the result
                # is discarded and the user told to resubmit as LONG
                job.status = JobStatus.FAILED
                job.result = None
                job.error = (
                    f"exceeded the {job.queue_class.value} queue budget "
                    f"({job.queue_class.budget_seconds:.0f}s); resubmit "
                    "to the long queue"
                )
            return job
        return None

    def drain(self, executor: Callable[[BatchJob], object]) -> int:
        """Run every queued job; returns how many were executed."""
        executed = 0
        while self.run_next(executor) is not None:
            executed += 1
        return executed
