"""The CasJobs batch queue: long-running queries with job lifecycle.

CasJobs "lets users submit long-running SQL queries" — the defining
feature versus the 60-second web portal.  :class:`JobQueue` provides
the lifecycle: submitted → executing → finished/failed, with timestamps,
per-user listing, cancellation of queued jobs, and a drain loop that a
service worker (or a test) pumps.

The queue is safe to share between a dispatcher and worker threads:
every state transition happens under one internal lock, through the
explicit transition API (:meth:`JobQueue.take`, :meth:`JobQueue.finish`,
:meth:`JobQueue.fail`, :meth:`JobQueue.requeue`).  Jobs are held in one
pending deque *per queue class* so a scheduler can drain the quick and
long queues at different rates — the weighted-fair policy of
:class:`~repro.casjobs.scheduler.Scheduler`.
"""

from __future__ import annotations

import enum
import itertools
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import CasJobsError


class JobStatus(enum.Enum):
    SUBMITTED = "submitted"
    EXECUTING = "executing"
    FINISHED = "finished"
    FAILED = "failed"
    CANCELLED = "cancelled"

    @property
    def is_terminal(self) -> bool:
        return self in (JobStatus.FINISHED, JobStatus.FAILED, JobStatus.CANCELLED)


class QueueClass(enum.Enum):
    """CasJobs queue classes: interactive-grade vs long-running.

    The real service routes sub-minute queries through a "quick" queue
    with a hard time budget and everything else through the long queue —
    "CasJobs ... lets users submit long-running SQL queries" precisely
    because the web portal's quick path cannot.
    """

    QUICK = "quick"
    LONG = "long"

    @property
    def budget_seconds(self) -> float:
        return 60.0 if self is QueueClass.QUICK else 8.0 * 3600.0


@dataclass
class BatchJob:
    """One queued query."""

    job_id: int
    owner: str
    query: str
    target: str  # context database, e.g. "dr1" or "mydb"
    output_table: str | None = None
    queue_class: QueueClass = QueueClass.LONG
    status: JobStatus = JobStatus.SUBMITTED
    submitted_at: float = field(default_factory=time.time)
    queued_at: float | None = None  # last (re)entry into the pending queue
    started_at: float | None = None
    finished_at: float | None = None
    error: str | None = None
    result: object | None = None
    attempts: int = 0  # execution attempts consumed (retries included)

    def __post_init__(self) -> None:
        if self.queued_at is None:
            self.queued_at = self.submitted_at

    @property
    def queue_seconds(self) -> float | None:
        """Wait of the *latest* attempt: last enqueue → start."""
        if self.started_at is None:
            return None
        return self.started_at - (self.queued_at or self.submitted_at)

    @property
    def run_seconds(self) -> float | None:
        """Execution time of the latest attempt.

        For a job still EXECUTING this is the time it has been running
        *so far* (it used to be None, which made every in-flight job
        look instantaneous to monitoring); None only if it never
        started.
        """
        if self.started_at is None:
            return None
        if self.finished_at is None:
            return time.time() - self.started_at
        return self.finished_at - self.started_at


class JobQueue:
    """FIFO batch queue (per queue class) with per-user views.

    Thread-safe: all transitions run under one lock, so a dispatcher
    thread and any number of completion callbacks can share it.
    """

    def __init__(self):
        self._jobs: dict[int, BatchJob] = {}
        self._pending: dict[QueueClass, deque[int]] = {
            cls: deque() for cls in QueueClass
        }
        self._ids = itertools.count(1)
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    def submit(self, owner: str, query: str, target: str,
               output_table: str | None = None,
               queue_class: QueueClass = QueueClass.LONG) -> BatchJob:
        with self._lock:
            job = BatchJob(
                job_id=next(self._ids),
                owner=owner,
                query=query,
                target=target,
                output_table=output_table,
                queue_class=queue_class,
            )
            self._jobs[job.job_id] = job
            self._pending[queue_class].append(job.job_id)
            return job

    def get(self, job_id: int) -> BatchJob:
        with self._lock:
            try:
                return self._jobs[job_id]
            except KeyError:
                raise CasJobsError(f"unknown job {job_id}") from None

    def jobs(self) -> list[BatchJob]:
        """All jobs ever submitted, in id order."""
        with self._lock:
            return [self._jobs[k] for k in sorted(self._jobs)]

    def jobs_of(self, owner: str) -> list[BatchJob]:
        with self._lock:
            return [j for j in self._jobs.values() if j.owner == owner]

    def pending_count(self, queue_class: QueueClass | None = None) -> int:
        with self._lock:
            if queue_class is not None:
                return len(self._pending[queue_class])
            return sum(len(d) for d in self._pending.values())

    def executing_count(self, owner: str | None = None) -> int:
        with self._lock:
            return sum(
                1
                for j in self._jobs.values()
                if j.status is JobStatus.EXECUTING
                and (owner is None or j.owner == owner)
            )

    def cancel(self, job_id: int) -> BatchJob:
        """Cancel a job that has not started executing."""
        with self._lock:
            job = self.get(job_id)
            if job.status is not JobStatus.SUBMITTED:
                raise CasJobsError(
                    f"job {job_id} is {job.status.value}; only queued jobs cancel"
                )
            job.status = JobStatus.CANCELLED
            job.finished_at = time.time()
            self._pending[job.queue_class].remove(job_id)
            return job

    # ------------------------------------------------------------------
    # explicit transitions (the scheduler's API)
    # ------------------------------------------------------------------
    def take(
        self,
        queue_class: QueueClass | None = None,
        eligible: Callable[[BatchJob], bool] | None = None,
    ) -> BatchJob | None:
        """Atomically claim the oldest eligible queued job for execution.

        Scans the class's pending deque in FIFO order; jobs that fail
        ``eligible`` (e.g. their owner is at the concurrency limit) are
        left in place, preserving their position.  The claimed job moves
        SUBMITTED → EXECUTING with ``started_at`` stamped and its
        attempt counter bumped.  Returns None when nothing is eligible.
        """
        with self._lock:
            classes = [queue_class] if queue_class is not None else list(QueueClass)
            for cls in classes:
                pending = self._pending[cls]
                for position, job_id in enumerate(pending):
                    job = self._jobs[job_id]
                    if job.status is not JobStatus.SUBMITTED:
                        continue  # cancelled under us; swept below
                    if eligible is not None and not eligible(job):
                        continue
                    del pending[position]
                    job.status = JobStatus.EXECUTING
                    job.started_at = time.time()
                    job.attempts += 1
                    return job
                # sweep ids whose jobs are no longer SUBMITTED
                stale = [
                    jid for jid in pending
                    if self._jobs[jid].status is not JobStatus.SUBMITTED
                ]
                for jid in stale:
                    pending.remove(jid)
            return None

    def _expect_executing(self, job_id: int) -> BatchJob:
        job = self.get(job_id)
        if job.status is not JobStatus.EXECUTING:
            raise CasJobsError(
                f"job {job_id} is {job.status.value}, not executing"
            )
        return job

    def finish(self, job_id: int, result: object) -> BatchJob:
        """EXECUTING → FINISHED, enforcing the queue-class time budget.

        A quick-queue job that ran past its budget is *failed*, its
        result discarded, and the user told to resubmit long — the
        quick queue's contract is latency, not best effort.
        """
        with self._lock:
            job = self._expect_executing(job_id)
            job.finished_at = time.time()
            job.result = result
            job.status = JobStatus.FINISHED
            run = job.finished_at - (job.started_at or job.finished_at)
            if run > job.queue_class.budget_seconds:
                job.status = JobStatus.FAILED
                job.result = None
                job.error = (
                    f"exceeded the {job.queue_class.value} queue budget "
                    f"({job.queue_class.budget_seconds:.0f}s); resubmit "
                    "to the long queue"
                )
            return job

    def fail(self, job_id: int, error: str) -> BatchJob:
        """EXECUTING → FAILED with the error message preserved."""
        with self._lock:
            job = self._expect_executing(job_id)
            job.status = JobStatus.FAILED
            job.error = error
            job.result = None
            job.finished_at = time.time()
            return job

    def requeue(self, job_id: int, error: str) -> BatchJob:
        """EXECUTING → SUBMITTED: put a timed-out/failed attempt back.

        The job re-enters the *back* of its class queue (a retry must
        not jump ahead of work that never misbehaved).  Timestamps of
        the failed attempt are reset so ``queue_seconds``/``run_seconds``
        describe the latest attempt; ``attempts`` and ``error`` keep the
        history visible.
        """
        with self._lock:
            job = self._expect_executing(job_id)
            job.status = JobStatus.SUBMITTED
            job.error = error
            job.result = None
            job.started_at = None
            job.finished_at = None
            job.queued_at = time.time()
            self._pending[job.queue_class].append(job_id)
            return job

    # ------------------------------------------------------------------
    def run_next(self, executor: Callable[[BatchJob], object]) -> BatchJob | None:
        """Execute the oldest queued job inline; returns it, or None if idle.

        ``executor`` receives the job and returns its result; exceptions
        mark the job FAILED with the message preserved.  This is the
        single-worker path; concurrent service use goes through
        :class:`~repro.casjobs.scheduler.Scheduler`.
        """
        job = self.take()
        if job is None:
            return None
        try:
            result = executor(job)
        except Exception as exc:  # noqa: BLE001 - job isolation boundary
            return self.fail(job.job_id, f"{type(exc).__name__}: {exc}")
        return self.finish(job.job_id, result)

    def drain(self, executor: Callable[[BatchJob], object]) -> int:
        """Run every queued job; returns how many were executed."""
        executed = 0
        while self.run_next(executor) is not None:
            executed += 1
        return executed
