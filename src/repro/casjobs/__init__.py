"""CasJobs: batch queries, MyDB, groups, and the federated data grid."""

from repro.casjobs.federation import DataGridFederation, FederatedRunReport
from repro.casjobs.mydb import MyDB
from repro.casjobs.queue import BatchJob, JobQueue, JobStatus, QueueClass
from repro.casjobs.server import CasJobsService, Group

__all__ = [
    "BatchJob",
    "CasJobsService",
    "DataGridFederation",
    "FederatedRunReport",
    "Group",
    "JobQueue",
    "JobStatus",
    "MyDB",
    "QueueClass",
]
