"""CasJobs: batch queries, MyDB, groups, scheduler, and the data grid."""

from repro.casjobs.federation import DataGridFederation, FederatedRunReport
from repro.casjobs.mydb import MyDB
from repro.casjobs.queue import BatchJob, JobQueue, JobStatus, QueueClass
from repro.casjobs.scheduler import (
    DeadLetter,
    Scheduler,
    SchedulerConfig,
    SchedulerStats,
)
from repro.casjobs.server import CasJobsService, Group

__all__ = [
    "BatchJob",
    "CasJobsService",
    "DataGridFederation",
    "DeadLetter",
    "FederatedRunReport",
    "Group",
    "JobQueue",
    "JobStatus",
    "MyDB",
    "QueueClass",
    "Scheduler",
    "SchedulerConfig",
    "SchedulerStats",
]
