"""The CasJobs scheduler: concurrent, admission-controlled job service.

The paper's CasJobs is a *multi-user batch service*: quick and long
queue classes, per-user MyDBs, many users submitting concurrently.
:class:`~repro.casjobs.queue.JobQueue` holds the jobs;
this module is the policy engine that drains it through the cluster
layer's pluggable :class:`~repro.cluster.backends.JobPool` workers:

* **weighted-fair dispatch** across queue classes — the quick queue
  gets ``quick_weight`` dispatch slots for every ``long_weight`` the
  long queue gets, so sub-minute queries do not starve behind
  multi-hour scans (and vice versa: the rotation is work-conserving,
  an idle class donates its slots);
* **per-user concurrency limits** — one user flooding the service
  cannot occupy every worker; jobs over the limit stay queued without
  losing their FIFO position;
* **admission control / load shedding** — past the ``high_water``
  pending depth new submissions are refused with
  :class:`~repro.errors.QueueFullError` instead of growing the backlog
  without bound;
* **per-attempt timeouts with bounded retry and dead-lettering** — a
  job attempt that exceeds its budget is abandoned and requeued (with
  exponential backoff) up to ``max_retries`` times, then failed and
  recorded on the dead-letter list with its full attempt history.

Execution and *finalization* are deliberately split: the executor runs
on pool workers (threads, or inline for deterministic runs), while the
optional ``finalizer`` — e.g. spooling a result into the owner's MyDB —
always runs in the dispatcher's thread, so shared service state is
mutated from exactly one thread no matter how many workers run.
"""

from __future__ import annotations

import threading
import time
from collections import Counter
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.casjobs.queue import BatchJob, JobQueue, JobStatus, QueueClass
from repro.cluster.backends import JobPool, resolve_job_pool
from repro.errors import CasJobsError, ConfigError, QueueFullError
from repro.obs.metrics import get_metrics
from repro.obs.trace import activate, enabled, finish_span, span, start_span

#: Executor signature: runs the job, returns its result (worker thread).
JobExecutor = Callable[[BatchJob], object]

#: Finalizer signature: post-processes a successful result in the
#: dispatcher thread; its return value becomes the job's result.
JobFinalizer = Callable[[BatchJob, object], object]


def _traced_execute(executor: JobExecutor, ctx, attempt: int, job: BatchJob):
    """Worker-side wrapper: run one attempt inside a ``scheduler.attempt``
    span parented under the job's open ``casjobs.job`` span.

    Module-level (not a closure) so it survives pickling into process
    pools; pool threads need the explicit :func:`activate` because
    contextvars do not flow into pool workers.
    """
    with activate(ctx), span(
        "scheduler.attempt",
        layer="casjobs",
        attrs={"job_id": job.job_id, "attempt": attempt},
    ):
        return executor(job)


@dataclass
class SchedulerConfig:
    """Policy knobs for one :class:`Scheduler`."""

    pool: str | JobPool = "threads"  # "sequential" | "threads" | instance
    max_workers: int = 4
    quick_weight: int = 3  # quick-queue dispatch slots per rotation
    long_weight: int = 1  # long-queue dispatch slots per rotation
    per_user_limit: int = 2  # max concurrently executing jobs per user
    high_water: int | None = None  # pending depth that sheds new load
    timeout_s: float | None = None  # per-attempt cap; None = class budget
    max_retries: int = 1  # timeout retries before dead-lettering
    retry_backoff_s: float = 0.0  # base backoff; doubles per retry
    poll_s: float = 0.002  # dispatcher sleep when nothing progressed

    def __post_init__(self) -> None:
        if self.max_workers <= 0:
            raise ConfigError(
                f"max_workers must be positive, got {self.max_workers}"
            )
        if self.quick_weight <= 0 or self.long_weight <= 0:
            raise ConfigError("queue-class weights must be positive")
        if self.per_user_limit <= 0:
            raise ConfigError(
                f"per_user_limit must be positive, got {self.per_user_limit}"
            )
        if self.high_water is not None and self.high_water <= 0:
            raise ConfigError(
                f"high_water must be positive, got {self.high_water}"
            )
        if self.max_retries < 0:
            raise ConfigError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )

    def attempt_timeout(self, job: BatchJob) -> float:
        """Seconds one attempt of this job may run."""
        if self.timeout_s is not None:
            return self.timeout_s
        return job.queue_class.budget_seconds


@dataclass
class DeadLetter:
    """A job the scheduler gave up on, with why."""

    job_id: int
    owner: str
    queue_class: QueueClass
    reason: str
    attempts: int


@dataclass
class SchedulerStats:
    """Counters and per-class latency samples for one scheduler."""

    submitted: int = 0
    shed: int = 0
    dispatched: int = 0
    finished: int = 0
    failed: int = 0
    timeouts: int = 0
    retries: int = 0
    dead_lettered: int = 0
    wait_s: dict[QueueClass, list[float]] = field(
        default_factory=lambda: {cls: [] for cls in QueueClass}
    )
    run_s: dict[QueueClass, list[float]] = field(
        default_factory=lambda: {cls: [] for cls in QueueClass}
    )

    @property
    def completed(self) -> int:
        """Jobs that reached a terminal state under this scheduler."""
        return self.finished + self.failed

    @staticmethod
    def _percentile(samples: list[float], q: float) -> float:
        if not samples:
            return 0.0
        return float(np.percentile(np.asarray(samples), q))

    def p50_wait(self, cls: QueueClass) -> float:
        return self._percentile(self.wait_s[cls], 50)

    def p95_wait(self, cls: QueueClass) -> float:
        return self._percentile(self.wait_s[cls], 95)

    def p50_run(self, cls: QueueClass) -> float:
        return self._percentile(self.run_s[cls], 50)

    def p95_run(self, cls: QueueClass) -> float:
        return self._percentile(self.run_s[cls], 95)

    def summary(self) -> dict[str, float]:
        out: dict[str, float] = {
            "submitted": self.submitted,
            "shed": self.shed,
            "dispatched": self.dispatched,
            "finished": self.finished,
            "failed": self.failed,
            "timeouts": self.timeouts,
            "retries": self.retries,
            "dead_lettered": self.dead_lettered,
        }
        for cls in QueueClass:
            out[f"{cls.value}_p50_wait_s"] = self.p50_wait(cls)
            out[f"{cls.value}_p95_wait_s"] = self.p95_wait(cls)
        return out


@dataclass
class _Running:
    """One in-flight attempt tracked by the dispatcher."""

    job: BatchJob
    future: object
    deadline: float  # monotonic time the attempt times out


class Scheduler:
    """Drains a :class:`JobQueue` through a worker pool under policy.

    Single-dispatcher model: all queue transitions, dead-lettering and
    finalization happen in whichever thread calls :meth:`pump` (or the
    background thread :meth:`start` creates) — workers only ever run
    the executor.  That keeps every shared-state mutation serialized
    while queries themselves run concurrently.
    """

    def __init__(
        self,
        queue: JobQueue,
        executor: JobExecutor,
        config: SchedulerConfig | None = None,
        finalizer: JobFinalizer | None = None,
    ):
        self.queue = queue
        self.executor = executor
        self.config = config or SchedulerConfig()
        self.finalizer = finalizer
        self.pool = resolve_job_pool(self.config.pool, self.config.max_workers)
        self.stats = SchedulerStats()
        self.dead_letters: list[DeadLetter] = []
        self._running: dict[int, _Running] = {}
        self._job_spans: dict[int, object] = {}  # open casjobs.job spans
        self._executing_per_user: Counter[str] = Counter()
        self._not_before: dict[int, float] = {}  # backoff gates (monotonic)
        self._rotation = [QueueClass.QUICK] * self.config.quick_weight + [
            QueueClass.LONG
        ] * self.config.long_weight
        self._rr = 0  # rotation cursor
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()
        self._pump_lock = threading.RLock()  # one dispatcher at a time

    # ------------------------------------------------------------------
    # admission
    # ------------------------------------------------------------------
    def admit(self) -> None:
        """Refuse new work past high water (load shedding).

        Raises :class:`QueueFullError`; callers should surface the
        refusal to the user rather than retry immediately.
        """
        high_water = self.config.high_water
        if high_water is None:
            return
        depth = self.queue.pending_count()
        if depth >= high_water:
            self.stats.shed += 1
            get_metrics().counter("casjobs.shed").inc()
            raise QueueFullError(
                f"queue depth {depth} at/above high water {high_water}; "
                "submission shed — retry later",
                depth=depth,
                high_water=high_water,
            )

    def submit(
        self,
        owner: str,
        query: str,
        target: str,
        output_table: str | None = None,
        queue_class: QueueClass = QueueClass.LONG,
    ) -> BatchJob:
        """Admission-checked submit into the underlying queue."""
        self.admit()
        job = self.queue.submit(owner, query, target, output_table, queue_class)
        self.stats.submitted += 1
        get_metrics().counter("casjobs.submitted").inc()
        if enabled():
            # The job span stays open across dispatcher passes (queue
            # wait included) and closes at the job's terminal state.
            self._job_spans[job.job_id] = start_span(
                "casjobs.job",
                layer="casjobs",
                attrs={"job_id": job.job_id, "owner": owner,
                       "class": queue_class.value},
            )
        return job

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def _eligible(self, job: BatchJob) -> bool:
        if (
            self._executing_per_user[job.owner]
            >= self.config.per_user_limit
        ):
            return False
        not_before = self._not_before.get(job.job_id)
        return not_before is None or not_before <= time.monotonic()

    def _take_weighted(self) -> BatchJob | None:
        """Claim the next job by weighted-fair rotation over classes.

        The rotation visits QUICK ``quick_weight`` times per
        ``long_weight`` LONG visits; a class with nothing eligible
        donates its slot to the other (work-conserving), so the weights
        shape *contention*, not utilization.
        """
        for step in range(len(self._rotation)):
            cls = self._rotation[(self._rr + step) % len(self._rotation)]
            job = self.queue.take(cls, eligible=self._eligible)
            if job is None:
                continue
            self._rr = (self._rr + step + 1) % len(self._rotation)
            return job
        return None

    def _dispatch(self) -> int:
        dispatched = 0
        while len(self._running) < self.config.max_workers:
            job = self._take_weighted()
            if job is None:
                break
            self._not_before.pop(job.job_id, None)
            self._executing_per_user[job.owner] += 1
            deadline = time.monotonic() + self.config.attempt_timeout(job)
            job_span = self._job_spans.get(job.job_id)
            if job_span is not None:
                future = self.pool.submit(
                    _traced_execute, self.executor, job_span.context(),
                    job.attempts, job,
                )
            else:
                future = self.pool.submit(self.executor, job)
            self._running[job.job_id] = _Running(job, future, deadline)
            self.stats.dispatched += 1
            get_metrics().counter("casjobs.dispatched").inc()
            dispatched += 1
        return dispatched

    # ------------------------------------------------------------------
    # completion / timeout handling
    # ------------------------------------------------------------------
    def _record_latency(self, job: BatchJob) -> None:
        metrics = get_metrics()
        if job.queue_seconds is not None:
            self.stats.wait_s[job.queue_class].append(job.queue_seconds)
            metrics.histogram("casjobs.wait_s").observe(job.queue_seconds)
        if job.finished_at is not None and job.started_at is not None:
            run_seconds = job.finished_at - job.started_at
            self.stats.run_s[job.queue_class].append(run_seconds)
            metrics.histogram("casjobs.run_s").observe(run_seconds)

    def _close_job_span(self, job: BatchJob, status: str) -> None:
        """Finish the job's open trace span at its terminal state."""
        job_span = self._job_spans.pop(job.job_id, None)
        if job_span is not None:
            job_span.set("status", status)
            finish_span(job_span)

    def _release(self, job: BatchJob) -> None:
        del self._running[job.job_id]
        self._executing_per_user[job.owner] -= 1
        if self._executing_per_user[job.owner] <= 0:
            del self._executing_per_user[job.owner]

    def _finalize_success(self, job: BatchJob, result: object) -> None:
        if self.finalizer is not None:
            try:
                result = self.finalizer(job, result)
            except Exception as exc:  # noqa: BLE001 - job isolation boundary
                self.queue.fail(
                    job.job_id, f"{type(exc).__name__}: {exc}"
                )
                self.stats.failed += 1
                get_metrics().counter("casjobs.failed").inc()
                self._record_latency(job)
                self._close_job_span(job, "failed")
                return
        finished = self.queue.finish(job.job_id, result)
        if finished.status is JobStatus.FINISHED:
            self.stats.finished += 1
            get_metrics().counter("casjobs.finished").inc()
            self._close_job_span(job, "finished")
        else:  # budget kill inside finish()
            self.stats.failed += 1
            get_metrics().counter("casjobs.failed").inc()
            self._close_job_span(job, "failed")
        self._record_latency(job)

    def _handle_timeout(self, running: _Running) -> None:
        job = running.job
        self.stats.timeouts += 1
        get_metrics().counter("casjobs.timeouts").inc()
        self.pool.cancel(running.future)  # revokes it if not yet started;
        # a running thread cannot be killed: the future is abandoned and
        # its eventual result ignored (it is no longer tracked here).
        timeout = self.config.attempt_timeout(job)
        reason = (
            f"attempt {job.attempts} timed out after {timeout:g} s"
        )
        if job.attempts <= self.config.max_retries:
            self.queue.requeue(job.job_id, reason)
            backoff = self.config.retry_backoff_s * (2 ** (job.attempts - 1))
            if backoff > 0:
                self._not_before[job.job_id] = time.monotonic() + backoff
            self.stats.retries += 1
            get_metrics().counter("casjobs.retries").inc()
        else:
            self.queue.fail(
                job.job_id,
                f"{reason}; retries exhausted ({self.config.max_retries})",
            )
            self.stats.failed += 1
            self.stats.dead_lettered += 1
            metrics = get_metrics()
            metrics.counter("casjobs.failed").inc()
            metrics.counter("casjobs.dead_lettered").inc()
            self.dead_letters.append(
                DeadLetter(
                    job_id=job.job_id,
                    owner=job.owner,
                    queue_class=job.queue_class,
                    reason=reason,
                    attempts=job.attempts,
                )
            )
            self._record_latency(job)
            self._close_job_span(job, "dead_lettered")

    def _reap(self) -> int:
        """Process completions and timeouts; returns how many resolved."""
        resolved = 0
        now = time.monotonic()
        for running in list(self._running.values()):
            job = running.job
            if running.future.done():
                self._release(job)
                resolved += 1
                try:
                    result = running.future.result()
                except Exception as exc:  # noqa: BLE001 - isolation boundary
                    self.queue.fail(
                        job.job_id, f"{type(exc).__name__}: {exc}"
                    )
                    self.stats.failed += 1
                    get_metrics().counter("casjobs.failed").inc()
                    self._record_latency(job)
                    self._close_job_span(job, "failed")
                else:
                    self._finalize_success(job, result)
            elif now >= running.deadline:
                self._release(job)
                resolved += 1
                self._handle_timeout(running)
        return resolved

    # ------------------------------------------------------------------
    # driving
    # ------------------------------------------------------------------
    def pump(self) -> int:
        """One dispatcher pass: reap completions, fill free workers.

        Non-blocking; returns the amount of progress made (completions
        processed + jobs dispatched).  Safe to call from any thread —
        passes are serialized by an internal lock.
        """
        with self._pump_lock:
            progress = self._reap()
            progress += self._dispatch()
            # inline pools resolve futures at submit time: reap them now
            # so run_until_idle() with max_workers=1 makes progress per pass
            progress += self._reap()
            return progress

    def run_until_idle(self, timeout_s: float | None = None) -> int:
        """Pump until the queue is empty and nothing is running.

        Returns how many jobs reached a terminal state during this
        call.  ``timeout_s`` bounds the wait (a :class:`CasJobsError`
        is raised on expiry — the stress tests' watchdog).
        """
        began = time.monotonic()
        before = self.stats.completed
        while True:
            progress = self.pump()
            with self._pump_lock:
                idle = not self._running and self.queue.pending_count() == 0
            if idle:
                return self.stats.completed - before
            if timeout_s is not None and time.monotonic() - began > timeout_s:
                raise CasJobsError(
                    f"scheduler did not go idle within {timeout_s:g} s "
                    f"({self.queue.pending_count()} pending, "
                    f"{len(self._running)} running)"
                )
            if progress == 0:
                time.sleep(self.config.poll_s)

    def start(self) -> None:
        """Serve in a background dispatcher thread until :meth:`stop`."""
        if self._thread is not None and self._thread.is_alive():
            raise CasJobsError("scheduler already serving")
        self._stop.clear()

        def loop() -> None:
            while not self._stop.is_set():
                if self.pump() == 0:
                    self._stop.wait(self.config.poll_s)

        self._thread = threading.Thread(
            target=loop, name="casjobs-scheduler", daemon=True
        )
        self._thread.start()

    @property
    def serving(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def stop(self, drain: bool = True, timeout_s: float | None = None) -> None:
        """Stop the background dispatcher (optionally draining first)."""
        if drain:
            self.run_until_idle(timeout_s=timeout_s)
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def close(self) -> None:
        """Stop serving and shut the worker pool down."""
        if self.serving:
            self.stop(drain=False)
        self.pool.shutdown(wait=True)

    # ------------------------------------------------------------------
    def running_count(self) -> int:
        return len(self._running)

    def status(self) -> dict[str, object]:
        """A snapshot for CLIs and monitors."""
        return {
            "pending_quick": self.queue.pending_count(QueueClass.QUICK),
            "pending_long": self.queue.pending_count(QueueClass.LONG),
            "running": len(self._running),
            "serving": self.serving,
            "dead_letters": len(self.dead_letters),
            **self.stats.summary(),
        }
